//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot),
//! covering exactly the API surface this workspace uses.
//!
//! The container this repository builds in has no registry access, so the
//! real crate cannot be fetched. This shim wraps [`std::sync::Mutex`] and
//! reproduces parking_lot's ergonomics: [`Mutex::lock`] returns the guard
//! directly (no `Result`), and a poisoned mutex is recovered rather than
//! propagated — parking_lot has no concept of poisoning, so recovering is
//! the faithful translation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's panic-free `lock()`.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// An RAII guard returned by [`Mutex::lock`]; the lock is released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    ///
    /// Unlike `std`, never returns a poison error: a mutex whose holder
    /// panicked is recovered, matching parking_lot semantics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutably borrow the protected value (no locking needed: `&mut self`
    /// proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
