//! Wire encoding for the replication protocol.

use hope_core::AidId;
use hope_runtime::Value;

/// A protocol message between replicas and the primary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepMsg {
    /// Optimistic update: "apply `value` to `key`, which I believe is at
    /// `expected` — the assumption is identified by `aid`".
    Update {
        /// The assumption the client guessed.
        aid: AidId,
        /// Key to update.
        key: String,
        /// New value.
        value: Value,
        /// The version the client's cache held.
        expected: u64,
    },
    /// Synchronous read of `key` (RPC request payload).
    Read {
        /// Key to read.
        key: String,
    },
    /// Atomic multi-key optimistic update: every `(key, value, expected)`
    /// entry must pass certification or none is applied; one AID covers
    /// the whole transaction.
    MultiUpdate {
        /// The assumption the client guessed.
        aid: AidId,
        /// `(key, value, expected_version)` triples.
        entries: Vec<(String, Value, u64)>,
    },
    /// Pessimistic (synchronous) update: certify and reply with the
    /// resulting state, whether or not the certification succeeded.
    SyncUpdate {
        /// Key to update.
        key: String,
        /// New value.
        value: Value,
        /// The version the client's cache held.
        expected: u64,
    },
    /// Reply to a read, or the repair shipped with a denial: the current
    /// value and version of a key.
    State {
        /// Key described.
        key: String,
        /// Current value.
        value: Value,
        /// Current version.
        version: u64,
    },
    /// Broadcast from the primary after a committed update.
    Notice {
        /// Key updated.
        key: String,
        /// New value.
        value: Value,
        /// New version.
        version: u64,
    },
}

impl RepMsg {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        match self {
            RepMsg::Update {
                aid,
                key,
                value,
                expected,
            } => Value::List(vec![
                Value::Str("upd".into()),
                Value::Int(aid.index() as i64),
                Value::Str(key.clone()),
                value.clone(),
                Value::Int(*expected as i64),
            ]),
            RepMsg::Read { key } => {
                Value::List(vec![Value::Str("read".into()), Value::Str(key.clone())])
            }
            RepMsg::MultiUpdate { aid, entries } => {
                let mut items = vec![Value::Str("mupd".into()), Value::Int(aid.index() as i64)];
                for (k, v, expected) in entries {
                    items.push(Value::Str(k.clone()));
                    items.push(v.clone());
                    items.push(Value::Int(*expected as i64));
                }
                Value::List(items)
            }
            RepMsg::SyncUpdate {
                key,
                value,
                expected,
            } => Value::List(vec![
                Value::Str("supd".into()),
                Value::Str(key.clone()),
                value.clone(),
                Value::Int(*expected as i64),
            ]),
            RepMsg::State {
                key,
                value,
                version,
            } => Value::List(vec![
                Value::Str("state".into()),
                Value::Str(key.clone()),
                value.clone(),
                Value::Int(*version as i64),
            ]),
            RepMsg::Notice {
                key,
                value,
                version,
            } => Value::List(vec![
                Value::Str("notice".into()),
                Value::Str(key.clone()),
                value.clone(),
                Value::Int(*version as i64),
            ]),
        }
    }

    /// Decode a received payload; `None` for foreign messages.
    pub fn from_value(v: &Value) -> Option<RepMsg> {
        let items = v.as_list()?;
        match items.first()?.as_str()? {
            "upd" if items.len() == 5 => Some(RepMsg::Update {
                aid: AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
                key: items[2].as_str()?.to_string(),
                value: items[3].clone(),
                expected: u64::try_from(items[4].as_int()?).ok()?,
            }),
            "read" if items.len() == 2 => Some(RepMsg::Read {
                key: items[1].as_str()?.to_string(),
            }),
            "mupd" if items.len() >= 5 && (items.len() - 2).is_multiple_of(3) => {
                let aid = AidId::from_index(u64::try_from(items[1].as_int()?).ok()?);
                let mut entries = Vec::new();
                for chunk in items[2..].chunks(3) {
                    entries.push((
                        chunk[0].as_str()?.to_string(),
                        chunk[1].clone(),
                        u64::try_from(chunk[2].as_int()?).ok()?,
                    ));
                }
                Some(RepMsg::MultiUpdate { aid, entries })
            }
            "supd" if items.len() == 4 => Some(RepMsg::SyncUpdate {
                key: items[1].as_str()?.to_string(),
                value: items[2].clone(),
                expected: u64::try_from(items[3].as_int()?).ok()?,
            }),
            "state" if items.len() == 4 => Some(RepMsg::State {
                key: items[1].as_str()?.to_string(),
                value: items[2].clone(),
                version: u64::try_from(items[3].as_int()?).ok()?,
            }),
            "notice" if items.len() == 4 => Some(RepMsg::Notice {
                key: items[1].as_str()?.to_string(),
                value: items[2].clone(),
                version: u64::try_from(items[3].as_int()?).ok()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_variants() {
        let msgs = [
            RepMsg::Update {
                aid: AidId::from_index(3),
                key: "k".into(),
                value: Value::Int(7),
                expected: 2,
            },
            RepMsg::Read { key: "k".into() },
            RepMsg::MultiUpdate {
                aid: AidId::from_index(5),
                entries: vec![
                    ("a".into(), Value::Int(1), 0),
                    ("b".into(), Value::Int(2), 3),
                ],
            },
            RepMsg::SyncUpdate {
                key: "k".into(),
                value: Value::Int(1),
                expected: 0,
            },
            RepMsg::State {
                key: "k".into(),
                value: Value::Int(7),
                version: 3,
            },
            RepMsg::Notice {
                key: "k".into(),
                value: Value::Int(8),
                version: 4,
            },
        ];
        for m in msgs {
            assert_eq!(RepMsg::from_value(&m.to_value()), Some(m));
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(RepMsg::from_value(&Value::Unit), None);
        assert_eq!(
            RepMsg::from_value(&Value::List(vec![Value::Str("nope".into())])),
            None
        );
        assert_eq!(
            RepMsg::from_value(&Value::List(vec![Value::Str("upd".into())])),
            None
        );
    }
}
