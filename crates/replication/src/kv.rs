//! A versioned key-value store, shared by the primary and replica caches.

use std::collections::BTreeMap;

use hope_runtime::Value;

/// A key-value store where every key carries a monotonically increasing
/// version number, used for optimistic-concurrency certification.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionedStore {
    entries: BTreeMap<String, (Value, u64)>,
}

impl VersionedStore {
    /// An empty store.
    pub fn new() -> Self {
        VersionedStore::default()
    }

    /// The value and version of `key`, if present.
    pub fn get(&self, key: &str) -> Option<(&Value, u64)> {
        self.entries.get(key).map(|(v, ver)| (v, *ver))
    }

    /// The version of `key`; absent keys are version 0.
    pub fn version(&self, key: &str) -> u64 {
        self.entries.get(key).map(|(_, v)| *v).unwrap_or(0)
    }

    /// Unconditionally install `value` for `key` at `version`.
    pub fn install(&mut self, key: &str, value: Value, version: u64) {
        self.entries.insert(key.to_string(), (value, version));
    }

    /// Certify-and-apply: if the caller's `expected` version matches the
    /// current one, install the value with a bumped version and return
    /// `Ok(new_version)`; otherwise return the current `(value, version)`
    /// so the caller can repair its cache.
    ///
    /// # Errors
    ///
    /// `Err((current_value, current_version))` on a version conflict.
    #[allow(clippy::result_large_err)]
    pub fn certify(&mut self, key: &str, value: Value, expected: u64) -> Result<u64, (Value, u64)> {
        let current = self.version(key);
        if current == expected {
            let new = current + 1;
            self.entries.insert(key.to_string(), (value, new));
            Ok(new)
        } else {
            let (v, ver) = self.entries.get(key).cloned().unwrap_or((Value::Unit, 0));
            Err((v, ver))
        }
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if no keys are present.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_and_version_defaults() {
        let s = VersionedStore::new();
        assert!(s.is_empty());
        assert_eq!(s.get("x"), None);
        assert_eq!(s.version("x"), 0);
    }

    #[test]
    fn certify_applies_on_match() {
        let mut s = VersionedStore::new();
        assert_eq!(s.certify("x", Value::Int(1), 0), Ok(1));
        assert_eq!(s.get("x"), Some((&Value::Int(1), 1)));
        assert_eq!(s.certify("x", Value::Int(2), 1), Ok(2));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn certify_rejects_on_conflict() {
        let mut s = VersionedStore::new();
        s.certify("x", Value::Int(1), 0).unwrap();
        let err = s.certify("x", Value::Int(9), 0).unwrap_err();
        assert_eq!(err, (Value::Int(1), 1));
        // Store unchanged by the failed certification.
        assert_eq!(s.get("x"), Some((&Value::Int(1), 1)));
    }

    #[test]
    fn install_overwrites() {
        let mut s = VersionedStore::new();
        s.install("k", Value::Int(5), 7);
        assert_eq!(s.get("k"), Some((&Value::Int(5), 7)));
        s.install("k", Value::Int(6), 8);
        assert_eq!(s.version("k"), 8);
    }
}
