//! The client-side replica: a local cache with optimistic writes.
//!
//! §7 of the paper: "A local cached replica of a piece of data can greatly
//! reduce the latency of access to that data, and optimistically assuming
//! consistency can reduce the latency of updating replicated data."
//!
//! [`Replica::write_optimistic`] follows the **send-then-guess** discipline
//! of Figure 2: the update leaves *before* the guess, so its dependence tag
//! contains only prior assumptions — which, thanks to per-link FIFO, the
//! primary has already decided by the time the message arrives. The primary
//! therefore stays definite, its affirms commit promptly, and the client
//! hides a full round trip per uncontended update.

use hope_core::ProcessId;
use hope_runtime::{Ctx, Hope, Message, MsgKind, Value};

use crate::kv::VersionedStore;
use crate::messages::RepMsg;

/// A client-side replica handle. Keep it inside the process body; all its
/// decisions flow from `Ctx` results, so journal replay rebuilds it
/// correctly after rollback.
#[derive(Debug)]
pub struct Replica {
    primary: ProcessId,
    cache: VersionedStore,
    /// Updates that were denied at least once (for statistics).
    pub conflicts: u64,
}

impl Replica {
    /// A replica of the store at `primary`, starting with a cold cache.
    pub fn new(primary: ProcessId) -> Self {
        Replica {
            primary,
            cache: VersionedStore::new(),
            conflicts: 0,
        }
    }

    /// The local cache (for inspection in tests).
    pub fn cache(&self) -> &VersionedStore {
        &self.cache
    }

    /// Absorb any queued update notices from the primary without blocking.
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    pub fn drain_notices(&mut self, ctx: &mut Ctx) -> Hope<usize> {
        let mut n = 0;
        while let Some(m) = ctx.try_recv_matching(is_notice)? {
            if let Some(RepMsg::Notice {
                key,
                value,
                version,
            }) = RepMsg::from_value(&m.payload)
            {
                if version > self.cache.version(&key) {
                    self.cache.install(&key, value, version);
                }
                n += 1;
            }
        }
        Ok(n)
    }

    /// Read `key`: local cache hit if possible, otherwise a synchronous
    /// fetch from the primary (which warms the cache).
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    pub fn read(&mut self, ctx: &mut Ctx, key: &str) -> Hope<Value> {
        self.drain_notices(ctx)?;
        if let Some((v, _)) = self.cache.get(key) {
            return Ok(v.clone());
        }
        let reply = ctx.rpc(self.primary, RepMsg::Read { key: key.into() }.to_value())?;
        if let Some(RepMsg::State {
            key,
            value,
            version,
        }) = RepMsg::from_value(&reply)
        {
            self.cache.install(&key, value.clone(), version);
            Ok(value)
        } else {
            Ok(Value::Unit)
        }
    }

    /// Optimistically update `key` to `value`, hiding the certification
    /// round trip behind subsequent computation.
    ///
    /// Returns `true` if the first attempt committed; on a conflict the
    /// call transparently rolls back, installs the primary's repair state
    /// into the cache, retries once with the corrected version, and then
    /// reports `false`. (A second conflict repeats the cycle; the loop
    /// terminates because each repair advances the cached version.)
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    pub fn write_optimistic(&mut self, ctx: &mut Ctx, key: &str, value: Value) -> Hope<bool> {
        self.write_with(ctx, key, value, false)
    }

    /// Like [`Replica::write_optimistic`], but ships the update over
    /// [`Ctx::send_reliable`], so the write survives an unreliable link or
    /// a primary outage: dropped or outage-lost update messages are
    /// retransmitted (with the same dependence tag) until the primary acks
    /// them. Use this variant under fault injection.
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    pub fn write_reliable(&mut self, ctx: &mut Ctx, key: &str, value: Value) -> Hope<bool> {
        self.write_with(ctx, key, value, true)
    }

    fn write_with(&mut self, ctx: &mut Ctx, key: &str, value: Value, reliable: bool) -> Hope<bool> {
        self.drain_notices(ctx)?;
        let mut first_try = true;
        loop {
            let expected = self.cache.version(key);
            let aid = ctx.aid_init()?;
            let payload = RepMsg::Update {
                aid,
                key: key.into(),
                value: value.clone(),
                expected,
            }
            .to_value();
            if reliable {
                ctx.send_reliable(self.primary, payload)?;
            } else {
                ctx.send(self.primary, payload)?;
            }
            if ctx.guess(aid)? {
                // Optimistic path: assume certification succeeds.
                self.cache.install(key, value, expected + 1);
                return Ok(first_try);
            }
            // Denied: the repair state the primary shipped is (or will be)
            // in our mailbox. Install it and retry with the true version.
            self.conflicts += 1;
            first_try = false;
            let key_owned = key.to_string();
            let m = ctx.recv_matching(move |m| is_state_for(m, &key_owned))?;
            if let Some(RepMsg::State {
                key: k,
                value: v,
                version,
            }) = RepMsg::from_value(&m.payload)
            {
                self.cache.install(&k, v, version);
            }
        }
    }

    /// Atomically (all-or-nothing) update several keys under **one**
    /// assumption, optimistically.
    ///
    /// All updates ship in one message; the primary certifies every key's
    /// version before applying any (see
    /// [`RepMsg::MultiUpdate`](crate::RepMsg)), affirming or denying the
    /// single AID. On denial this client rolls back, installs the repair
    /// states, and retries with corrected versions. Returns `true` if the
    /// first attempt committed.
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    ///
    /// # Panics
    ///
    /// Panics if `updates` is empty.
    pub fn write_many_optimistic(
        &mut self,
        ctx: &mut Ctx,
        updates: &[(&str, Value)],
    ) -> Hope<bool> {
        assert!(!updates.is_empty(), "atomic write of nothing");
        self.drain_notices(ctx)?;
        let mut first_try = true;
        loop {
            let entries: Vec<(String, Value, u64)> = updates
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone(), self.cache.version(k)))
                .collect();
            let aid = ctx.aid_init()?;
            ctx.send(
                self.primary,
                RepMsg::MultiUpdate {
                    aid,
                    entries: entries.clone(),
                }
                .to_value(),
            )?;
            if ctx.guess(aid)? {
                for (k, v, expected) in entries {
                    self.cache.install(&k, v, expected + 1);
                }
                return Ok(first_try);
            }
            // Denied: repairs for the conflicting keys are in flight.
            self.conflicts += 1;
            first_try = false;
            let keys: Vec<String> = updates.iter().map(|(k, _)| k.to_string()).collect();
            for key in keys {
                let key_for_match = key.clone();
                let m = ctx.recv_matching(move |m| is_state_for(m, &key_for_match))?;
                if let Some(RepMsg::State {
                    key: k,
                    value: v,
                    version,
                }) = RepMsg::from_value(&m.payload)
                {
                    self.cache.install(&k, v, version);
                }
            }
        }
    }

    /// The pessimistic baseline: a synchronous certify round trip, retrying
    /// on conflict. Returns `true` if the first attempt committed.
    ///
    /// # Errors
    ///
    /// Propagates runtime [`Signal`](hope_runtime::Signal)s.
    pub fn write_pessimistic(&mut self, ctx: &mut Ctx, key: &str, value: Value) -> Hope<bool> {
        self.drain_notices(ctx)?;
        let mut first_try = true;
        loop {
            let expected = self.cache.version(key);
            let reply = ctx.rpc(
                self.primary,
                RepMsg::SyncUpdate {
                    key: key.into(),
                    value: value.clone(),
                    expected,
                }
                .to_value(),
            )?;
            if let Some(RepMsg::State {
                key: k,
                value: v,
                version,
            }) = RepMsg::from_value(&reply)
            {
                let committed = version == expected + 1 && v == value;
                self.cache.install(&k, v, version);
                if committed {
                    return Ok(first_try);
                }
                self.conflicts += 1;
                first_try = false;
            } else {
                return Ok(false);
            }
        }
    }
}

fn is_notice(m: &Message) -> bool {
    matches!(RepMsg::from_value(&m.payload), Some(RepMsg::Notice { .. }))
}

fn is_state_for(m: &Message, key: &str) -> bool {
    // Repairs arrive as plain or reliable sends; RPC replies (which also
    // carry `State` payloads) are claimed by the rpc machinery instead.
    !matches!(m.kind, MsgKind::Request(_) | MsgKind::Reply(_))
        && matches!(
            RepMsg::from_value(&m.payload),
            Some(RepMsg::State { key: k, .. }) if k == key
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primary::run_primary;
    use hope_runtime::{SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology, VirtualDuration};

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    fn topo() -> Topology {
        Topology::uniform(LatencyModel::Fixed(ms(5)))
    }

    #[test]
    fn uncontended_optimistic_writes_commit_and_hide_latency() {
        let primary = ProcessId(1);
        let run = |optimistic: bool| {
            let mut sim = Simulation::new(SimConfig::with_seed(2).topology(topo()));
            let client = sim.spawn("client", move |ctx| {
                let mut rep = Replica::new(primary);
                for i in 0..5 {
                    let ok = if optimistic {
                        rep.write_optimistic(ctx, "x", Value::Int(i))?
                    } else {
                        rep.write_pessimistic(ctx, "x", Value::Int(i))?
                    };
                    assert!(ok, "uncontended writes commit first try");
                    ctx.compute(VirtualDuration::from_micros(50))?;
                }
                let final_value = rep.read(ctx, "x")?;
                ctx.output(format!("final={final_value}"))?;
                Ok(())
            });
            sim.spawn("primary", move |ctx| {
                run_primary(
                    ctx,
                    vec![ProcessId(0)],
                    VirtualDuration::from_micros(10),
                    |_| {},
                )
            });
            let r = sim.run();
            assert_eq!(r.output_lines(), vec!["final=4"], "{r}");
            (r.finish_time(client).unwrap(), r.stats().rollback_events)
        };
        let (opt_time, opt_rollbacks) = run(true);
        let (pess_time, _) = run(false);
        assert_eq!(opt_rollbacks, 0);
        assert!(
            opt_time < pess_time,
            "optimistic {opt_time} !< pessimistic {pess_time}"
        );
    }

    #[test]
    fn conflicting_writers_converge() {
        let primary = ProcessId(2);
        let mut sim = Simulation::new(SimConfig::with_seed(3).topology(topo()));
        for idx in 0..2u32 {
            sim.spawn(format!("client{idx}"), move |ctx| {
                let mut rep = Replica::new(primary);
                // Both clients race on the same key with a cold cache:
                // one certification wins, the other conflicts and retries.
                let _ = rep.write_optimistic(ctx, "shared", Value::Int(100 + idx as i64))?;
                ctx.output(format!("done conflicts={}", rep.conflicts))?;
                Ok(())
            });
        }
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0), ProcessId(1)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert!(r.errors().is_empty(), "{r}");
        let lines = r.output_lines();
        assert_eq!(lines.len(), 2, "{r}");
        // Exactly one client conflicted (the loser of the race).
        let total_conflicts: u64 = lines
            .iter()
            .map(|l| {
                l.split("conflicts=")
                    .nth(1)
                    .unwrap()
                    .parse::<u64>()
                    .unwrap()
            })
            .sum();
        assert_eq!(total_conflicts, 1, "{lines:?}");
        assert!(r.stats().rollback_events >= 1);
    }

    #[test]
    fn read_your_writes_holds_while_speculative() {
        // Session guarantee: immediately after an optimistic write —
        // before the primary has certified anything — the writer's own
        // reads observe the new value (from the local cache), and the
        // guarantee survives commitment.
        let primary = ProcessId(1);
        let mut sim = Simulation::new(SimConfig::with_seed(6).topology(topo()));
        sim.spawn("client", move |ctx| {
            let mut rep = Replica::new(primary);
            rep.write_optimistic(ctx, "k", Value::Int(1))?;
            // Still speculative: the certification is in flight.
            let v = rep.read(ctx, "k")?;
            assert_eq!(v, Value::Int(1), "read-your-writes while speculative");
            rep.write_optimistic(ctx, "k", Value::Int(2))?;
            let v = rep.read(ctx, "k")?;
            assert_eq!(v, Value::Int(2));
            ctx.output(format!("final read={v}"))?;
            Ok(())
        });
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert_eq!(r.output_lines(), vec!["final read=2"], "{r}");
        assert_eq!(r.stats().rollback_events, 0);
    }

    #[test]
    fn multi_key_write_is_atomic() {
        // Two clients race on an overlapping pair of keys with multi-key
        // transactions; all-or-nothing certification means the final
        // versions of the pair advance in lock-step.
        let primary = ProcessId(2);
        let mut sim = Simulation::new(SimConfig::with_seed(12).topology(topo()));
        for c in 0..2u32 {
            sim.spawn(format!("client{c}"), move |ctx| {
                let mut rep = Replica::new(primary);
                let v = 100 + c as i64;
                let ok = rep.write_many_optimistic(
                    ctx,
                    &[("left", Value::Int(v)), ("right", Value::Int(v))],
                )?;
                ctx.output(format!("client{c} first_try={ok}"))?;
                Ok(())
            });
        }
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0), ProcessId(1)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        // Auditor: both keys must hold the same writer's value.
        sim.spawn("auditor", move |ctx| {
            ctx.compute(ms(200))?;
            let mut rep = Replica::new(primary);
            let l = rep.read(ctx, "left")?;
            let r = rep.read(ctx, "right")?;
            assert_eq!(l, r, "transaction torn apart");
            ctx.output(format!("pair={l}"))?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.errors().is_empty(), "{report}");
        let lines = report.output_lines();
        // One winner, one retried loser.
        assert!(
            lines.iter().any(|l| l.contains("first_try=true")),
            "{lines:?}"
        );
        assert!(
            lines.iter().any(|l| l.contains("first_try=false")),
            "{lines:?}"
        );
        assert!(lines.iter().any(|l| l.starts_with("pair=")), "{lines:?}");
        assert!(report.stats().rollback_events >= 1);
    }

    #[test]
    fn multi_key_write_uncontended_commits_first_try() {
        let primary = ProcessId(1);
        let mut sim = Simulation::new(SimConfig::with_seed(3).topology(topo()));
        sim.spawn("client", move |ctx| {
            let mut rep = Replica::new(primary);
            let ok = rep.write_many_optimistic(
                ctx,
                &[
                    ("a", Value::Int(1)),
                    ("b", Value::Int(2)),
                    ("c", Value::Int(3)),
                ],
            )?;
            assert!(ok);
            // Read-your-writes across the transaction.
            assert_eq!(rep.read(ctx, "b")?, Value::Int(2));
            ctx.output("txn ok")?;
            Ok(())
        });
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert_eq!(r.output_lines(), vec!["txn ok"], "{r}");
        assert_eq!(r.stats().rollback_events, 0);
    }

    #[test]
    fn reliable_writes_survive_a_lossy_link() {
        let primary = ProcessId(1);
        let plan = hope_runtime::FaultPlan::new(17).drop_rate(0.3);
        let mut sim = Simulation::new(
            SimConfig::with_seed(2)
                .with_topology(topo())
                .with_faults(plan),
        );
        sim.spawn("client", move |ctx| {
            let mut rep = Replica::new(primary);
            for i in 0..5 {
                rep.write_reliable(ctx, "x", Value::Int(i))?;
                ctx.output(format!("wrote {i}"))?;
            }
            Ok(())
        });
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert_eq!(
            r.output_lines(),
            vec!["wrote 0", "wrote 1", "wrote 2", "wrote 3", "wrote 4"],
            "{r}"
        );
        assert!(r.stats().faults.drops > 0, "{r}");
        assert!(r.stats().faults.retries > 0, "{r}");
    }

    #[test]
    fn killed_client_recovers_via_primary_repair() {
        // The client dies with update assumptions still open. The kill
        // denies them; on restart the client replays its journal prefix,
        // its guesses return false, and it falls into the repair loop —
        // which works because the primary's `try_affirm` detects the
        // no-op affirm and ships the committed state explicitly.
        let primary = ProcessId(1);
        let plan = hope_runtime::FaultPlan::new(9).kill(0, 12, Some(ms(10)));
        let mut sim = Simulation::new(
            SimConfig::with_seed(2)
                .with_topology(topo())
                .with_faults(plan),
        );
        sim.spawn("client", move |ctx| {
            let mut rep = Replica::new(primary);
            for i in 0..5 {
                rep.write_reliable(ctx, "x", Value::Int(i))?;
                ctx.output(format!("wrote {i}"))?;
            }
            Ok(())
        });
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert_eq!(
            r.output_lines(),
            vec!["wrote 0", "wrote 1", "wrote 2", "wrote 3", "wrote 4"],
            "{r}"
        );
        assert_eq!(r.stats().faults.kills, 1, "{r}");
        assert_eq!(r.stats().faults.restarts, 1, "{r}");
        assert!(r.stats().faults.crash_denies > 0, "{r}");
        assert!(r.stats().rollback_events > 0, "{r}");
    }

    #[test]
    fn notices_propagate_to_other_replicas() {
        let primary = ProcessId(2);
        let mut sim = Simulation::new(SimConfig::with_seed(4).topology(topo()));
        sim.spawn("writer", move |ctx| {
            let mut rep = Replica::new(primary);
            rep.write_optimistic(ctx, "k", Value::Int(9))?;
            Ok(())
        });
        sim.spawn("reader", move |ctx| {
            let mut rep = Replica::new(primary);
            // Wait long enough for the notice to arrive, then read locally.
            ctx.compute(ms(100))?;
            rep.drain_notices(ctx)?;
            ctx.output(format!("cached={:?}", rep.cache().get("k").is_some()))?;
            Ok(())
        });
        sim.spawn("primary", move |ctx| {
            run_primary(
                ctx,
                vec![ProcessId(0), ProcessId(1)],
                VirtualDuration::from_micros(10),
                |_| {},
            )
        });
        let r = sim.run();
        assert_eq!(r.output_lines(), vec!["cached=true"], "{r}");
    }
}
