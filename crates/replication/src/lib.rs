//! # hope-replication — optimistic replication on HOPE
//!
//! §7 of the paper names optimistic concurrency control of replicated data
//! as the next application of HOPE: "A local cached replica of a piece of
//! data can greatly reduce the latency of access to that data, and
//! optimistically assuming consistency can reduce the latency of updating
//! replicated data." This crate builds that system:
//!
//! * a **primary** ([`run_primary`]) certifies version-checked updates,
//!   affirming or denying each update's assumption identifier and
//!   broadcasting committed values to the other replicas;
//! * a **replica** ([`Replica`]) serves reads from its local cache and
//!   performs updates with the send-then-guess discipline, hiding the
//!   certification round trip behind the client's continuing computation;
//! * a **pessimistic baseline** ([`Replica::write_pessimistic`]) performs
//!   the classical synchronous certify, for experiment E7.
//!
//! Because updates are sent *before* the guess and links are FIFO, the
//! primary stays definite: its affirms are definite, so client work
//! commits promptly — the architectural pattern that makes HOPE
//! applications converge (see `hope-timewarp` for the contrasting case).
//! Under fault injection, conflict repairs and crash-recovery repairs
//! ride [`Ctx::send_reliable`](hope_runtime::Ctx::send_reliable) — making
//! the primary briefly speculative per repair — so the protocol also
//! survives fault-injected message loss and process kills (see the chaos
//! suite in `tests/chaos_equivalence.rs`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod kv;
mod messages;
mod primary;
mod replica;

pub use kv::VersionedStore;
pub use messages::RepMsg;
pub use primary::{run_primary, CertifyOutcome};
pub use replica::Replica;
