//! The primary copy: certifier of optimistic updates.
//!
//! The primary is the *definite verifier* of this application — the
//! analogue of Figure 2's WorryWart. Clients follow the send-then-guess
//! discipline (the update message leaves **before** the guess, so it
//! carries only the client's pre-existing dependencies), and pipelined
//! updates from one client arrive in FIFO order after their predecessors
//! were certified — so their tags are already decided and the primary
//! stays definite on the conflict-free path. Affirms and denies issued
//! here are therefore definite, and client output commits flow promptly
//! (contrast with the symmetric Time Warp setting in `hope-timewarp`,
//! where no definite affirmer exists). The one exception: under fault
//! injection, repair states ship over [`Ctx::send_reliable`], whose
//! "delivered" guess makes the primary briefly speculative until the ack
//! lands — an availability trade taken deliberately, because a conflicted
//! or crash-recovering client is *blocked* on that repair and must not
//! starve if the network drops it. On a reliable network (no fault plan)
//! repairs go as plain sends and the primary never speculates at all.

use hope_runtime::{Ctx, Hope, MsgKind, ProcessId, Value};
use hope_sim::VirtualDuration;

use crate::kv::VersionedStore;
use crate::messages::RepMsg;

/// Ship a repair `State` to a client that is (or will be) blocked waiting
/// for it. On a reliable network a plain send suffices and keeps the
/// primary fully definite; under fault injection the repair must ride the
/// reliable layer — a blocked client must not starve because the network
/// dropped the one message that would unblock it.
fn send_repair(ctx: &mut Ctx, to: ProcessId, payload: Value) -> Hope<u64> {
    if ctx.faults_enabled() {
        ctx.send_reliable(to, payload)
    } else {
        ctx.send(to, payload)
    }
}

/// Counters the primary accumulates (exposed for tests and benchmarks via
/// the observer callback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertifyOutcome {
    /// The update's expected version matched: applied and affirmed.
    Committed,
    /// Version conflict: denied; repair state shipped to the updater.
    Conflicted,
    /// A read was served.
    Read,
}

/// Run the primary until simulation shutdown.
///
/// * `replicas` — every replica process; committed updates are broadcast
///   to all of them except the updater.
/// * `cost` — CPU charged per handled request.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s (the loop
/// terminates via `Shutdown`).
pub fn run_primary(
    ctx: &mut Ctx,
    replicas: Vec<ProcessId>,
    cost: VirtualDuration,
    mut observer: impl FnMut(CertifyOutcome),
) -> Hope<()> {
    let mut store = VersionedStore::new();
    loop {
        let msg = ctx.recv()?;
        let decoded = match RepMsg::from_value(&msg.payload) {
            Some(d) => d,
            None => continue,
        };
        ctx.compute(cost)?;
        match decoded {
            RepMsg::Update {
                aid,
                key,
                value,
                expected,
            } => match store.certify(&key, value.clone(), expected) {
                Ok(version) => {
                    let applied = ctx.try_affirm(aid)?;
                    observer(CertifyOutcome::Committed);
                    for &r in replicas.iter().filter(|&&r| r != msg.from) {
                        ctx.send(
                            r,
                            RepMsg::Notice {
                                key: key.clone(),
                                value: value.clone(),
                                version,
                            }
                            .to_value(),
                        )?;
                    }
                    if !applied {
                        // The assumption was denied out from under the
                        // updater (a fault-injected kill), so the affirm
                        // could not serve as the commit acknowledgement.
                        // The restarted client is in its repair loop: ship
                        // the committed state explicitly.
                        send_repair(
                            ctx,
                            msg.from,
                            RepMsg::State {
                                key,
                                value,
                                version,
                            }
                            .to_value(),
                        )?;
                    }
                }
                Err((cur_value, cur_version)) => {
                    // Ship the repair before the deny so it is already in
                    // flight when the client's rollback re-reads.
                    send_repair(
                        ctx,
                        msg.from,
                        RepMsg::State {
                            key: key.clone(),
                            value: cur_value,
                            version: cur_version,
                        }
                        .to_value(),
                    )?;
                    ctx.deny(aid)?;
                    observer(CertifyOutcome::Conflicted);
                }
            },
            RepMsg::MultiUpdate { aid, entries } => {
                let all_match = entries
                    .iter()
                    .all(|(k, _, expected)| store.version(k) == *expected);
                if all_match {
                    for (k, v, expected) in &entries {
                        store.install(k, v.clone(), expected + 1);
                    }
                    let applied = ctx.try_affirm(aid)?;
                    observer(CertifyOutcome::Committed);
                    for (k, v, expected) in &entries {
                        for &r in replicas.iter().filter(|&&r| r != msg.from) {
                            ctx.send(
                                r,
                                RepMsg::Notice {
                                    key: k.clone(),
                                    value: v.clone(),
                                    version: expected + 1,
                                }
                                .to_value(),
                            )?;
                        }
                    }
                    if !applied {
                        // As in the single-key arm: the updater was killed
                        // with the assumption open, so repair it per key.
                        for (k, v, expected) in &entries {
                            send_repair(
                                ctx,
                                msg.from,
                                RepMsg::State {
                                    key: k.clone(),
                                    value: v.clone(),
                                    version: expected + 1,
                                }
                                .to_value(),
                            )?;
                        }
                    }
                } else {
                    // All-or-nothing: apply nothing; ship the current
                    // state of *every* touched key so the client repairs
                    // in one round, then deny.
                    for (k, _, _) in &entries {
                        let (value, version) = store
                            .get(k)
                            .map(|(v, ver)| (v.clone(), ver))
                            .unwrap_or((Value::Unit, 0));
                        send_repair(
                            ctx,
                            msg.from,
                            RepMsg::State {
                                key: k.clone(),
                                value,
                                version,
                            }
                            .to_value(),
                        )?;
                    }
                    ctx.deny(aid)?;
                    observer(CertifyOutcome::Conflicted);
                }
            }
            RepMsg::SyncUpdate {
                key,
                value,
                expected,
            } => {
                let (out, value, version) = match store.certify(&key, value.clone(), expected) {
                    Ok(version) => (CertifyOutcome::Committed, value, version),
                    Err((cur_value, cur_version)) => {
                        (CertifyOutcome::Conflicted, cur_value, cur_version)
                    }
                };
                if out == CertifyOutcome::Committed {
                    for &r in replicas.iter().filter(|&&r| r != msg.from) {
                        ctx.send(
                            r,
                            RepMsg::Notice {
                                key: key.clone(),
                                value: value.clone(),
                                version,
                            }
                            .to_value(),
                        )?;
                    }
                }
                if matches!(msg.kind, MsgKind::Request(_)) {
                    ctx.reply(
                        &msg,
                        RepMsg::State {
                            key,
                            value,
                            version,
                        }
                        .to_value(),
                    )?;
                }
                observer(out);
            }
            RepMsg::Read { key } => {
                let (value, version) = store
                    .get(&key)
                    .map(|(v, ver)| (v.clone(), ver))
                    .unwrap_or((Value::Unit, 0));
                if matches!(msg.kind, MsgKind::Request(_)) {
                    ctx.reply(
                        &msg,
                        RepMsg::State {
                            key,
                            value,
                            version,
                        }
                        .to_value(),
                    )?;
                }
                observer(CertifyOutcome::Read);
            }
            RepMsg::State { .. } | RepMsg::Notice { .. } => {}
        }
    }
}
