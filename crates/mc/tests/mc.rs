//! Random schedules are a subset of the exhaustive schedule space.
//!
//! For random in-budget programs, anything 64 seeded random schedules can
//! observe must already be in the model checker's report:
//!
//! * every committed outcome a completed seeded run produces is one of the
//!   checker's recorded terminal outputs (random ⊆ exhaustive on
//!   outcomes);
//! * if any seeded run finalizes pristinely, the checker holds a pristine
//!   witness (random ⊆ exhaustive on verdicts) — and replaying that
//!   witness reproduces a pristine run.
//!
//! A failure here means the reduction pruned a *reachable inequivalent*
//! behaviour: a soundness bug in the independence relation, the canonical
//! state key, or the sleep-set/cache interaction.

use hope_core::machine::{Event, Machine};
use hope_core::observer::NullObserver;
use hope_core::program::Program;
use hope_mc::{check, commit_fingerprint, McConfig};
use proptest::prelude::*;

const SEEDED_SCHEDULES: u64 = 64;
const FUEL: u64 = 10_000;

/// Full-finalization check on a finished machine (mirrors the agreement
/// suite's definition: completed, no rollback, no ghosts, no skips, all
/// processes definite).
fn is_pristine(m: &Machine, completed: bool) -> bool {
    let stats = m.engine().stats();
    completed
        && stats.rollback_events == 0
        && stats.ghosts == 0
        && (0..m.process_count()).all(|p| {
            !m.engine().is_speculative(m.pid(p)).expect("registered pid")
                && m.history(p)
                    .states()
                    .iter()
                    .all(|s| !matches!(s.event, Event::Skipped { .. }))
        })
}

fn random_is_subset_of_exhaustive(program: &Program) {
    let report = check(program, &McConfig::default());
    assert!(
        report.completeness.is_exhausted(),
        "corpus program exceeded the model-checking budget:\n{program}"
    );
    let mut seeded_pristine = None;
    for seed in 0..SEEDED_SCHEDULES {
        let mut m = Machine::new(program.clone());
        let run = m.run_seeded(FUEL, seed);
        if !run.completed {
            // An unfinished run is not a terminal state; nothing to compare.
            continue;
        }
        let fp = commit_fingerprint(&m);
        assert!(
            report.contains_output(&fp),
            "seed {seed} committed an outcome the checker never saw:\n{program}"
        );
        if is_pristine(&m, run.completed) {
            seeded_pristine = Some(seed);
        }
    }
    if let Some(seed) = seeded_pristine {
        assert!(
            report.pristine_witness.is_some(),
            "seed {seed} finalized pristinely but the checker found no witness:\n{program}"
        );
        let schedule = report.pristine_witness.clone().expect("checked above");
        let replayed = hope_mc::replay(program, &schedule, &mut NullObserver);
        assert!(
            is_pristine(&replayed, true),
            "pristine witness does not replay pristinely:\n{program}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn seeded_random_schedules_are_covered_by_the_model_checker(
        seed in 0u64..1_000_000,
        procs in 1usize..=3,
        len in 1usize..=4,
        aids in 1usize..=2,
    ) {
        let program = Program::generate(seed, procs, len, aids);
        random_is_subset_of_exhaustive(&program);
    }
}

/// The fixed exhaustive-envelope shapes the agreement suite sweeps are
/// also covered, pinned here against generator drift.
#[test]
fn envelope_shapes_are_covered() {
    for seed in [0, 1, 2, 3, 17, 99] {
        let two = Program::generate(seed, 2, 2, 1);
        random_is_subset_of_exhaustive(&two);
        let one = Program::generate(seed, 1, 3, 1);
        random_is_subset_of_exhaustive(&one);
    }
}
