//! `hope-mc` — model-check a HOPE machine program's schedule space.
//!
//! ```text
//! usage: hope-mc [OPTIONS] <FILE | ->
//!        hope-mc [OPTIONS] --generate SEED,PROCS,LEN,AIDS
//!
//! Explores every inequivalent interleaving of the program (full
//! Flanagan–Godefroid DPOR: canonical-state memoization + sleep sets +
//! dynamic backtracking sets + symmetry reduction) and reports whether
//! any schedule finalizes pristinely, whether all completed schedules
//! commit the same outcome, and what the reduction pruned. Over-budget
//! runs report the fraction of the reduced space they covered.
//!
//! options:
//!   --json             machine-readable report on stdout
//!   --naive            no cache, no reduction (comparator)
//!   --stateful         canonical-state cache only
//!   --sleepset         cache + sleep sets + persistent singletons (PR-5)
//!   --dpor             full FG DPOR without symmetry reduction
//!   --max-states N     state budget (default 200000)
//!   --max-depth N      per-branch depth bound (default 2000)
//!   --quiet            verdict line only
//!
//! exit status: 0 exhausted, 1 budget exceeded, 2 usage/parse error.
//! ```

use std::fmt::Write as _;
use std::io::Read as _;
use std::process::ExitCode;

use hope_core::program::Program;
use hope_mc::{check, BudgetReason, Completeness, McConfig, McReport, Mode};

struct Args {
    source: Source,
    cfg: McConfig,
    json: bool,
    quiet: bool,
}

enum Source {
    File(String),
    Stdin,
    Generate {
        seed: u64,
        procs: usize,
        len: usize,
        aids: usize,
    },
}

fn usage() -> &'static str {
    "usage: hope-mc [--json] [--quiet] [--naive|--stateful|--sleepset|--dpor] \
     [--max-states N] [--max-depth N] <FILE | - | --generate S,P,L,A>"
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut source = None;
    let mut cfg = McConfig::default();
    let mut json = false;
    let mut quiet = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--naive" => cfg.mode = Mode::Naive,
            "--stateful" => cfg.mode = Mode::Stateful,
            "--sleepset" => cfg.mode = Mode::SleepSet,
            "--dpor" => cfg.mode = Mode::Dpor,
            "--max-states" => {
                let v = it.next().ok_or("--max-states needs a value")?;
                cfg.max_states = v.parse().map_err(|_| format!("bad --max-states `{v}`"))?;
            }
            "--max-depth" => {
                let v = it.next().ok_or("--max-depth needs a value")?;
                cfg.max_depth = v.parse().map_err(|_| format!("bad --max-depth `{v}`"))?;
            }
            "--generate" => {
                let v = it.next().ok_or("--generate needs SEED,PROCS,LEN,AIDS")?;
                let parts: Vec<&str> = v.split(',').collect();
                if parts.len() != 4 {
                    return Err(format!(
                        "--generate wants 4 comma-separated values, got `{v}`"
                    ));
                }
                let nums: Vec<u64> = parts
                    .iter()
                    .map(|s| s.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| format!("bad --generate spec `{v}`"))?;
                source = Some(Source::Generate {
                    seed: nums[0],
                    procs: nums[1] as usize,
                    len: nums[2] as usize,
                    aids: nums[3] as usize,
                });
            }
            "-" => source = Some(Source::Stdin),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            path => source = Some(Source::File(path.to_string())),
        }
    }
    let source = source.ok_or("no input: pass a file, `-`, or --generate")?;
    Ok(Args {
        source,
        cfg,
        json,
        quiet,
    })
}

fn load(source: &Source) -> Result<Program, String> {
    match source {
        Source::Generate {
            seed,
            procs,
            len,
            aids,
        } => Ok(Program::generate(*seed, *procs, *len, *aids)),
        Source::Stdin => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .map_err(|e| format!("reading stdin: {e}"))?;
            text.parse().map_err(|e| format!("parse error: {e}"))
        }
        Source::File(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            text.parse().map_err(|e| format!("parse error: {e}"))
        }
    }
}

fn mode_name(mode: Mode) -> &'static str {
    match mode {
        Mode::Naive => "naive",
        Mode::Stateful => "stateful",
        Mode::SleepSet => "sleepset",
        Mode::Dpor => "dpor",
        Mode::DporSym => "dpor+sym",
    }
}

fn verdict_name(r: &McReport) -> &'static str {
    match r.completeness {
        Completeness::Exhausted => "exhausted",
        Completeness::BudgetExceeded(BudgetReason::MaxStates) => "budget-exceeded:states",
        Completeness::BudgetExceeded(BudgetReason::MaxDepth) => "budget-exceeded:depth",
    }
}

fn schedule_json(s: &[usize]) -> String {
    let items: Vec<String> = s.iter().map(usize::to_string).collect();
    format!("[{}]", items.join(","))
}

fn render_json(r: &McReport, mode: Mode) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"verdict\": \"{}\",", verdict_name(r));
    let _ = writeln!(out, "  \"mode\": \"{}\",", mode_name(mode));
    let _ = writeln!(out, "  \"states\": {},", r.states);
    let _ = writeln!(out, "  \"transitions\": {},", r.transitions);
    let _ = writeln!(out, "  \"cache_hits\": {},", r.cache_hits);
    let _ = writeln!(out, "  \"sleep_pruned\": {},", r.sleep_pruned);
    let _ = writeln!(out, "  \"singleton_states\": {},", r.singleton_states);
    let _ = writeln!(out, "  \"sym_group\": {},", r.sym_group);
    let _ = writeln!(out, "  \"frontier_remaining\": {},", r.frontier_remaining);
    let _ = writeln!(
        out,
        "  \"explored_fraction\": {:.4},",
        r.explored_fraction()
    );
    let _ = writeln!(out, "  \"completed_terminals\": {},", r.completed_terminals);
    let _ = writeln!(out, "  \"deadlock_terminals\": {},", r.deadlock_terminals);
    let _ = writeln!(out, "  \"distinct_outputs\": {},", r.distinct_outputs());
    match &r.pristine_witness {
        Some(w) => {
            let _ = writeln!(out, "  \"pristine_schedule\": {},", schedule_json(w));
        }
        None => {
            let _ = writeln!(out, "  \"pristine_schedule\": null,");
        }
    }
    let _ = writeln!(
        out,
        "  \"proves_no_pristine_schedule\": {}",
        r.proves_no_pristine_schedule()
    );
    let _ = writeln!(out, "}}");
    out
}

fn render_text(r: &McReport, mode: Mode, quiet: bool) -> String {
    let mut out = String::new();
    let pristine = match &r.pristine_witness {
        Some(w) => format!("pristine schedule found ({} steps)", w.len()),
        None if r.completeness.is_exhausted() => {
            "no schedule finalizes pristinely (proven over the full reduced space)".to_string()
        }
        None => format!(
            "no pristine schedule found (budget exceeded at {:.1}% of the reduced space: not a proof)",
            r.explored_fraction() * 100.0
        ),
    };
    let _ = writeln!(
        out,
        "verdict: {} [{}] — {}",
        verdict_name(r),
        mode_name(mode),
        pristine
    );
    if quiet {
        return out;
    }
    let _ = writeln!(
        out,
        "explored: {} states, {} transitions ({} cache hits, {} sleep-pruned, {} singleton states)",
        r.states, r.transitions, r.cache_hits, r.sleep_pruned, r.singleton_states
    );
    let _ = writeln!(
        out,
        "terminals: {} completed, {} deadlocked; {} distinct committed outcome(s)",
        r.completed_terminals,
        r.deadlock_terminals,
        r.distinct_outputs()
    );
    if let Some(w) = &r.pristine_witness {
        let steps: Vec<String> = w.iter().map(|p| format!("P{p}")).collect();
        let _ = writeln!(out, "witness: {}", steps.join(" "));
    }
    out
}

/// Write to stdout, treating a broken pipe (`hope-mc ... | head`) as a
/// clean early exit rather than a panic. Other I/O errors exit 2.
fn emit(text: &str) -> Result<(), ExitCode> {
    use std::io::Write as _;
    match std::io::stdout().write_all(text.as_bytes()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => Err(ExitCode::SUCCESS),
        Err(e) => {
            eprintln!("hope-mc: cannot write to stdout: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("hope-mc: {msg}");
            eprintln!("{}", usage());
            return ExitCode::from(2);
        }
    };
    let program = match load(&args.source) {
        Ok(p) => p,
        Err(msg) => {
            eprintln!("hope-mc: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = check(&program, &args.cfg);
    let rendered = if args.json {
        render_json(&report, args.cfg.mode)
    } else {
        render_text(&report, args.cfg.mode, args.quiet)
    };
    if let Err(code) = emit(&rendered) {
        return code;
    }
    match report.completeness {
        Completeness::Exhausted => ExitCode::SUCCESS,
        Completeness::BudgetExceeded(_) => ExitCode::from(1),
    }
}
