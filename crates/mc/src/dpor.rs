//! Full Flanagan–Godefroid DPOR: per-state *dynamic backtracking sets*
//! computed from cascade-closure footprints, sleep sets, canonical-state
//! caching with subtree-summary replay, and optional symmetry reduction.
//!
//! The PR-5 engine explored **every** enabled transition at every state
//! and relied on persistent singletons + sleep sets to prune. This engine
//! inverts the control: a state's `backtrack` set starts with a *single*
//! transition (the persistent singleton when one exists, else the first
//! enabled process) and grows only when a race demands it — the
//! Flanagan–Godefroid insertion rule:
//!
//! > when a new state is pushed, for every process `p` that still has a
//! > pending transition, find the **deepest** stack frame whose taken
//! > transition is dependent with `p`'s next step and was taken by a
//! > different process; add `p` to that frame's backtrack set if `p` was
//! > enabled there, else add every enabled process of that frame.
//!
//! Dependence comes from the same cascade-closure [`Footprint`]s the
//! sleep sets use, so a deny's rollback victims and an affirm's
//! finalization cascade count as contact. Treating every pair as
//! potentially co-enabled is the sound (coarse) instantiation of FG's
//! may-be-co-enabled side condition.
//!
//! **State caching** makes plain FG unsound: a cache hit cuts a subtree
//! whose internal transitions never get the chance to insert backtrack
//! points against the *current* stack. The standard stateful-DPOR repair
//! is applied: every cache entry carries a per-process union of the
//! footprints its subtree executed ([`Summary`]), and a hit replays those
//! summaries against the live stack — inserting at **every** dependent
//! frame, because a union cannot localize the deepest one. Sleep-set
//! subsumption guards the hit itself: a cached exploration only covers a
//! re-arrival whose sleep set is a superset of one it was explored under
//! (smaller sleep sets explore more), so entries record the antichain of
//! sleep sets they are complete for. Re-arrivals through a *cycle* (the
//! state is still open on the stack) conservatively force the open
//! ancestor to full expansion and taint the frames in between so their
//! completeness is never recorded.
//!
//! **Symmetry reduction** ([`Mode::DporSym`]): states are keyed by the
//! minimum of [`canon::state_key_perm`] over the program's automorphism
//! group ([`canon::symmetries`]), so mirrored interleavings of
//! program-identical processes collapse. All cache bookkeeping (sleep
//! sets, summaries) is stored in canonical coordinates and translated
//! through the minimizing permutation on the way in and out. Committed
//! outcomes are recorded orbit-closed — every permutation's fingerprint
//! is inserted — so the report's output set equals the unreduced one and
//! cross-mode agreement checks compare directly.

use std::collections::{BTreeMap, BTreeSet};

use hope_core::machine::{Machine, StepOutcome};
use hope_core::program::Program;

use crate::canon::{self, ProcPerm};
use crate::indep::{footprint, invisible_singleton, Footprint, Summary};
use crate::{is_pristine, BudgetReason, Completeness, McConfig, McReport, Mode, TerminalWitness};

/// Cache record for one canonical state.
#[derive(Debug, Default)]
struct CacheEntry {
    /// Antichain of canonical-coordinate sleep sets under which this
    /// state's subtree was *completely* explored. Bounded: sleep sets are
    /// subsets of the process indices.
    explored_under: Vec<BTreeSet<usize>>,
    /// Per-canonical-process union of the footprints of every transition
    /// executed in the state's explored subtree.
    summary: BTreeMap<usize, Summary>,
    /// `Some(stack index)` while the state is open on the DFS stack.
    on_stack: Option<usize>,
}

/// One open state on the DFS stack.
struct Frame {
    machine: Machine,
    key: Vec<u8>,
    /// Program coordinate → canonical coordinate (identity unless
    /// symmetry reduction picked a nontrivial minimizing permutation).
    perm: ProcPerm,
    enabled: Vec<usize>,
    /// Next-step footprint of every process that still has a statement —
    /// including blocked ones: FG's race scan covers disabled transitions
    /// (a blocked `recv` races the send that would enable it).
    next_fp: BTreeMap<usize, Footprint>,
    /// The dynamic backtracking set: transitions this state must explore.
    backtrack: BTreeSet<usize>,
    done: BTreeSet<usize>,
    sleep: BTreeSet<usize>,
    /// Transition taken to the currently open child, and its footprint.
    chosen: Option<usize>,
    chosen_fp: Option<Footprint>,
    /// Vector clock of the chosen transition: `clock[c]` is 1 + the
    /// deepest stack index of a transition by process `c` in its
    /// dependence-chain past (0 = none). Computed when the transition is
    /// taken; used for FG's happens-before side condition.
    chosen_clock: Option<Vec<usize>>,
    /// Subtree footprint summary accumulated in program coordinates.
    acc: BTreeMap<usize, Summary>,
    /// A cycle was cut below this frame: its completeness must not be
    /// recorded (its summary would under-approximate the subtree).
    tainted: bool,
    /// The proven persistent singleton at this state, if any. The
    /// [`Reach`]-based invisibility proof is strictly finer than pairwise
    /// footprint independence, so when the chosen transition *is* the
    /// singleton, any race the footprint scan reports against it is a
    /// false positive: the scan skips the frame and keeps looking deeper
    /// (skipping — not stopping — preserves the insertion the real,
    /// deeper race needs). This is the static+dynamic hybrid that lets
    /// full DPOR recover the baseline's singleton-chain linearity.
    ///
    /// [`Reach`]: crate::indep::Reach
    invisible: Option<usize>,
}

/// How an arrival at a (possibly cached) state is handled.
enum Arrival {
    /// First visit: allocate a cache entry and expand.
    New,
    /// The state is still open at this stack index — a cycle.
    Cycle(usize),
    /// A recorded exploration subsumes this arrival; replay these
    /// program-coordinate summaries against the stack and prune.
    Subsumed(Vec<(usize, Summary)>),
    /// Cached, but only under incomparable sleep sets: expand again.
    Reexplore,
}

struct Engine {
    cfg: McConfig,
    perms: Vec<ProcPerm>,
    cache: BTreeMap<Vec<u8>, CacheEntry>,
    stack: Vec<Frame>,
    report: McReport,
    stopped: bool,
}

fn invert(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (p, &c) in perm.iter().enumerate() {
        inv[c] = p;
    }
    inv
}

/// Explore `program`'s schedule space with full FG DPOR
/// ([`Mode::Dpor`]) or FG DPOR + symmetry reduction ([`Mode::DporSym`]).
pub(crate) fn explore(program: &Program, cfg: &McConfig) -> McReport {
    let perms = if cfg.mode == Mode::DporSym {
        canon::symmetries(program)
    } else {
        vec![canon::identity(program.code.len())]
    };
    let mut eng = Engine {
        cfg: cfg.clone(),
        report: McReport::empty(perms.len()),
        perms,
        cache: BTreeMap::new(),
        stack: Vec::new(),
        stopped: false,
    };
    eng.push_state(Machine::new(program.clone()), BTreeSet::new());
    while !eng.stopped {
        let Some(top) = eng.stack.last() else { break };
        let pick = top
            .backtrack
            .iter()
            .copied()
            .find(|p| !top.done.contains(p) && !top.sleep.contains(p));
        match pick {
            Some(p) => eng.step(p),
            None => eng.pop_frame(),
        }
    }
    if eng.stopped {
        // Quantify what the budget left behind: pending backtrack
        // transitions across the abandoned stack (a lower bound — races
        // not yet discovered could have added more).
        for f in &eng.stack {
            eng.report.frontier_remaining += f
                .backtrack
                .iter()
                .filter(|p| !f.done.contains(p) && !f.sleep.contains(p))
                .count();
        }
    }
    eng.report
}

impl Engine {
    /// Take transition `p` from the top frame and push the successor.
    fn step(&mut self, p: usize) {
        let top_idx = self.stack.len() - 1;
        let fp = self.stack[top_idx]
            .next_fp
            .get(&p)
            .cloned()
            .expect("backtrack members are enabled and have footprints");
        // Vector clock of this transition: join the clocks of every path
        // transition it directly depends on (chains compose through those
        // clocks) and of `p`'s own program-order past, then stamp its own
        // 1-based depth. Frames strictly below the top are the current
        // path; the top's `chosen` is a stale sibling until overwritten.
        let n = self.stack[top_idx].machine.process_count();
        let mut clock = vec![0usize; n];
        for g in &self.stack[..top_idx] {
            let Some(cp) = g.chosen else { continue };
            // A proven-invisible singleton commutes with every co-enabled
            // step of another process, so a footprint hit against it is a
            // false positive — exactly as in the race scans. Joining its
            // clock anyway would forge a happens-before edge through it
            // (e.g. a later `recv` "depending" on an invisible `send`
            // whose message it never pops), and the inflated clock would
            // then filter out genuine races deeper in the stack. Skipping
            // only under-approximates HB, which is always sound here.
            if cp != p && g.invisible == Some(cp) {
                continue;
            }
            let cfp = g.chosen_fp.as_ref().expect("chosen records a footprint");
            if cp == p || !cfp.independent(&fp) {
                let cclk = g.chosen_clock.as_ref().expect("chosen records a clock");
                for (slot, &v) in clock.iter_mut().zip(cclk) {
                    *slot = (*slot).max(v);
                }
            }
        }
        clock[p] = top_idx + 1;
        let top = &mut self.stack[top_idx];
        top.done.insert(p);
        // Sleep inheritance: a sibling explored earlier (or inherited
        // sleeper) stays asleep in this child iff it commutes with `p`.
        let child_sleep: BTreeSet<usize> = top
            .sleep
            .iter()
            .chain(top.done.iter())
            .copied()
            .filter(|&q| q != p)
            .filter(|q| {
                top.next_fp
                    .get(q)
                    .map(|fq| fq.independent(&fp))
                    .unwrap_or(false)
            })
            .collect();
        top.acc.entry(p).or_default().absorb(&fp);
        top.chosen = Some(p);
        top.chosen_fp = Some(fp);
        top.chosen_clock = Some(clock);
        let mut child = top.machine.clone();
        child.step(p).expect("machine-built programs cannot err");
        self.report.transitions += 1;
        self.push_state(child, child_sleep);
    }

    /// Arrive at `m` with the given (program-coordinate) sleep set:
    /// terminal-check, cache-check, race-scan, and frame push.
    fn push_state(&mut self, m: Machine, sleep: BTreeSet<usize>) {
        if self.report.states >= self.cfg.max_states {
            self.report.completeness = Completeness::BudgetExceeded(BudgetReason::MaxStates);
            self.stopped = true;
            return;
        }
        if self.stack.len() >= self.cfg.max_depth {
            self.report.completeness = Completeness::BudgetExceeded(BudgetReason::MaxDepth);
            self.report.frontier_remaining += 1;
            return;
        }
        let (key, perm) = canon::sym_state_key(&m, &self.perms);
        let n = m.process_count();
        let enabled: Vec<usize> = (0..n)
            .filter(|&p| m.poll(p) == StepOutcome::Executed)
            .collect();
        let sleep_canon: BTreeSet<usize> = sleep.iter().map(|&q| perm[q]).collect();

        let arrival = match self.cache.get(&key) {
            None => Arrival::New,
            Some(e) => {
                if let Some(idx) = e.on_stack {
                    Arrival::Cycle(idx)
                } else if e.explored_under.iter().any(|z| z.is_subset(&sleep_canon)) {
                    let inv = invert(&perm);
                    Arrival::Subsumed(
                        e.summary
                            .iter()
                            .map(|(&c, s)| (inv[c], s.rename(&inv)))
                            .collect(),
                    )
                } else {
                    Arrival::Reexplore
                }
            }
        };
        match arrival {
            Arrival::Cycle(idx) => {
                // The subtree below the repeated state will be cut here;
                // cover it by fully expanding the still-open ancestor, and
                // taint the frames in between (their summaries and
                // completeness claims would miss the cut subtree).
                self.report.cache_hits += 1;
                let all: Vec<usize> = self.stack[idx].enabled.clone();
                self.stack[idx].backtrack.extend(all);
                for f in self.stack[idx + 1..].iter_mut() {
                    f.tainted = true;
                }
                return;
            }
            Arrival::Subsumed(replay) => {
                self.report.cache_hits += 1;
                for (q, s) in &replay {
                    self.replay_races(*q, s);
                }
                if let Some(parent) = self.stack.last_mut() {
                    for (q, s) in replay {
                        parent.acc.entry(q).or_default().merge(&s);
                    }
                }
                return;
            }
            Arrival::New => {
                self.report.states += 1;
                self.cache.insert(key.clone(), CacheEntry::default());
            }
            Arrival::Reexplore => {}
        }

        if enabled.is_empty() {
            self.terminal(&m);
            let entry = self.cache.get_mut(&key).expect("entry just ensured");
            // A terminal is complete under any sleep set.
            if entry.explored_under.is_empty() {
                entry.explored_under.push(BTreeSet::new());
            }
            return;
        }

        let next_fp: BTreeMap<usize, Footprint> = (0..n)
            .filter(|&q| m.next_stmt(q).is_some())
            .map(|q| (q, footprint(&m, q)))
            .collect();

        // FG backtrack insertion for every pending transition. A
        // process's happens-before past is the clock of its last path
        // transition (FG's `i →S p`: some executed transition of `p` is
        // causally after `S_i`); frames inside that past are not races.
        for (&q, fq) in &next_fp {
            let qclock: Option<Vec<usize>> = self
                .stack
                .iter()
                .rev()
                .find(|f| f.chosen == Some(q))
                .map(|f| f.chosen_clock.clone().expect("chosen records a clock"));
            self.insert_race_deepest(q, fq, qclock.as_deref());
        }

        // Seed the backtrack set: a persistent singleton when one exists
        // (provably invisible ⇒ {p} is a persistent set), else the first
        // non-sleeping enabled process. If the only seed sleeps, the
        // state is already covered by a sibling's exploration.
        let mut backtrack = BTreeSet::new();
        let invisible = invisible_singleton(&m, &enabled);
        match invisible {
            Some(s) => {
                self.report.singleton_states += 1;
                if sleep.contains(&s) {
                    self.report.sleep_pruned += 1;
                } else {
                    backtrack.insert(s);
                }
            }
            None => match enabled.iter().find(|p| !sleep.contains(p)) {
                Some(&first) => {
                    backtrack.insert(first);
                }
                None => self.report.sleep_pruned += enabled.len(),
            },
        }

        let idx = self.stack.len();
        self.cache
            .get_mut(&key)
            .expect("entry exists for pushed state")
            .on_stack = Some(idx);
        self.stack.push(Frame {
            machine: m,
            key,
            perm,
            enabled,
            next_fp,
            backtrack,
            done: BTreeSet::new(),
            sleep,
            chosen: None,
            chosen_fp: None,
            chosen_clock: None,
            acc: BTreeMap::new(),
            tainted: false,
            invisible,
        });
    }

    /// The FG insertion rule: find the deepest stack frame whose taken
    /// transition is dependent with `fq`, belongs to another process, and
    /// does not happen-before `q`'s next transition; add `q` to its
    /// backtrack set (or all its enabled processes if `q` was not enabled
    /// there). `qclock` is the vector clock of `q`'s last path transition
    /// (its program-order past), `None` if `q` has not stepped yet.
    fn insert_race_deepest(&mut self, q: usize, fq: &Footprint, qclock: Option<&[usize]>) {
        for i in (0..self.stack.len()).rev() {
            let f = &self.stack[i];
            let Some(cp) = f.chosen else { continue };
            if cp == q {
                continue;
            }
            // A chosen proven-invisible singleton cannot really race with
            // anything — the footprint hit is a false positive; keep
            // scanning deeper for the genuine racing frame.
            if f.invisible == Some(cp) {
                continue;
            }
            // Happens-before: `q`'s past already contains process `cp` up
            // to depth `clock[cp]`; the transition at 1-based depth `i+1`
            // is inside that past, so it is ordered before `q`'s next
            // step in every equivalent reordering — not a race.
            if qclock.is_some_and(|c| c[cp] > i) {
                continue;
            }
            let cfp = f.chosen_fp.as_ref().expect("chosen records a footprint");
            if !cfp.independent(fq) {
                self.insert_backtrack(i, q);
                return;
            }
        }
    }

    /// Summary replay on a cache hit: the cut subtree's per-process
    /// footprint unions race against the live stack. A union cannot name
    /// the deepest dependent frame, so insert at *every* dependent one.
    fn replay_races(&mut self, q: usize, s: &Summary) {
        for i in 0..self.stack.len() {
            let f = &self.stack[i];
            let Some(cp) = f.chosen else { continue };
            if cp == q || f.invisible == Some(cp) {
                continue;
            }
            let dep = f
                .chosen_fp
                .as_ref()
                .map(|cfp| s.dependent(cfp))
                .unwrap_or(false);
            if dep {
                self.insert_backtrack(i, q);
            }
        }
    }

    fn insert_backtrack(&mut self, i: usize, q: usize) {
        let f = &mut self.stack[i];
        if f.enabled.contains(&q) {
            f.backtrack.insert(q);
        } else {
            let all: Vec<usize> = f.enabled.clone();
            f.backtrack.extend(all);
        }
    }

    /// Record a terminal state. Outcomes are inserted orbit-closed so the
    /// output set matches an unreduced exploration's exactly.
    fn terminal(&mut self, m: &Machine) {
        let completed = (0..m.process_count()).all(|p| m.poll(p) == StepOutcome::Done);
        let pristine = completed && is_pristine(m);
        let path: Vec<usize> = self
            .stack
            .iter()
            .map(|f| f.chosen.expect("on-path frame took a transition"))
            .collect();
        if completed {
            self.report.completed_terminals += 1;
            for perm in &self.perms {
                self.report
                    .outputs
                    .insert(canon::commit_fingerprint_perm(m, perm));
            }
        } else {
            self.report.deadlock_terminals += 1;
        }
        if pristine && self.report.pristine_witness.is_none() {
            self.report.pristine_witness = Some(path.clone());
        }
        if self.report.witnesses.len() < self.cfg.max_witnesses {
            self.report.witnesses.push(TerminalWitness {
                schedule: path,
                completed,
                pristine,
            });
        }
    }

    /// Close the top frame: record its completeness (unless tainted or
    /// budget-stopped), fold its subtree summary into the cache entry and
    /// the parent frame.
    fn pop_frame(&mut self) {
        let f = self.stack.pop().expect("pop on nonempty stack");
        self.report.sleep_pruned += f
            .backtrack
            .iter()
            .filter(|p| f.sleep.contains(p) && !f.done.contains(p))
            .count();
        let entry = self
            .cache
            .get_mut(&f.key)
            .expect("open frame has a cache entry");
        entry.on_stack = None;
        for (q, s) in &f.acc {
            entry
                .summary
                .entry(f.perm[*q])
                .or_default()
                .merge(&s.rename(&f.perm));
        }
        if !f.tainted && !self.stopped {
            let z: BTreeSet<usize> = f.sleep.iter().map(|&q| f.perm[q]).collect();
            let dominated = entry.explored_under.iter().any(|z0| z0.is_subset(&z));
            if !dominated {
                entry.explored_under.retain(|z0| !z.is_subset(z0));
                entry.explored_under.push(z);
            }
        }
        if let Some(parent) = self.stack.last_mut() {
            for (q, s) in f.acc {
                parent.acc.entry(q).or_default().merge(&s);
            }
        }
    }
}
