//! Canonical state fingerprints.
//!
//! Two interleavings that commute independent steps reach machine states
//! that are *semantically* identical but *representationally* different:
//! the engine allocates [`IntervalId`]s and message ids from global
//! sequential counters, so the raw ids depend on execution order. A
//! visited-state cache keyed on raw state would never merge them and the
//! reduction would buy nothing.
//!
//! This module renames every order-dependent id to a schedule-independent
//! coordinate before encoding:
//!
//! * a live interval becomes `(process, position in that process's live
//!   engine history)` — stable because rollback only truncates suffixes;
//! * message ids are dropped entirely; a message is its `(sender, tag)`;
//! * everything else (AID decision state, `DOM`/`IDO`/`IHD`/`IHA` sets,
//!   program counters, histories, mailboxes, resume marks) is encoded
//!   field-by-field in a fixed order.
//!
//! The encoding itself — not a hash of it — is used as the cache key: a
//! 64-bit hash collision would silently merge distinct states and make the
//! checker unsound, while full keys only cost memory the state budget
//! already bounds.

use std::collections::BTreeMap;

use hope_core::machine::{Event, Machine, Msg};
use hope_core::program::{Program, Stmt};
use hope_core::{AidId, AidState, IntervalId, IntervalStatus, ProcessId};

/// Schedule-independent name for a live interval: `(process index,
/// position in that process's live engine history)`.
type CanonRef = (u64, u64);

/// A process renaming: `perm[p]` is the canonical index assigned to
/// original process `p`. The identity permutation reproduces the plain
/// (non-symmetry) encodings exactly.
pub type ProcPerm = Vec<usize>;

/// Order-independent renaming tables for one machine state, under a
/// process permutation.
struct Names {
    intervals: BTreeMap<IntervalId, CanonRef>,
    procs: BTreeMap<ProcessId, u64>,
    /// `perm[p]` = canonical index of original process `p`; statements
    /// that name processes by *program index* (only `Send { to }`) are
    /// renamed through this.
    perm: ProcPerm,
}

impl Names {
    fn build_perm(m: &Machine, perm: &[usize]) -> Self {
        let mut intervals = BTreeMap::new();
        let mut procs = BTreeMap::new();
        for (p, &cname) in perm.iter().enumerate().take(m.process_count()) {
            let pid = m.pid(p);
            procs.insert(pid, cname as u64);
            let history = m.engine().history(pid).expect("machine process");
            for (i, &a) in history.iter().enumerate() {
                intervals.insert(a, (cname as u64, i as u64));
            }
        }
        Names {
            intervals,
            procs,
            perm: perm.to_vec(),
        }
    }

    fn send_target(&self, to: usize) -> u64 {
        self.perm[to] as u64
    }

    fn interval(&self, a: IntervalId) -> CanonRef {
        *self
            .intervals
            .get(&a)
            .expect("canonicalized interval is live")
    }

    fn process(&self, pid: ProcessId) -> u64 {
        *self
            .procs
            .get(&pid)
            .expect("canonicalized pid is registered")
    }
}

/// Fixed-width little-endian byte sink. Unambiguous because every field is
/// written in a fixed order with explicit length prefixes for sequences.
#[derive(Default)]
struct Enc(Vec<u8>);

impl Enc {
    fn u(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    fn tag(&mut self, t: u8) {
        self.0.push(t);
    }

    fn flag(&mut self, b: bool) {
        self.0.push(b as u8);
    }

    fn cref(&mut self, r: CanonRef) {
        self.u(r.0);
        self.u(r.1);
    }

    fn opt_cref(&mut self, r: Option<CanonRef>) {
        match r {
            None => self.tag(0),
            Some(r) => {
                self.tag(1);
                self.cref(r);
            }
        }
    }

    fn stmt(&mut self, s: Stmt, names: &Names) {
        match s {
            Stmt::Guess(x) => {
                self.tag(0);
                self.u(x as u64);
            }
            Stmt::Affirm(x) => {
                self.tag(1);
                self.u(x as u64);
            }
            Stmt::Deny(x) => {
                self.tag(2);
                self.u(x as u64);
            }
            Stmt::FreeOf(x) => {
                self.tag(3);
                self.u(x as u64);
            }
            Stmt::Compute => self.tag(4),
            Stmt::Send { to } => {
                self.tag(5);
                self.u(names.send_target(to));
            }
            Stmt::Recv => self.tag(6),
        }
    }

    /// Event with message ids dropped (they are allocation-order artefacts).
    fn event(&mut self, e: &Event, names: &Names) {
        match e {
            Event::Guess { aid, value } => {
                self.tag(0);
                self.u(aid.index());
                self.flag(*value);
            }
            Event::Affirm { aid, speculative } => {
                self.tag(1);
                self.u(aid.index());
                self.flag(*speculative);
            }
            Event::Deny { aid, speculative } => {
                self.tag(2);
                self.u(aid.index());
                self.flag(*speculative);
            }
            Event::FreeOf { aid } => {
                self.tag(3);
                self.u(aid.index());
            }
            Event::Compute => self.tag(4),
            Event::Send { to, .. } => {
                self.tag(5);
                self.u(names.process(*to));
            }
            Event::Recv { speculative, .. } => {
                self.tag(6);
                self.flag(*speculative);
            }
            Event::GhostDropped { denied, .. } => {
                self.tag(7);
                self.u(denied.index());
            }
            Event::Skipped { stmt } => {
                self.tag(8);
                self.stmt(*stmt, names);
            }
            Event::Resumed { at_pc } => {
                self.tag(9);
                self.u(*at_pc as u64);
            }
            // `Event` is #[non_exhaustive]; new variants must not silently
            // alias an existing encoding.
            _ => self.tag(255),
        }
    }

    fn msg(&mut self, m: &Msg, names: &Names) {
        self.u(names.process(m.from));
        self.u(m.tag.len() as u64);
        for x in m.tag.iter() {
            self.u(x.index());
        }
    }
}

fn aid_state_tag(s: AidState) -> u8 {
    match s {
        AidState::Undecided => 0,
        AidState::Affirmed => 1,
        AidState::Denied => 2,
    }
}

/// Original process indices listed in canonical order: element `c` is the
/// original index renamed to canonical slot `c`.
fn canonical_order(perm: &[usize]) -> Vec<usize> {
    let mut inv = vec![0usize; perm.len()];
    for (p, &c) in perm.iter().enumerate() {
        inv[c] = p;
    }
    inv
}

/// The identity permutation on `n` processes.
pub fn identity(n: usize) -> ProcPerm {
    (0..n).collect()
}

fn encode_histories(e: &mut Enc, m: &Machine, names: &Names) {
    for p in canonical_order(&names.perm) {
        let h = m.history(p);
        e.u(h.states().len() as u64);
        for rec in h.states() {
            e.event(&rec.event, names);
            e.opt_cref(rec.interval.map(|a| names.interval(a)));
            e.tag(match rec.g {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
            e.u(rec.pc as u64);
        }
    }
}

fn encode_aids(e: &mut Enc, m: &Machine, names: &Names, with_control: bool) {
    let engine = m.engine();
    e.u(engine.aid_count() as u64);
    for i in 0..engine.aid_count() {
        let v = engine
            .aid(AidId::from_index(i as u64))
            .expect("aid in range");
        e.tag(aid_state_tag(v.state()));
        e.flag(v.is_consumed());
        if with_control {
            e.opt_cref(v.speculatively_affirmed_by().map(|a| names.interval(a)));
            e.opt_cref(v.speculatively_denied_by().map(|a| names.interval(a)));
            let mut dom: Vec<CanonRef> = v.dom().iter().map(|a| names.interval(a)).collect();
            // DOM iterates in raw-id order, which is allocation order:
            // re-sort under canonical names.
            dom.sort_unstable();
            e.u(dom.len() as u64);
            for r in dom {
                e.cref(r);
            }
        }
    }
}

/// Full canonical encoding of a machine state, suitable as a
/// visited-cache key: two states with equal keys have identical futures
/// and identical verdict-relevant pasts (rollback/ghost/skip sins).
pub fn state_key(m: &Machine) -> Vec<u8> {
    state_key_perm(m, &identity(m.process_count()))
}

/// [`state_key`] with every process reference renamed through `perm` and
/// processes encoded in canonical (`perm`-image) order. With the identity
/// permutation this is byte-identical to [`state_key`]; with a program
/// symmetry it produces the key the machine would have if the symmetric
/// processes had been swapped from the start.
pub fn state_key_perm(m: &Machine, perm: &[usize]) -> Vec<u8> {
    let names = Names::build_perm(m, perm);
    let engine = m.engine();
    let mut e = Enc::default();
    e.u(m.process_count() as u64);
    encode_aids(&mut e, m, &names, true);
    for p in canonical_order(perm) {
        let pid = m.pid(p);
        e.u(m.pc(p) as u64);
        let history = engine.history(pid).expect("machine process");
        e.u(history.len() as u64);
        for &a in history {
            let v = engine.interval(a).expect("live interval");
            match v.status() {
                IntervalStatus::Definite => e.tag(0),
                IntervalStatus::Speculative => {
                    e.tag(1);
                    for set in [v.ido(), v.ihd(), v.iha(), v.guessed()] {
                        e.u(set.len() as u64);
                        for x in set {
                            e.u(x.index());
                        }
                    }
                    e.u(v.checkpoint().0);
                    let (mpc, mhist, mdel) = m.resume_mark(p, a).expect("live interval has a mark");
                    e.u(mpc as u64);
                    e.u(mhist as u64);
                    e.u(mdel as u64);
                }
                IntervalStatus::RolledBack => unreachable!("live history has no rolled-back"),
            }
        }
        e.u(m.mailbox(p).count() as u64);
        for msg in m.mailbox(p) {
            e.msg(msg, &names);
        }
        e.u(m.delivered(p).len() as u64);
        for msg in m.delivered(p) {
            e.msg(msg, &names);
        }
    }
    encode_histories(&mut e, m, &names);
    // Verdict-relevant sins: states that differ only in *whether* a
    // rollback or ghost ever happened must not merge, or a sinful path
    // could claim a pristine terminal.
    let stats = engine.stats();
    e.flag(stats.rollback_events > 0);
    e.flag(stats.ghosts > 0);
    e.0
}

/// Canonical encoding of a run's *committed outcome*: final AID decisions
/// plus each process's surviving history restricted to program-visible
/// behaviour. Two completed runs commit the same observable outcome iff
/// their fingerprints are equal — this is what the Theorem 6.x
/// committed-output determinism claims quantify over.
///
/// Scheduling bookkeeping is deliberately excluded: *which* interval was
/// current, whether a primitive happened to be speculative at the time,
/// ghost messages filtered before delivery, and `Resumed` markers all
/// record *when* commitment happened, never *what* was committed (the
/// same scoping the chaos oracle applies to fault plans). What stays is
/// everything a program could act on: each guess's returned value, the
/// decisions taken, computes, send targets, delivered-message senders,
/// and the final decision state of every AID.
pub fn commit_fingerprint(m: &Machine) -> Vec<u8> {
    commit_fingerprint_perm(m, &identity(m.process_count()))
}

/// [`commit_fingerprint`] renamed through `perm` (see [`state_key_perm`]).
pub fn commit_fingerprint_perm(m: &Machine, perm: &[usize]) -> Vec<u8> {
    let names = Names::build_perm(m, perm);
    let mut e = Enc::default();
    e.u(m.process_count() as u64);
    encode_aids(&mut e, m, &names, false);
    for p in canonical_order(perm) {
        e.flag(m.poll(p) == hope_core::machine::StepOutcome::Done);
        let visible: Vec<&hope_core::machine::StateRecord> = m
            .history(p)
            .states()
            .iter()
            .filter(|rec| {
                !matches!(
                    rec.event,
                    Event::GhostDropped { .. } | Event::Resumed { .. }
                )
            })
            .collect();
        e.u(visible.len() as u64);
        for rec in visible {
            match &rec.event {
                Event::Guess { aid, value } => {
                    e.tag(0);
                    e.u(aid.index());
                    e.flag(*value);
                }
                Event::Affirm { aid, .. } => {
                    e.tag(1);
                    e.u(aid.index());
                }
                Event::Deny { aid, .. } => {
                    e.tag(2);
                    e.u(aid.index());
                }
                Event::FreeOf { aid } => {
                    e.tag(3);
                    e.u(aid.index());
                }
                Event::Compute => e.tag(4),
                Event::Send { to, .. } => {
                    e.tag(5);
                    e.u(names.process(*to));
                }
                Event::Recv { .. } => e.tag(6),
                Event::Skipped { stmt } => {
                    e.tag(8);
                    e.stmt(*stmt, &names);
                }
                Event::GhostDropped { .. } | Event::Resumed { .. } => unreachable!("filtered"),
                _ => e.tag(255),
            }
            e.tag(match rec.g {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
        }
        // The i-th surviving Recv delivered the i-th surviving message:
        // senders are program-visible.
        e.u(m.delivered(p).len() as u64);
        for msg in m.delivered(p) {
            e.u(names.process(msg.from));
        }
    }
    e.0
}

/// Beyond this many processes the n! symmetry search is not attempted
/// and only the identity is returned (still a sound subgroup).
const MAX_SYM_PROCS: usize = 6;

/// `Send` targets renamed through `perm`; all other statements (including
/// AID variables, which index a global pre-allocated AID array shared by
/// every process) are position-independent.
fn rename_stmt(s: Stmt, perm: &[usize]) -> Stmt {
    match s {
        Stmt::Send { to } => Stmt::Send { to: perm[to] },
        other => other,
    }
}

/// The program's symmetry group: every permutation `perm` of process
/// indices such that renaming send targets maps each process's code onto
/// the code of the process it is renamed to —
/// `rename(code[p], perm) == code[perm[p]]` for all `p`.
///
/// Such a permutation is an automorphism of the whole transition system:
/// AIDs are global and fixed, so permuting process identities of any
/// reachable state yields a reachable state with a bijectively
/// corresponding future. The result always contains the identity, and is
/// closed under composition and inverse (a subgroup of S_n), which is
/// what makes min-over-orbit canonicalization sound.
pub fn symmetries(program: &Program) -> Vec<ProcPerm> {
    let n = program.code.len();
    if n > MAX_SYM_PROCS {
        return vec![identity(n)];
    }
    let mut found = Vec::new();
    let mut perm = identity(n);
    permute(&mut perm, 0, &mut |perm| {
        let ok = (0..n).all(|p| {
            let renamed: Vec<Stmt> = program.code[p]
                .iter()
                .map(|&s| rename_stmt(s, perm))
                .collect();
            renamed == program.code[perm[p]]
        });
        if ok {
            found.push(perm.to_vec());
        }
    });
    found.sort_unstable();
    found
}

/// Enumerate permutations of `perm[at..]` in place (simple swap recursion;
/// n ≤ [`MAX_SYM_PROCS`]).
fn permute(perm: &mut [usize], at: usize, visit: &mut impl FnMut(&[usize])) {
    if at == perm.len() {
        visit(perm);
        return;
    }
    for i in at..perm.len() {
        perm.swap(at, i);
        permute(perm, at + 1, visit);
        perm.swap(at, i);
    }
}

/// Symmetry-canonical state key: the lexicographically smallest
/// [`state_key_perm`] over `perms`, together with the permutation that
/// produced it. Two states relatable by a program symmetry in `perms`
/// collapse to the same key; the returned permutation translates per-state
/// bookkeeping (backtrack sets, done sets, footprint summaries) between
/// the concrete state and its canonical representative.
///
/// # Panics
///
/// Panics if `perms` is empty (callers pass at least the identity).
pub fn sym_state_key(m: &Machine, perms: &[ProcPerm]) -> (Vec<u8>, ProcPerm) {
    let mut best: Option<(Vec<u8>, &ProcPerm)> = None;
    for perm in perms {
        let key = state_key_perm(m, perm);
        match &best {
            Some((b, _)) if *b <= key => {}
            _ => best = Some((key, perm)),
        }
    }
    let (key, perm) = best.expect("perms contains at least the identity");
    (key, perm.clone())
}

/// Symmetry-canonical committed-outcome fingerprint: the smallest
/// [`commit_fingerprint_perm`] over `perms`. Verdict-agreement comparisons
/// between symmetry-reduced and unreduced explorations must compare
/// outcome sets modulo the symmetry group — this is the canonical form
/// both sides map into.
///
/// # Panics
///
/// Panics if `perms` is empty (callers pass at least the identity).
pub fn sym_commit_fingerprint(m: &Machine, perms: &[ProcPerm]) -> Vec<u8> {
    perms
        .iter()
        .map(|perm| commit_fingerprint_perm(m, perm))
        .min()
        .expect("perms contains at least the identity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine_after(program: &Program, schedule: &[usize]) -> Machine {
        let mut m = Machine::new(program.clone());
        for &p in schedule {
            m.step(p).expect("machine-built programs cannot err");
        }
        m
    }

    #[test]
    fn commuting_independent_steps_converge() {
        // P0 and P1 guess disjoint AIDs: raw interval ids differ across
        // the two orders, canonical keys must not.
        let program: Program = "process P0:\n guess(x0)\nprocess P1:\n guess(x1)\n"
            .parse()
            .unwrap();
        let ab = machine_after(&program, &[0, 1]);
        let ba = machine_after(&program, &[1, 0]);
        assert_eq!(state_key(&ab), state_key(&ba));
        assert_eq!(commit_fingerprint(&ab), commit_fingerprint(&ba));
    }

    #[test]
    fn commuting_sends_converge_despite_msg_ids() {
        let program: Program =
            "process P0:\n send(P2)\nprocess P1:\n send(P2)\nprocess P2:\n recv\n recv\n"
                .parse()
                .unwrap();
        // Sends to the same mailbox do NOT commute (delivery order), but
        // sends from the same state to *different* mailboxes do; message
        // ids must not distinguish them. Use distinct receivers:
        let program2: Program =
            "process P0:\n send(P1)\nprocess P1:\n recv\nprocess P2:\n compute\n"
                .parse()
                .unwrap();
        let _ = program;
        let a = machine_after(&program2, &[2, 0]);
        let b = machine_after(&program2, &[0, 2]);
        assert_eq!(state_key(&a), state_key(&b));
    }

    #[test]
    fn dependent_orders_differ() {
        // affirm vs deny race on the same AID: the two orders must NOT
        // collide.
        let program: Program = "process P0:\n affirm(x0)\nprocess P1:\n deny(x0)\n"
            .parse()
            .unwrap();
        let ab = machine_after(&program, &[0, 1]);
        let ba = machine_after(&program, &[1, 0]);
        assert_ne!(state_key(&ab), state_key(&ba));
    }

    #[test]
    fn symmetries_finds_swappable_twins() {
        // Identical code, no sends: both orders of the two processes.
        let twins: Program = "process P0:\n guess(x0)\nprocess P1:\n guess(x0)\n"
            .parse()
            .unwrap();
        assert_eq!(symmetries(&twins), vec![vec![0, 1], vec![1, 0]]);
        // Different code: identity only.
        let distinct: Program = "process P0:\n guess(x0)\nprocess P1:\n affirm(x0)\n"
            .parse()
            .unwrap();
        assert_eq!(symmetries(&distinct), vec![vec![0, 1]]);
    }

    #[test]
    fn symmetries_respects_send_targets() {
        // A ring: P0→P1→P0 with identical shapes. Swapping is a symmetry
        // because send targets rename onto each other.
        let ring: Program = "process P0:\n send(P1)\n recv\nprocess P1:\n send(P0)\n recv\n"
            .parse()
            .unwrap();
        assert_eq!(symmetries(&ring).len(), 2);
        // Both send to a fixed third process: swapping P0/P1 is a
        // symmetry, moving P2 is not.
        let fanin: Program =
            "process P0:\n send(P2)\nprocess P1:\n send(P2)\nprocess P2:\n recv\n recv\n"
                .parse()
                .unwrap();
        assert_eq!(symmetries(&fanin), vec![vec![0, 1, 2], vec![1, 0, 2]]);
    }

    #[test]
    fn sym_keys_collapse_mirrored_schedules() {
        let twins: Program =
            "process P0:\n guess(x0)\n compute\nprocess P1:\n guess(x0)\n compute\n"
                .parse()
                .unwrap();
        let perms = symmetries(&twins);
        // P0 ahead of P1 vs P1 ahead of P0: plain keys differ, symmetry
        // keys collapse, and the minimizing perms differ accordingly.
        let a = machine_after(&twins, &[0]);
        let b = machine_after(&twins, &[1]);
        assert_ne!(state_key(&a), state_key(&b));
        let (ka, pa) = sym_state_key(&a, &perms);
        let (kb, pb) = sym_state_key(&b, &perms);
        assert_eq!(ka, kb);
        assert_ne!(pa, pb);
    }

    #[test]
    fn identity_perm_reproduces_plain_encodings() {
        let program: Program =
            "process P0:\n send(P1)\n guess(x0)\nprocess P1:\n recv\n affirm(x0)\n"
                .parse()
                .unwrap();
        let m = machine_after(&program, &[0, 1, 0, 1]);
        let id = identity(2);
        assert_eq!(state_key(&m), state_key_perm(&m, &id));
        assert_eq!(commit_fingerprint(&m), commit_fingerprint_perm(&m, &id));
    }

    #[test]
    fn sym_commit_fingerprints_agree_across_mirrored_completions() {
        let twins: Program =
            "process P0:\n guess(x0)\n compute\nprocess P1:\n guess(x0)\n compute\n"
                .parse()
                .unwrap();
        let perms = symmetries(&twins);
        let a = machine_after(&twins, &[0, 0, 1, 1]);
        let b = machine_after(&twins, &[1, 1, 0, 0]);
        assert_eq!(
            sym_commit_fingerprint(&a, &perms),
            sym_commit_fingerprint(&b, &perms)
        );
    }

    #[test]
    fn sins_are_part_of_the_key() {
        // A rolled-back-and-resumed state must not merge with a state
        // that never sinned, even if control variables align.
        let clean: Program = "process P0:\n compute\n".parse().unwrap();
        let m = machine_after(&clean, &[0]);
        let k = state_key(&m);
        // Same structural state re-encoded is stable.
        assert_eq!(k, state_key(&m));
    }
}
