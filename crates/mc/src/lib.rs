//! # hope-mc — schedule-space model checking for HOPE machine programs
//!
//! The theorem and agreement suites in this workspace execute programs
//! under a *sample* of schedules (round-robin plus a handful of seeded
//! random runs). That leaves every "on some schedule" / "on no schedule"
//! claim schedule-incomplete. This crate closes the gap: [`check`]
//! explores **every inequivalent interleaving** of a small
//! [`Program`] under `Machine::step`, and returns a verdict that is
//! either [`Completeness::Exhausted`] — the claim now quantifies over the
//! full schedule space — or an explicit [`Completeness::BudgetExceeded`].
//!
//! Four cooperating reductions keep the space tractable without losing
//! any reachable terminal state:
//!
//! 1. **Canonical-state memoization** ([`mod@canon`]): states reached by
//!    commuting independent steps are renamed onto schedule-independent
//!    coordinates and cached, so each inequivalent state is expanded once.
//! 2. **Sleep sets**: after exploring step `a` from a state, sibling
//!    branches need not re-run `a`-first interleavings of independent
//!    steps; independence comes from engine-derived footprints
//!    (same-AID contact, DOM/IDO interaction, rollback victims, mailbox
//!    order — see `indep`).
//! 3. **Dynamic backtracking sets** (full Flanagan–Godefroid DPOR, the
//!    `dpor` engine): each state explores a single seed transition — the
//!    persistent singleton when one is provable, else the first enabled
//!    process — and further transitions only when a discovered race
//!    inserts a backtrack point at the deepest state where the racing
//!    pair was co-enabled. Cache hits replay per-process subtree
//!    footprint summaries so races crossing a cut subtree still insert.
//! 4. **Symmetry reduction** ([`Mode::DporSym`], the default): states are
//!    canonicalized modulo the program's process-renaming automorphisms
//!    ([`canon::symmetries`]), collapsing mirrored interleavings of
//!    program-identical processes. Outcome sets are recorded
//!    orbit-closed, so reports compare directly across modes.
//!
//! All reductions preserve every reachable *terminal* state (and the
//! sin flags that decide pristineness travel inside the canonical state),
//! so every verdict this crate reports — "some schedule finalizes
//! pristinely", "no schedule can finalize", "all schedules commit the
//! same outputs" — holds over the unreduced space. A [`Mode::Naive`]
//! comparator (plain bounded DFS, no cache, no reduction) and the PR-5
//! [`Mode::SleepSet`] baseline exist so the test-suite can cross-check
//! verdicts and the E20 experiment can measure what each rung buys.
//!
//! ```
//! use hope_core::program::Program;
//! use hope_mc::{check, Completeness, McConfig};
//!
//! let program: Program = "process P0:\n guess(x0)\nprocess P1:\n affirm(x0)\n"
//!     .parse()
//!     .unwrap();
//! let report = check(&program, &McConfig::default());
//! assert_eq!(report.completeness, Completeness::Exhausted);
//! assert!(report.pristine_witness.is_some());
//! assert_eq!(report.distinct_outputs(), 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

use std::collections::{BTreeMap, BTreeSet};

use hope_core::machine::{Event, Machine, StepOutcome};
use hope_core::observer::RuntimeObserver;
use hope_core::program::Program;

pub mod canon;
mod dpor;
mod indep;

pub use canon::commit_fingerprint;

use indep::invisible_singleton;

/// Exploration strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Plain bounded DFS over the full interleaving tree: no state cache,
    /// no reduction. The comparator for measuring what DPOR buys; its
    /// `transitions` count is the naive interleaving cost.
    Naive,
    /// Canonical-state memoization only (no sleep sets, no persistent
    /// singletons). Isolates how much the cache alone prunes.
    Stateful,
    /// The PR-5 baseline: memoization + sleep sets + persistent
    /// singletons, with every enabled transition explored at every state.
    SleepSet,
    /// Full Flanagan–Godefroid DPOR: memoization + sleep sets + per-state
    /// *dynamic backtracking sets* grown from discovered races, with
    /// persistent singletons only seeding the initial backtrack choice.
    Dpor,
    /// [`Mode::Dpor`] plus symmetry reduction over process renamings that
    /// preserve program text. The default.
    DporSym,
}

/// Budget and strategy for one [`check`] run.
#[derive(Debug, Clone)]
pub struct McConfig {
    /// Stop after this many states (canonical states in `Stateful`/`Dpor`,
    /// visited nodes in `Naive`).
    pub max_states: usize,
    /// Prune any branch deeper than this many steps (guards against
    /// rollback-re-execution livelock in adversarial programs).
    pub max_depth: usize,
    /// Exploration strategy.
    pub mode: Mode,
    /// Keep at most this many terminal schedules as replayable witnesses.
    pub max_witnesses: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            max_states: 200_000,
            max_depth: 2_000,
            mode: Mode::DporSym,
            max_witnesses: 16,
        }
    }
}

impl McConfig {
    /// A small-budget configuration for smoke tests and CI.
    pub fn smoke() -> Self {
        McConfig {
            max_states: 20_000,
            max_depth: 500,
            ..McConfig::default()
        }
    }
}

/// Why a [`check`] run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetReason {
    /// The state budget ran out; unexplored interleavings remain.
    MaxStates,
    /// Some branch exceeded the depth bound and was pruned.
    MaxDepth,
}

/// Whether the verdict quantifies over the full reduced schedule space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Completeness {
    /// Every inequivalent interleaving was explored: existential and
    /// universal schedule claims from this report are exact.
    Exhausted,
    /// The budget ran out first: "found" results (a pristine witness, a
    /// reached output) are still sound, but absence proves nothing.
    BudgetExceeded(BudgetReason),
}

impl Completeness {
    /// `true` when the full reduced space was explored.
    pub fn is_exhausted(&self) -> bool {
        matches!(self, Completeness::Exhausted)
    }
}

/// One terminal state's schedule, kept for replay.
#[derive(Debug, Clone)]
pub struct TerminalWitness {
    /// Process indices in execution order; replay with [`replay`].
    pub schedule: Vec<usize>,
    /// `true` if every process ran to completion (else: deadlock).
    pub completed: bool,
    /// `true` if the run finalized pristinely — completed with no
    /// rollback, no ghost, no skipped primitive and no leaked
    /// speculation.
    pub pristine: bool,
}

/// The result of exploring a program's schedule space.
#[derive(Debug, Clone)]
pub struct McReport {
    /// Whether the whole reduced space was covered.
    pub completeness: Completeness,
    /// Unique canonical states visited (`Naive`: DFS nodes visited).
    pub states: usize,
    /// Machine steps executed across all explored branches.
    pub transitions: usize,
    /// Re-arrivals at an already-expanded canonical state.
    pub cache_hits: usize,
    /// Enabled transitions skipped because a sleep set proved an
    /// equivalent interleaving already explored.
    pub sleep_pruned: usize,
    /// States where a persistent singleton removed all branching.
    pub singleton_states: usize,
    /// Terminal states where every process completed.
    pub completed_terminals: usize,
    /// Terminal states where some process was blocked forever.
    pub deadlock_terminals: usize,
    /// A schedule that finalizes pristinely, if any explored one does.
    pub pristine_witness: Option<Vec<usize>>,
    /// Up to `max_witnesses` terminal schedules for replay.
    pub witnesses: Vec<TerminalWitness>,
    /// Pending-but-unexplored transitions left behind when a budget
    /// stopped the run (a lower bound: races not yet discovered could
    /// have demanded more). `0` when [`Completeness::Exhausted`].
    pub frontier_remaining: usize,
    /// Size of the symmetry group used for canonicalization (`1` unless
    /// [`Mode::DporSym`] found nontrivial program automorphisms).
    pub sym_group: usize,
    outputs: BTreeSet<Vec<u8>>,
}

impl McReport {
    /// Number of distinct committed outcomes (commit fingerprints) across
    /// all completed terminals. `1` here with
    /// [`Completeness::Exhausted`] is the Theorem 6.x determinism claim,
    /// verified over every inequivalent schedule.
    pub fn distinct_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// `true` if some completed explored schedule commits exactly this
    /// outcome (a [`commit_fingerprint`] of a finished machine).
    pub fn contains_output(&self, fingerprint: &[u8]) -> bool {
        self.outputs.contains(fingerprint)
    }

    /// The set of committed outcomes reached by explored schedules.
    pub fn outputs(&self) -> &BTreeSet<Vec<u8>> {
        &self.outputs
    }

    /// Exhaustively proven: *no* schedule finalizes pristinely. `false`
    /// when a witness exists **or** the budget ran out first.
    pub fn proves_no_pristine_schedule(&self) -> bool {
        self.pristine_witness.is_none() && self.completeness.is_exhausted()
    }

    /// Fraction of the reduced space covered: `1.0` when exhausted, else
    /// visited states over visited-plus-pending-frontier. Over-budget
    /// consumers log this instead of a bare boolean, so a run that died
    /// at 98% reads differently from one that died at 3%. A budget-ended
    /// run always reports strictly below `1.0`: the frontier is a lower
    /// bound and can be 0 when the budget died before any race was
    /// discovered, so at least one pending unit is charged.
    pub fn explored_fraction(&self) -> f64 {
        if self.completeness.is_exhausted() {
            return 1.0;
        }
        let total = self.states + self.frontier_remaining.max(1);
        self.states as f64 / total as f64
    }

    /// An empty report assuming exhaustion, filled in by the explorers.
    pub(crate) fn empty(sym_group: usize) -> McReport {
        McReport {
            completeness: Completeness::Exhausted,
            states: 0,
            transitions: 0,
            cache_hits: 0,
            sleep_pruned: 0,
            singleton_states: 0,
            completed_terminals: 0,
            deadlock_terminals: 0,
            pristine_witness: None,
            witnesses: Vec::new(),
            frontier_remaining: 0,
            sym_group,
            outputs: BTreeSet::new(),
        }
    }
}

/// `true` if this finished machine state is pristine: completed, no
/// rollback ever, no ghost ever, no skipped primitive in any surviving
/// history, and no leaked speculation. Matches the agreement suite's
/// dynamic notion of "finalizes on this schedule".
fn is_pristine(m: &Machine) -> bool {
    let stats = m.engine().stats();
    if stats.rollback_events > 0 || stats.ghosts > 0 {
        return false;
    }
    for p in 0..m.process_count() {
        if m.poll(p) != StepOutcome::Done {
            return false;
        }
        if m.engine().is_speculative(m.pid(p)).unwrap_or(true) {
            return false;
        }
        if m.history(p)
            .states()
            .iter()
            .any(|s| matches!(s.event, Event::Skipped { .. }))
        {
            return false;
        }
    }
    true
}

struct Explorer {
    cfg: McConfig,
    visited: BTreeMap<Vec<u8>, BTreeSet<usize>>,
    path: Vec<usize>,
    report: McReport,
    stopped: bool,
}

impl Explorer {
    fn budget_left(&mut self) -> bool {
        if self.report.states >= self.cfg.max_states {
            self.report.completeness = Completeness::BudgetExceeded(BudgetReason::MaxStates);
            self.stopped = true;
        }
        !self.stopped
    }

    fn terminal(&mut self, m: &Machine) {
        let completed = (0..m.process_count()).all(|p| m.poll(p) == StepOutcome::Done);
        let pristine = completed && is_pristine(m);
        if completed {
            self.report.completed_terminals += 1;
            self.report.outputs.insert(canon::commit_fingerprint(m));
        } else {
            self.report.deadlock_terminals += 1;
        }
        if pristine && self.report.pristine_witness.is_none() {
            self.report.pristine_witness = Some(self.path.clone());
        }
        if self.report.witnesses.len() < self.cfg.max_witnesses {
            self.report.witnesses.push(TerminalWitness {
                schedule: self.path.clone(),
                completed,
                pristine,
            });
        }
    }

    fn explore(&mut self, m: &Machine, sleep: Vec<usize>, depth: usize) {
        if !self.budget_left() {
            return;
        }
        let n = m.process_count();
        let enabled: Vec<usize> = (0..n)
            .filter(|&p| m.poll(p) == StepOutcome::Executed)
            .collect();

        // Visited-state handling. Terminals are cached too, so each
        // inequivalent terminal is counted and recorded exactly once.
        let mut state_key = Vec::new();
        let explored_before: BTreeSet<usize> = if self.cfg.mode == Mode::Naive {
            self.report.states += 1;
            BTreeSet::new()
        } else {
            state_key = canon::state_key(m);
            match self.visited.get(&state_key) {
                Some(done) => {
                    self.report.cache_hits += 1;
                    if enabled.is_empty() {
                        return; // terminal already recorded
                    }
                    done.clone()
                }
                None => {
                    self.report.states += 1;
                    self.visited.insert(state_key.clone(), BTreeSet::new());
                    BTreeSet::new()
                }
            }
        };

        if enabled.is_empty() {
            self.terminal(m);
            return;
        }
        if depth >= self.cfg.max_depth {
            self.report.completeness = Completeness::BudgetExceeded(BudgetReason::MaxDepth);
            self.report.frontier_remaining += enabled.len();
            return;
        }

        // Persistent singleton: a provably invisible step needs no
        // branching — and by persistence, no sibling either.
        let candidates: Vec<usize> = if self.cfg.mode == Mode::SleepSet {
            match invisible_singleton(m, &enabled) {
                Some(p) => {
                    self.report.singleton_states += 1;
                    vec![p]
                }
                None => enabled,
            }
        } else {
            enabled
        };

        // Sleep-set filter: steps whose `candidate`-first interleavings a
        // sibling branch already covers.
        let allowed: Vec<usize> = if self.cfg.mode == Mode::SleepSet {
            let before = candidates.len();
            let kept: Vec<usize> = candidates
                .into_iter()
                .filter(|p| !sleep.contains(p))
                .collect();
            self.report.sleep_pruned += before - kept.len();
            kept
        } else {
            candidates
        };

        let footprints: BTreeMap<usize, indep::Footprint> = if self.cfg.mode == Mode::SleepSet {
            allowed
                .iter()
                .chain(sleep.iter())
                .map(|&p| (p, indep::footprint(m, p)))
                .collect()
        } else {
            BTreeMap::new()
        };

        let mut taken: Vec<usize> = Vec::new();
        for (i, &p) in allowed.iter().enumerate() {
            if explored_before.contains(&p) {
                continue;
            }
            if self.cfg.mode != Mode::Naive {
                // Mark pre-order so cycles (rollback livelocks) cut off.
                self.visited.entry(state_key.clone()).or_default().insert(p);
            }
            if self.stopped {
                self.report.frontier_remaining += allowed[i..]
                    .iter()
                    .filter(|q| !explored_before.contains(q))
                    .count();
                return;
            }
            let mut child = m.clone();
            child.step(p).expect("machine-built programs cannot err");
            self.report.transitions += 1;
            let child_sleep: Vec<usize> = if self.cfg.mode == Mode::SleepSet {
                let fp_p = &footprints[&p];
                sleep
                    .iter()
                    .chain(taken.iter())
                    .copied()
                    .filter(|u| {
                        footprints
                            .get(u)
                            .map(|fp_u| fp_u.independent(fp_p))
                            .unwrap_or(false)
                    })
                    .collect()
            } else {
                Vec::new()
            };
            self.path.push(p);
            self.explore(&child, child_sleep, depth + 1);
            self.path.pop();
            if self.cfg.mode == Mode::SleepSet {
                taken.push(p);
            }
        }
    }
}

/// Explore the schedule space of `program` under `cfg`.
///
/// Clones the machine at every branch point (snapshot-based exploration;
/// `Machine` is a pure value). The returned [`McReport`] carries the
/// verdict, the exploration counters the E17 experiment records, a
/// pristine witness schedule if one exists, and the set of committed
/// outcomes across all completed terminals.
pub fn check(program: &Program, cfg: &McConfig) -> McReport {
    if matches!(cfg.mode, Mode::Dpor | Mode::DporSym) {
        return dpor::explore(program, cfg);
    }
    let machine = Machine::new(program.clone());
    let mut explorer = Explorer {
        cfg: cfg.clone(),
        visited: BTreeMap::new(),
        path: Vec::new(),
        report: McReport::empty(1),
        stopped: false,
    };
    explorer.explore(&machine, Vec::new(), 0);
    explorer.report
}

/// Re-execute a witness schedule step by step, reporting every executed
/// action to `observer` (e.g. `hope_analysis::dynamic::RaceDetector`),
/// and return the finished machine for inspection.
///
/// Steps that poll as blocked or done are skipped rather than executed,
/// so any recorded schedule replays safely.
pub fn replay(
    program: &Program,
    schedule: &[usize],
    observer: &mut dyn RuntimeObserver,
) -> Machine {
    let mut m = Machine::new(program.clone());
    for &p in schedule {
        if p < m.process_count() && m.poll(p) == StepOutcome::Executed {
            m.step_observed(p, observer)
                .expect("machine-built programs cannot err");
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::observer::NullObserver;

    fn parse(src: &str) -> Program {
        src.parse().unwrap()
    }

    #[test]
    fn single_process_has_one_schedule() {
        let p = parse("process P0:\n guess(x0)\n free_of(x1)\n compute\n");
        let r = check(&p, &McConfig::default());
        assert!(r.completeness.is_exhausted());
        assert_eq!(r.completed_terminals, 1);
        assert_eq!(r.deadlock_terminals, 0);
    }

    #[test]
    fn affirm_race_yields_witness_and_exhausts() {
        let p = parse("process P0:\n guess(x0)\n compute\nprocess P1:\n affirm(x0)\n");
        let r = check(&p, &McConfig::default());
        assert!(r.completeness.is_exhausted());
        assert!(r.pristine_witness.is_some(), "{r:?}");
    }

    #[test]
    fn doomed_self_deny_has_no_pristine_schedule() {
        // guess(x0); deny(x0) self-deny always rolls back: no schedule
        // finalizes pristinely, and the checker proves it.
        let p = parse("process P0:\n guess(x0)\n deny(x0)\n");
        let r = check(&p, &McConfig::default());
        assert!(r.proves_no_pristine_schedule(), "{r:?}");
        assert!(r.completed_terminals > 0);
    }

    #[test]
    fn naive_and_dpor_agree_on_verdicts() {
        for seed in 0..60u64 {
            let p = Program::generate(seed, 2, 3, 2);
            let dpor = check(&p, &McConfig::default());
            let naive = check(
                &p,
                &McConfig {
                    mode: Mode::Naive,
                    ..McConfig::default()
                },
            );
            if !dpor.completeness.is_exhausted() || !naive.completeness.is_exhausted() {
                continue;
            }
            assert_eq!(
                dpor.pristine_witness.is_some(),
                naive.pristine_witness.is_some(),
                "seed {seed}: pristine disagreement\n{p}"
            );
            assert_eq!(
                dpor.outputs, naive.outputs,
                "seed {seed}: committed outcomes disagree\n{p}"
            );
            assert_eq!(
                dpor.deadlock_terminals > 0,
                naive.deadlock_terminals > 0,
                "seed {seed}: deadlock disagreement\n{p}"
            );
            assert!(dpor.transitions <= naive.transitions, "seed {seed}");
        }
    }

    #[test]
    fn invisible_sends_do_not_forge_happens_before_edges() {
        // Regression: both processes race on affirm(x1), but the only HB
        // path from P0's affirm to P1's is affirm → send(P1) → recv —
        // and that send is a proven-invisible singleton (single-sender
        // append onto a non-empty queue; the recv pops the *earlier*
        // message). If the vector-clock join treats the invisible send as
        // a real dependence, the forged edge filters out the affirm race
        // and DPOR silently drops the schedule where P1 decides x1 first.
        let p = parse(
            "process P0:\n recv\n send(P1)\n affirm(x1)\n send(P1)\n\
             process P1:\n send(P0)\n recv\n affirm(x1)\n send(P0)\n",
        );
        let naive = check(
            &p,
            &McConfig {
                mode: Mode::Naive,
                ..McConfig::default()
            },
        );
        let dpor = check(
            &p,
            &McConfig {
                mode: Mode::Dpor,
                ..McConfig::default()
            },
        );
        assert!(naive.completeness.is_exhausted());
        assert!(dpor.completeness.is_exhausted());
        assert_eq!(naive.distinct_outputs(), 2, "{naive:?}");
        assert_eq!(dpor.outputs, naive.outputs, "{p}");
        assert!(dpor.states < naive.states, "reduction must survive the fix");
    }

    #[test]
    fn stateful_and_dpor_agree_and_dpor_is_no_larger() {
        for seed in 100..140u64 {
            let p = Program::generate(seed, 3, 3, 2);
            let dpor = check(&p, &McConfig::default());
            let stateful = check(
                &p,
                &McConfig {
                    mode: Mode::Stateful,
                    ..McConfig::default()
                },
            );
            if !dpor.completeness.is_exhausted() || !stateful.completeness.is_exhausted() {
                continue;
            }
            assert_eq!(dpor.outputs, stateful.outputs, "seed {seed}\n{p}");
            assert_eq!(
                dpor.pristine_witness.is_some(),
                stateful.pristine_witness.is_some(),
                "seed {seed}\n{p}"
            );
            assert!(dpor.states <= stateful.states, "seed {seed}");
        }
    }

    #[test]
    fn all_five_modes_agree_on_generated_programs() {
        let modes = [
            Mode::Naive,
            Mode::Stateful,
            Mode::SleepSet,
            Mode::Dpor,
            Mode::DporSym,
        ];
        for seed in 0..30u64 {
            let p = Program::generate(seed, 2, 4, 2);
            let reports: Vec<McReport> = modes
                .iter()
                .map(|&mode| {
                    check(
                        &p,
                        &McConfig {
                            mode,
                            ..McConfig::default()
                        },
                    )
                })
                .collect();
            if reports.iter().any(|r| !r.completeness.is_exhausted()) {
                continue;
            }
            let base = &reports[0];
            for (r, &mode) in reports.iter().zip(&modes).skip(1) {
                assert_eq!(
                    r.pristine_witness.is_some(),
                    base.pristine_witness.is_some(),
                    "seed {seed}, mode {mode:?}: pristine disagreement\n{p}"
                );
                // Outputs are orbit-closed under symmetry reduction and a
                // naive exploration's output set is orbit-closed by
                // construction, so the sets compare directly.
                assert_eq!(
                    r.outputs, base.outputs,
                    "seed {seed}, mode {mode:?}: committed outcomes disagree\n{p}"
                );
                assert_eq!(
                    r.deadlock_terminals > 0,
                    base.deadlock_terminals > 0,
                    "seed {seed}, mode {mode:?}: deadlock disagreement\n{p}"
                );
            }
        }
    }

    #[test]
    fn symmetry_reduces_twin_programs() {
        // Two program-identical processes racing on a shared AID: every
        // state has a mirror, so DporSym must visit strictly fewer states
        // than Dpor while agreeing on the verdict.
        let p = parse(
            "process P0:\n guess(x0)\n compute\n affirm(x0)\n\
             process P1:\n guess(x0)\n compute\n affirm(x0)\n",
        );
        let dpor = check(
            &p,
            &McConfig {
                mode: Mode::Dpor,
                ..McConfig::default()
            },
        );
        let sym = check(&p, &McConfig::default());
        assert!(dpor.completeness.is_exhausted());
        assert!(sym.completeness.is_exhausted());
        assert_eq!(sym.sym_group, 2);
        assert!(
            sym.states < dpor.states,
            "symmetry bought nothing: {} vs {}",
            sym.states,
            dpor.states
        );
        assert_eq!(sym.outputs, dpor.outputs);
        assert_eq!(
            sym.pristine_witness.is_some(),
            dpor.pristine_witness.is_some()
        );
    }

    #[test]
    fn dpor_explores_no_more_than_sleepset_on_the_envelope() {
        // Aggregate over the 2-process envelope: dynamic backtracking
        // sets must beat (or match) the PR-5 persistent-singleton
        // baseline overall — this is the E20 headline, pinned here in
        // miniature.
        let mut sleepset_total = 0usize;
        let mut dpor_total = 0usize;
        for seed in 0..40u64 {
            let p = Program::generate(seed, 2, 3, 2);
            let ss = check(
                &p,
                &McConfig {
                    mode: Mode::SleepSet,
                    ..McConfig::default()
                },
            );
            let d = check(
                &p,
                &McConfig {
                    mode: Mode::Dpor,
                    ..McConfig::default()
                },
            );
            assert!(ss.completeness.is_exhausted());
            assert!(d.completeness.is_exhausted());
            sleepset_total += ss.transitions;
            dpor_total += d.transitions;
        }
        assert!(
            dpor_total <= sleepset_total,
            "full DPOR regressed: {dpor_total} vs {sleepset_total} transitions"
        );
    }

    #[test]
    fn budget_reports_explored_fraction() {
        let p = Program::generate(7, 3, 10, 3);
        let r = check(
            &p,
            &McConfig {
                max_states: 10,
                ..McConfig::default()
            },
        );
        assert!(!r.completeness.is_exhausted());
        let f = r.explored_fraction();
        assert!(f > 0.0 && f < 1.0, "fraction {f} not in (0, 1)");
        assert!(r.frontier_remaining > 0);
        let done = check(&p, &McConfig::default());
        if done.completeness.is_exhausted() {
            assert_eq!(done.explored_fraction(), 1.0);
            assert_eq!(done.frontier_remaining, 0);
        }
    }

    #[test]
    fn budget_exceeded_is_reported() {
        let p = Program::generate(7, 3, 10, 3);
        let r = check(
            &p,
            &McConfig {
                max_states: 10,
                ..McConfig::default()
            },
        );
        assert_eq!(
            r.completeness,
            Completeness::BudgetExceeded(BudgetReason::MaxStates)
        );
        assert!(!r.proves_no_pristine_schedule());
    }

    #[test]
    fn depth_budget_is_reported() {
        let p = parse("process P0:\n compute\n compute\n compute\n compute\n");
        let r = check(
            &p,
            &McConfig {
                max_depth: 2,
                ..McConfig::default()
            },
        );
        assert_eq!(
            r.completeness,
            Completeness::BudgetExceeded(BudgetReason::MaxDepth)
        );
    }

    #[test]
    fn witness_replays_to_pristine_state() {
        let p = parse("process P0:\n guess(x0)\n send(P1)\nprocess P1:\n recv\n affirm(x0)\n");
        let r = check(&p, &McConfig::default());
        let w = r
            .pristine_witness
            .clone()
            .expect("pristine schedule exists");
        let m = replay(&p, &w, &mut NullObserver);
        assert!(super::is_pristine(&m));
        assert!(r.contains_output(&commit_fingerprint(&m)));
    }

    #[test]
    fn empty_program_is_trivially_pristine() {
        let r = check(&Program::new(vec![]), &McConfig::default());
        assert!(r.completeness.is_exhausted());
        assert_eq!(r.completed_terminals, 1);
        assert_eq!(r.pristine_witness, Some(vec![]));
    }

    #[test]
    fn deterministic_across_runs() {
        let p = Program::generate(42, 2, 4, 2);
        let a = check(&p, &McConfig::default());
        let b = check(&p, &McConfig::default());
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.pristine_witness, b.pristine_witness);
    }
}
