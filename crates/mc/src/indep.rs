//! Conditional independence between enabled steps, derived from the
//! engine's own control variables.
//!
//! Two steps commute — and one order of them need not be explored — unless
//! they can touch overlapping state. "Touch" is approximated by a
//! [`Footprint`]: the AIDs a step reads or writes (including everything a
//! cascading finalize/rollback closure can reach through `DOM`, `IHD` and
//! `IHA`), the processes whose histories it can truncate, and the mailbox
//! it appends to. Footprints are deliberately conservative: an over-large
//! footprint only costs exploration, an under-small one would lose
//! interleavings, so every closure walks `DOM` transitively and assumes
//! any discharged interval *might* finalize.
//!
//! The same machinery powers the persistent-singleton rule
//! ([`invisible_singleton`]): a definite process whose next step's
//! footprint cannot intersect anything any *other* process could still do
//! (judged against per-process dynamic [`Reach`] over-approximations) can
//! be scheduled alone, without branching — the classic persistent-set
//! reduction with a sound, cheap membership test.

use std::collections::BTreeSet;

use hope_core::machine::Machine;
use hope_core::program::Stmt;
use hope_core::{AidId, AidState, IntervalId};

/// What one enabled step can read or write.
#[derive(Debug, Clone, Default)]
pub(crate) struct Footprint {
    /// AIDs whose decision state, `DOM`, consumption flag or speculative
    /// ties the step may *mutate* (cascade closure included).
    pub writes: BTreeSet<AidId>,
    /// AIDs the step only *observes*: a one-shot violation reads the
    /// consumed flag and skips, and a `recv` reads the decision state of
    /// ghost-candidate tags. Two reads of the same AID commute.
    pub reads: BTreeSet<AidId>,
    /// Processes whose history / pc / mailbox the step may rewrite —
    /// always includes the stepping process; grows with rollback victims.
    pub procs: BTreeSet<usize>,
    /// Mailbox this step appends to, for `send`.
    pub send_to: Option<usize>,
    /// The stepping process, distinguished from rollback victims inside
    /// [`procs`](Self::procs): a send to `t` commutes with `t`'s own
    /// non-`recv` steps (an append does not touch `t`'s pc, history or
    /// queue head) but not with a step that may *rewind* `t`.
    pub stepper: usize,
    /// Mailbox this step pops from, for `recv` (always the stepper's).
    pub recv_mailbox: Option<usize>,
}

impl Footprint {
    /// `true` when the two steps commute: disjoint process sets, no
    /// write-write or read-write overlap on AIDs, and no mailbox contact.
    /// Read-read overlap is fine — that is the point of splitting the
    /// sets.
    ///
    /// Mailbox contact is queue-granular, mirroring the [`Reach`] rules
    /// the singleton prover uses: an append to `t` conflicts with another
    /// append (queue order), with a pop by `t` (`recv` observes the
    /// queue), and with anything that may rewind `t` (rollback restores
    /// `t`'s consumption point) — but *not* with `t`'s own decision or
    /// send steps, which never look at their inbound queue.
    pub fn independent(&self, other: &Footprint) -> bool {
        self.procs.iter().all(|p| !other.procs.contains(p))
            && self
                .writes
                .iter()
                .all(|x| !other.writes.contains(x) && !other.reads.contains(x))
            && other.writes.iter().all(|x| !self.reads.contains(x))
            && self.mailbox_clear_of(other)
            && other.mailbox_clear_of(self)
    }

    /// `true` when this step's append (if any) cannot contact `other`.
    fn mailbox_clear_of(&self, other: &Footprint) -> bool {
        let Some(t) = self.send_to else { return true };
        other.send_to != Some(t)
            && other.recv_mailbox != Some(t)
            && !other.procs.iter().any(|&v| v == t && v != other.stepper)
    }
}

/// Union of the footprints of every transition one process executed
/// inside an explored subtree — the per-canonical-state cache record the
/// full-DPOR engine replays on re-arrivals, so races between the *current*
/// DFS stack and transitions buried in an already-explored subtree still
/// insert their backtrack points (the stateful-DPOR soundness fix).
///
/// A union is coarser than the individual footprints, which only ever
/// *adds* backtrack points; to avoid losing depth information the replay
/// inserts at every dependent stack frame, not just the deepest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct Summary {
    /// Union of the transitions' write sets.
    pub writes: BTreeSet<AidId>,
    /// Union of the transitions' read sets.
    pub reads: BTreeSet<AidId>,
    /// Union of the transitions' process sets.
    pub procs: BTreeSet<usize>,
    /// Every mailbox some summarized transition appended to.
    pub sends: BTreeSet<usize>,
}

impl Summary {
    /// Fold one transition's footprint into the summary.
    pub fn absorb(&mut self, fp: &Footprint) {
        self.writes.extend(fp.writes.iter().copied());
        self.reads.extend(fp.reads.iter().copied());
        self.procs.extend(fp.procs.iter().copied());
        if let Some(t) = fp.send_to {
            self.sends.insert(t);
        }
    }

    /// Fold another subtree summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        self.writes.extend(other.writes.iter().copied());
        self.reads.extend(other.reads.iter().copied());
        self.procs.extend(other.procs.iter().copied());
        self.sends.extend(other.sends.iter().copied());
    }

    /// The summary with every process index renamed through `map`
    /// (`map[p]` replaces `p`). AID sets are symmetry-invariant — program
    /// symmetries permute processes over a globally shared AID array.
    pub fn rename(&self, map: &[usize]) -> Summary {
        Summary {
            writes: self.writes.clone(),
            reads: self.reads.clone(),
            procs: self.procs.iter().map(|&p| map[p]).collect(),
            sends: self.sends.iter().map(|&t| map[t]).collect(),
        }
    }

    /// Conservative dependence against a single step's footprint: the
    /// negation of [`Footprint::independent`] lifted to the union.
    pub fn dependent(&self, fp: &Footprint) -> bool {
        self.procs.iter().any(|p| fp.procs.contains(p))
            || self
                .writes
                .iter()
                .any(|x| fp.writes.contains(x) || fp.reads.contains(x))
            || self.reads.iter().any(|x| fp.writes.contains(x))
            || self
                .sends
                .iter()
                .any(|t| fp.procs.contains(t) || fp.send_to == Some(*t))
            || fp.send_to.is_some_and(|t| self.procs.contains(&t))
    }
}

enum Decision {
    Affirm(AidId),
    Deny(AidId),
}

/// Follow everything a definite affirm/deny of the seed AIDs can cascade
/// into: discharged intervals may finalize (promoting their `IHA`/`IHD`),
/// rolled-back suffixes conservatively deny their `IHA` and release their
/// `IHD`. All touched AIDs and all processes whose history can be
/// truncated land in `fp`.
fn decision_closure(m: &Machine, seeds: Vec<Decision>, fp: &mut Footprint) {
    let engine = m.engine();
    let proc_of = |interval: IntervalId| -> usize {
        let pid = engine.interval(interval).expect("live interval").process();
        (0..m.process_count())
            .find(|&p| m.pid(p) == pid)
            .expect("interval belongs to a machine process")
    };
    let mut wl = seeds;
    let mut seen_affirm: BTreeSet<AidId> = BTreeSet::new();
    let mut seen_deny: BTreeSet<AidId> = BTreeSet::new();
    let mut rolled: BTreeSet<IntervalId> = BTreeSet::new();
    while let Some(d) = wl.pop() {
        match d {
            Decision::Affirm(x) => {
                if !seen_affirm.insert(x) {
                    continue;
                }
                fp.writes.insert(x);
                let Ok(v) = engine.aid(x) else { continue };
                for b in v.dom() {
                    // Discharging x from b.IDO may finalize b, promoting
                    // its speculative affirms and denies.
                    let itv = engine.interval(b).expect("DOM member is live");
                    fp.procs.insert(proc_of(b));
                    for y in itv.iha() {
                        wl.push(Decision::Affirm(y));
                    }
                    for y in itv.ihd() {
                        wl.push(Decision::Deny(y));
                    }
                }
            }
            Decision::Deny(x) => {
                if !seen_deny.insert(x) {
                    continue;
                }
                fp.writes.insert(x);
                let Ok(v) = engine.aid(x) else { continue };
                // A pending speculative deny of x is released if its
                // holder rolls back; the tie itself is per-AID state.
                if let Some(holder) = v.speculatively_denied_by() {
                    fp.procs.insert(proc_of(holder));
                }
                for b in v.dom() {
                    // Rollback truncates the owner's live history from b
                    // onward; every interval in that suffix is a victim.
                    let owner = proc_of(b);
                    fp.procs.insert(owner);
                    let seq = engine.interval(b).expect("DOM member is live").seq();
                    let history = engine.history(m.pid(owner)).expect("machine process");
                    for &c in history.iter().skip(seq) {
                        if !rolled.insert(c) {
                            continue;
                        }
                        let itv = engine.interval(c).expect("live interval");
                        // Withdrawing c from DOM sets touches its IDO's AIDs.
                        for y in itv.ido() {
                            fp.writes.insert(y);
                        }
                        // Speculative affirms become conservative denies.
                        for y in itv.iha() {
                            wl.push(Decision::Deny(y));
                        }
                        // Speculative denies are released (consumed reset).
                        for y in itv.ihd() {
                            fp.writes.insert(y);
                        }
                    }
                }
            }
        }
    }
}

/// AIDs a fresh guess on `named` would read/write right now: the named
/// AIDs, their speculative-affirm resolutions, and the inherited parent
/// `IDO` (every member's `DOM` gains the new interval). A guess is subject
/// to the one-shot rule like any other primitive: a consumed AID makes it
/// a recorded skip, which only *reads* the flag.
fn guess_footprint(m: &Machine, p: usize, named: &[AidId], fp: &mut Footprint) {
    let engine = m.engine();
    let mut live = false;
    for &x in named {
        if engine.aid(x).map(|a| a.is_consumed()).unwrap_or(false) {
            fp.reads.insert(x);
            continue;
        }
        live = true;
        fp.writes.insert(x);
        if let Ok(v) = engine.aid(x) {
            if let Some(a) = v.speculatively_affirmed_by() {
                for y in engine.interval(a).expect("affirmer is live").ido() {
                    fp.writes.insert(y);
                }
            }
        }
    }
    // The parent IDO is inherited only if a new interval actually opens.
    if live {
        if let Ok(Some(a)) = engine.current_interval(m.pid(p)) {
            for y in engine.interval(a).expect("current interval is live").ido() {
                fp.writes.insert(y);
            }
        }
    }
}

/// Footprint of a *speculative* affirm (Equations 10–14): dependence on
/// `x` is rewired onto the affirmer's remaining `IDO`; every interval in
/// `x.DOM` has its `IDO` rewritten and may finalize.
fn spec_affirm_footprint(m: &Machine, p: usize, x: AidId, fp: &mut Footprint) {
    let engine = m.engine();
    fp.writes.insert(x);
    if let Ok(Some(a)) = engine.current_interval(m.pid(p)) {
        for y in engine.interval(a).expect("current interval is live").ido() {
            fp.writes.insert(y);
        }
    }
    let mut follow = Vec::new();
    if let Ok(v) = engine.aid(x) {
        for b in v.dom() {
            let itv = engine.interval(b).expect("DOM member is live");
            let pid = itv.process();
            let owner = (0..m.process_count())
                .find(|&q| m.pid(q) == pid)
                .expect("machine process");
            fp.procs.insert(owner);
            // b may finalize if the rewiring empties its IDO.
            for y in itv.iha() {
                follow.push(Decision::Affirm(y));
            }
            for y in itv.ihd() {
                follow.push(Decision::Deny(y));
            }
        }
    }
    decision_closure(m, follow, fp);
}

/// Compute the footprint of the step process `p` would take from the
/// current state of `m`. `p` must be enabled (its `poll` is `Executed`)
/// or done-free; a blocked `recv` gets the footprint of the probe itself.
pub(crate) fn footprint(m: &Machine, p: usize) -> Footprint {
    let mut fp = Footprint {
        procs: BTreeSet::from([p]),
        stepper: p,
        ..Footprint::default()
    };
    let engine = m.engine();
    let Some(stmt) = m.next_stmt(p) else {
        return fp;
    };
    match stmt {
        Stmt::Compute => {}
        Stmt::Send { to } => fp.send_to = Some(to),
        Stmt::Guess(v) => {
            let x = m.aids()[v];
            guess_footprint(m, p, &[x], &mut fp);
        }
        Stmt::Recv => {
            fp.recv_mailbox = Some(p);
            // The step pops the ghost prefix and delivers the first live
            // message: deliverability of everything up to and including
            // it depends on those tags' decision states.
            let mut named: Vec<AidId> = Vec::new();
            for msg in m.mailbox(p) {
                let ghost = msg
                    .tag
                    .iter()
                    .any(|x| matches!(engine.aid_state(x), Ok(AidState::Denied)));
                for x in msg.tag.iter() {
                    fp.reads.insert(x);
                }
                if !ghost {
                    named.extend(msg.tag.iter());
                    break;
                }
            }
            guess_footprint(m, p, &named, &mut fp);
        }
        Stmt::Affirm(v) | Stmt::Deny(v) | Stmt::FreeOf(v) => {
            let x = m.aids()[v];
            let consumed = engine.aid(x).map(|a| a.is_consumed()).unwrap_or(false);
            if consumed {
                // One-shot violation: the step records Skipped into p's own
                // history and only *reads* x's consumed flag. Two skips of
                // the same consumed AID commute — this is the read set's
                // main payoff on the exhaustive envelopes.
                fp.reads.insert(x);
                return fp;
            }
            fp.writes.insert(x);
            let cur = engine.current_interval(m.pid(p)).expect("registered");
            let in_ido = cur.map(|a| {
                engine
                    .interval(a)
                    .expect("current interval is live")
                    .ido()
                    .contains(&x)
            });
            // Mirror the engine's dispatch: free_of is an affirm unless
            // x ∈ IDO (then a definite deny); affirm is speculative iff
            // the process is; deny is definite unless speculative and
            // x ∉ IDO.
            let effective = match (stmt, in_ido) {
                (Stmt::Deny(_), None) => Decision::Deny(x),
                (Stmt::Deny(_), Some(true)) => Decision::Deny(x),
                (Stmt::Deny(_), Some(false)) => {
                    // Speculative deny: records into own IHD only.
                    return fp;
                }
                (Stmt::FreeOf(_), Some(true)) => Decision::Deny(x),
                (_, None) => Decision::Affirm(x),
                (_, Some(_)) => {
                    spec_affirm_footprint(m, p, x, &mut fp);
                    return fp;
                }
            };
            decision_closure(m, vec![effective], &mut fp);
        }
    }
    fp
}

/// Over-approximation of everything process `q` could still touch from
/// the *current* state: the statement suffix from the earliest pc any
/// rollback could rewind `q` to, plus the dependence sets of `q`'s live
/// speculative intervals (the AIDs a cascade through `q` can reach).
///
/// This is deliberately dynamic where the obvious choice would be static.
/// A whole-program approximation is coarser — a process past its last use
/// of an AID would block singletons on it forever — and, worse, a
/// *statement-only* approximation is unsound: a decision's cascade can
/// touch AIDs that appear in no statement of the deciding process,
/// reaching them through a third process's interval `IDO`. Those AIDs are
/// exactly the ones in some live interval's dependence sets, so including
/// each process's interval sets here closes that path: any cascade route
/// to an AID runs through *some* live process whose reach then contains it.
#[derive(Debug, Default)]
struct Reach {
    /// AIDs `q` could still decide, guess, skip over, or cascade into.
    aids: BTreeSet<AidId>,
    /// Mailboxes `q` could still append to.
    sends: BTreeSet<usize>,
    /// A `recv` is still reachable: tags can carry arbitrary dependence
    /// into `q`, so every AID must be assumed touchable.
    everything: bool,
}

impl Reach {
    fn touches(&self, x: AidId) -> bool {
        self.everything || self.aids.contains(&x)
    }
}

fn reach(m: &Machine, q: usize) -> Reach {
    let engine = m.engine();
    let mut r = Reach::default();
    // Rollback can rewind q's pc to any live speculative interval's
    // resume mark: the reachable statement suffix starts at the earliest.
    let mut pc = m.pc(q);
    let history = engine.history(m.pid(q)).expect("machine process");
    for &a in history {
        let itv = engine.interval(a).expect("live interval");
        if itv.status() == hope_core::IntervalStatus::Speculative {
            if let Some((mark_pc, _, _)) = m.resume_mark(q, a) {
                pc = pc.min(mark_pc);
            }
            // Cascades through q's own speculation reach every AID its
            // live intervals depend on, speculatively decided, or guessed.
            for set in [itv.ido(), itv.ihd(), itv.iha(), itv.guessed()] {
                r.aids.extend(set);
            }
        }
    }
    for stmt in m.program().code[q].iter().skip(pc) {
        match *stmt {
            Stmt::Guess(v) | Stmt::Affirm(v) | Stmt::Deny(v) | Stmt::FreeOf(v) => {
                r.aids.insert(m.aids()[v]);
            }
            Stmt::Send { to } => {
                r.sends.insert(to);
            }
            Stmt::Recv => r.everything = true,
            Stmt::Compute => {}
        }
    }
    r
}

/// Pick a process that can be scheduled as a singleton persistent set: its
/// next step must be invisible to every other still-live process's
/// [`Reach`]. Returns the lowest such index so the choice is
/// deterministic across revisits of the same canonical state.
///
/// Soundness conditions, checked in order:
/// * the process is definite — nobody can roll it back, and its own step
///   cannot become speculative without it moving;
/// * the step is not a `recv` (delivery order couples it to senders);
/// * its dynamic footprint stays within the process itself;
/// * no other live process's reach meets the footprint, and nobody else
///   can still send to the footprint's `send_to` target.
pub(crate) fn invisible_singleton(m: &Machine, enabled: &[usize]) -> Option<usize> {
    let engine = m.engine();
    let finished = |q: usize| -> bool {
        // Permanently finished: out of statements *and* definite (a
        // speculative done process can be rolled back and run again).
        m.next_stmt(q).is_none() && !engine.is_speculative(m.pid(q)).unwrap_or(true)
    };
    let mut reaches: Vec<Option<Reach>> = (0..m.process_count()).map(|_| None).collect();
    'candidates: for &p in enabled {
        if engine.is_speculative(m.pid(p)).unwrap_or(true) {
            continue;
        }
        if matches!(m.next_stmt(p), Some(Stmt::Recv) | None) {
            continue;
        }
        let fp = footprint(m, p);
        if fp.procs.len() != 1 || !fp.procs.contains(&p) {
            continue;
        }
        // A decided AID is frozen: `consumed` is only ever reset while the
        // state is still `Undecided`, and a definite decision is permanent
        // (Theorem 5.2), so every later primitive on it — in any process —
        // is a one-shot skip that merely reads the flag. Reads of frozen
        // AIDs therefore cannot conflict with anything.
        let frozen = |x: AidId| -> bool { !matches!(engine.aid_state(x), Ok(AidState::Undecided)) };
        for (q, slot) in reaches.iter_mut().enumerate() {
            if q == p || finished(q) {
                continue;
            }
            let r = slot.get_or_insert_with(|| reach(m, q));
            if fp.writes.iter().any(|&x| r.touches(x)) {
                continue 'candidates;
            }
            if fp.reads.iter().any(|&x| !frozen(x) && r.touches(x)) {
                continue 'candidates;
            }
            if let Some(t) = fp.send_to {
                if r.sends.contains(&t) {
                    continue 'candidates;
                }
            }
        }
        return Some(p);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_core::program::Program;

    fn fresh(program: &str) -> Machine {
        Machine::new(program.parse::<Program>().unwrap())
    }

    #[test]
    fn disjoint_guesses_are_independent() {
        let m = fresh("process P0:\n guess(x0)\nprocess P1:\n guess(x1)\n");
        let a = footprint(&m, 0);
        let b = footprint(&m, 1);
        assert!(a.independent(&b));
        assert!(b.independent(&a));
    }

    #[test]
    fn same_aid_decisions_conflict() {
        let m = fresh("process P0:\n affirm(x0)\nprocess P1:\n deny(x0)\n");
        let a = footprint(&m, 0);
        let b = footprint(&m, 1);
        assert!(!a.independent(&b));
    }

    #[test]
    fn send_conflicts_with_receiver() {
        let m = fresh("process P0:\n send(P1)\nprocess P1:\n recv\n");
        let s = footprint(&m, 0);
        let r = footprint(&m, 1);
        assert_eq!(s.send_to, Some(1));
        assert!(!s.independent(&r));
    }

    #[test]
    fn deny_footprint_includes_rollback_victims() {
        // P0 guesses x0 (speculative interval), P1 will deny x0: P1's
        // step must claim P0 as a victim once the dependence exists.
        let mut m = fresh("process P0:\n guess(x0)\n compute\nprocess P1:\n deny(x0)\n");
        m.step(0).unwrap();
        let fp = footprint(&m, 1);
        assert!(fp.procs.contains(&0), "rollback victim missing: {fp:?}");
        assert!(fp.writes.contains(&m.aids()[0]));
    }

    #[test]
    fn skipped_decisions_on_a_consumed_aid_commute() {
        // P0 consumes x0; afterwards both remaining decisions are one-shot
        // violations that merely read the consumed flag — they commute.
        let mut m = fresh("process P0:\n affirm(x0)\n deny(x0)\nprocess P1:\n free_of(x0)\n");
        let before = footprint(&m, 1);
        assert!(before.writes.contains(&m.aids()[0]), "live decision writes");
        m.step(0).unwrap();
        let a = footprint(&m, 0);
        let b = footprint(&m, 1);
        assert!(a.reads.contains(&m.aids()[0]) && a.writes.is_empty());
        assert!(a.independent(&b), "skip vs skip must commute: {a:?} {b:?}");
    }

    #[test]
    fn compute_is_invisible_for_definite_process() {
        let m = fresh("process P0:\n compute\n compute\nprocess P1:\n guess(x0)\n");
        let pick = invisible_singleton(&m, &[0, 1]);
        assert_eq!(pick, Some(0));
    }

    #[test]
    fn guess_is_not_invisible_when_another_proc_touches_the_aid() {
        let m = fresh("process P0:\n guess(x0)\nprocess P1:\n affirm(x0)\n");
        assert_eq!(invisible_singleton(&m, &[0, 1]), None);
    }

    #[test]
    fn reach_shrinks_once_a_process_passes_its_last_use() {
        // Before P1 moves, its reach covers x0 and guess(x0) cannot be a
        // singleton; after P1's deny(x0) lands (and the engine settles),
        // only `compute` remains, so P0's next aid-free step is invisible.
        let mut m = fresh("process P0:\n compute\n guess(x0)\nprocess P1:\n deny(x0)\n compute\n");
        assert_eq!(invisible_singleton(&m, &[0, 1]), Some(0), "compute is free");
        m.step(0).unwrap();
        assert_eq!(
            invisible_singleton(&m, &[0, 1]),
            None,
            "guess(x0) races P1's deny(x0)"
        );
        m.step(1).unwrap();
        // P1's remaining suffix is aid-free and both processes are
        // definite: the guess no longer interleaves with anything.
        assert_eq!(invisible_singleton(&m, &[0, 1]), Some(0));
    }
}
