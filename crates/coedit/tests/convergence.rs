//! Property test: co-editing sessions converge for arbitrary shapes.

use hope_coedit::run_session;
use hope_sim::{LatencyModel, Topology, VirtualDuration};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn every_session_converges(
        editors in 1usize..5,
        edits in 1u64..6,
        link_ms in 1u64..6,
        seed in 0u64..64,
        bias in 0.4f64..1.0,
    ) {
        let topo = Topology::uniform(LatencyModel::Fixed(
            VirtualDuration::from_millis(link_ms),
        ));
        let out = run_session(editors, edits, topo, seed, bias);
        prop_assert!(out.report.errors().is_empty(), "{}", out.report);
        prop_assert!(!out.report.hit_limits(), "{}", out.report);
        prop_assert!(
            out.converged(),
            "authoritative={:?} replicas={:?} (rollbacks={})",
            out.authoritative,
            out.replicas,
            out.report.stats().rollback_events
        );
        // Insert-only sessions have a checkable length.
        if bias >= 1.0 {
            prop_assert_eq!(
                out.authoritative.chars().count() as u64,
                editors as u64 * edits
            );
        }
    }

    #[test]
    fn sessions_replay_identically(
        editors in 1usize..4,
        edits in 1u64..5,
        seed in 0u64..32,
    ) {
        let topo = Topology::uniform(LatencyModel::Fixed(
            VirtualDuration::from_millis(2),
        ));
        let a = run_session(editors, edits, topo.clone(), seed, 0.75);
        let b = run_session(editors, edits, topo, seed, 0.75);
        prop_assert_eq!(a.authoritative, b.authoritative);
        prop_assert_eq!(a.replicas, b.replicas);
    }
}
