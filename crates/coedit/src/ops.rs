//! Edit operations and the positional rebase used after conflicts.

use hope_runtime::Value;

/// One text edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert `ch` so that it ends up at index `pos`.
    Insert {
        /// Target index (clamped to the document length on apply).
        pos: usize,
        /// The character.
        ch: char,
    },
    /// Delete the character at index `pos` (no-op if out of range).
    Delete {
        /// Target index.
        pos: usize,
    },
}

impl Op {
    /// Apply to a document, clamping positions (concurrent edits can make
    /// a position stale by at most the rebase slack; clamping keeps apply
    /// total).
    pub fn apply(&self, doc: &mut Vec<char>) {
        match *self {
            Op::Insert { pos, ch } => {
                let p = pos.min(doc.len());
                doc.insert(p, ch);
            }
            Op::Delete { pos } => {
                if pos < doc.len() {
                    doc.remove(pos);
                }
            }
        }
    }

    /// Rebase this op's position past a concurrent `committed` op that was
    /// sequenced first (the classical single-op positional transform).
    pub fn rebase_past(&self, committed: &Op) -> Op {
        let shift = |pos: usize| -> usize {
            match *committed {
                Op::Insert { pos: cp, .. } => {
                    if cp <= pos {
                        pos + 1
                    } else {
                        pos
                    }
                }
                Op::Delete { pos: cp } => {
                    if cp < pos {
                        pos.saturating_sub(1)
                    } else {
                        pos
                    }
                }
            }
        };
        match *self {
            Op::Insert { pos, ch } => Op::Insert {
                pos: shift(pos),
                ch,
            },
            Op::Delete { pos } => Op::Delete { pos: shift(pos) },
        }
    }

    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        match *self {
            Op::Insert { pos, ch } => Value::List(vec![
                Value::Str("ins".into()),
                Value::Int(pos as i64),
                Value::Int(ch as i64),
            ]),
            Op::Delete { pos } => {
                Value::List(vec![Value::Str("del".into()), Value::Int(pos as i64)])
            }
        }
    }

    /// Decode a received payload; `None` for foreign messages.
    pub fn from_value(v: &Value) -> Option<Op> {
        let items = v.as_list()?;
        match items.first()?.as_str()? {
            "ins" if items.len() == 3 => Some(Op::Insert {
                pos: usize::try_from(items[1].as_int()?).ok()?,
                ch: char::from_u32(u32::try_from(items[2].as_int()?).ok()?)?,
            }),
            "del" if items.len() == 2 => Some(Op::Delete {
                pos: usize::try_from(items[1].as_int()?).ok()?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(s: &str) -> Vec<char> {
        s.chars().collect()
    }

    #[test]
    fn apply_insert_and_delete() {
        let mut d = doc("ac");
        Op::Insert { pos: 1, ch: 'b' }.apply(&mut d);
        assert_eq!(d, doc("abc"));
        Op::Delete { pos: 0 }.apply(&mut d);
        assert_eq!(d, doc("bc"));
        // Out-of-range clamps / no-ops.
        Op::Insert { pos: 99, ch: 'z' }.apply(&mut d);
        assert_eq!(d, doc("bcz"));
        Op::Delete { pos: 99 }.apply(&mut d);
        assert_eq!(d, doc("bcz"));
    }

    #[test]
    fn rebase_shifts_positions() {
        let mine = Op::Insert { pos: 3, ch: 'x' };
        assert_eq!(
            mine.rebase_past(&Op::Insert { pos: 1, ch: 'a' }),
            Op::Insert { pos: 4, ch: 'x' }
        );
        assert_eq!(
            mine.rebase_past(&Op::Insert { pos: 5, ch: 'a' }),
            Op::Insert { pos: 3, ch: 'x' }
        );
        assert_eq!(
            mine.rebase_past(&Op::Delete { pos: 1 }),
            Op::Insert { pos: 2, ch: 'x' }
        );
        assert_eq!(
            mine.rebase_past(&Op::Delete { pos: 3 }),
            Op::Insert { pos: 3, ch: 'x' }
        );
        let del = Op::Delete { pos: 2 };
        assert_eq!(
            del.rebase_past(&Op::Insert { pos: 0, ch: 'a' }),
            Op::Delete { pos: 3 }
        );
        assert_eq!(
            del.rebase_past(&Op::Delete { pos: 0 }),
            Op::Delete { pos: 1 }
        );
    }

    #[test]
    fn rebase_preserves_intent() {
        // "abc", I insert 'x' before 'c' (pos 2); someone inserts 'q' at 0
        // first: my rebased op still lands before 'c'.
        let mut d = doc("abc");
        let concurrent = Op::Insert { pos: 0, ch: 'q' };
        concurrent.apply(&mut d); // "qabc"
        let mine = Op::Insert { pos: 2, ch: 'x' }.rebase_past(&concurrent);
        mine.apply(&mut d);
        assert_eq!(d, doc("qabxc"), "x still lands before c");
    }

    #[test]
    fn wire_roundtrip() {
        for op in [Op::Insert { pos: 4, ch: 'é' }, Op::Delete { pos: 0 }] {
            assert_eq!(Op::from_value(&op.to_value()), Some(op));
        }
        assert_eq!(Op::from_value(&Value::Unit), None);
    }
}
