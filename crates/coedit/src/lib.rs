//! # hope-coedit — co-operative editing on HOPE
//!
//! §7 of the paper lists "co-operative work \[5\]" — Cormack's "formalism
//! for real-time distributed lock-free conference editing" — among the new
//! domains for optimism. This crate builds that system:
//!
//! * an **editor** ([`run_editor`]) applies every keystroke to its local
//!   replica immediately, `guess`ing that no concurrent edit was sequenced
//!   first — *lock-free* in exactly Cormack's sense: nobody ever waits to
//!   type;
//! * a **sequencer** ([`run_sequencer`]) total-orders proposals, affirming
//!   fresh ones and denying stale ones;
//! * a denial rolls the editor back to the proposal, where the missed
//!   commits (already broadcast) are applied, the local op is **rebased**
//!   positionally past them ([`Op::rebase_past`]), and the edit retries —
//!   conflict repair by rollback instead of locks;
//! * once an editor has observed every sequenced version, its replica text
//!   commits; [`SessionOutcome::converged`] checks all replicas equal the
//!   authoritative document.
//!
//! Experiment E13 measures conflict and rebase traffic against editor
//! count and contention.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod editor;
mod ops;
mod protocol;
mod sequencer;

pub use driver::{run_session, SessionOutcome};
pub use editor::{run_editor, EditorConfig};
pub use ops::Op;
pub use protocol::CoMsg;
pub use sequencer::{run_sequencer, SequencerConfig};
