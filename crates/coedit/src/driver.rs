//! Whole-session driver: editors + sequencer, run to convergence.

use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation};
use hope_sim::{Topology, VirtualDuration};

use crate::editor::{run_editor, EditorConfig};
use crate::sequencer::{run_sequencer, SequencerConfig};

/// Result of one editing session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The sequencer's authoritative final text.
    pub authoritative: String,
    /// Each editor's committed final text (spawn order).
    pub replicas: Vec<String>,
    /// The raw simulation report.
    pub report: RunReport,
}

impl SessionOutcome {
    /// `true` if every replica converged to the authoritative text.
    pub fn converged(&self) -> bool {
        self.replicas.iter().all(|r| *r == self.authoritative)
    }
}

/// Run a co-editing session: `editors` concurrent writers, `edits` each.
pub fn run_session(
    editors: usize,
    edits: u64,
    topology: Topology,
    seed: u64,
    insert_bias: f64,
) -> SessionOutcome {
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topology));
    let sequencer = ProcessId(editors as u32);
    let total_versions = editors as u64 * edits;
    for i in 0..editors {
        let cfg = EditorConfig {
            sequencer,
            edits,
            total_versions,
            edit_cost: VirtualDuration::from_millis(2),
            insert_bias,
        };
        sim.spawn(format!("editor{i}"), move |ctx| run_editor(ctx, &cfg));
    }
    let scfg = SequencerConfig {
        editors: (0..editors as u32).map(ProcessId).collect(),
        total_versions,
        step_time: VirtualDuration::from_micros(50),
    };
    sim.spawn("sequencer", move |ctx| run_sequencer(ctx, &scfg));
    let report = sim.run();

    let mut authoritative = String::new();
    let mut replicas = vec![String::new(); editors];
    for o in report.outputs() {
        if let Some(text) = o.line.strip_prefix("doc=") {
            if o.process == sequencer {
                authoritative = text.to_string();
            } else if (o.process.0 as usize) < editors {
                replicas[o.process.0 as usize] = text.to_string();
            }
        }
    }
    SessionOutcome {
        authoritative,
        replicas,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_sim::LatencyModel;

    fn topo(ms: u64) -> Topology {
        Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(ms)))
    }

    #[test]
    fn single_editor_is_conflict_free() {
        let out = run_session(1, 8, topo(2), 4, 1.0);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert!(out.converged(), "{out:?}");
        assert_eq!(out.authoritative.len(), 8, "{out:?}");
        assert_eq!(out.report.stats().rollback_events, 0);
    }

    #[test]
    fn concurrent_editors_converge() {
        let out = run_session(3, 5, topo(3), 7, 0.8);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert!(
            out.converged(),
            "authoritative={:?} replicas={:?}",
            out.authoritative,
            out.replicas
        );
        // Three editors racing from the same empty document: conflicts and
        // rebases are inevitable.
        assert!(out.report.stats().rollback_events > 0, "{}", out.report);
    }

    #[test]
    fn insert_only_sessions_preserve_length() {
        let out = run_session(2, 6, topo(1), 9, 1.0);
        assert!(out.converged(), "{out:?}");
        assert_eq!(out.authoritative.chars().count(), 12, "{out:?}");
    }

    #[test]
    fn sessions_are_deterministic() {
        let a = run_session(2, 4, topo(2), 11, 0.7);
        let b = run_session(2, 4, topo(2), 11, 0.7);
        assert_eq!(a.authoritative, b.authoritative);
        assert_eq!(a.replicas, b.replicas);
        assert_eq!(
            a.report.stats().rollback_events,
            b.report.stats().rollback_events
        );
    }

    #[test]
    fn heavy_contention_still_converges() {
        // Zero think-time separation at the message level: everyone
        // proposes against version 0 simultaneously.
        let out = run_session(4, 3, topo(5), 13, 0.6);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert!(out.converged(), "{out:?}");
        assert!(out.report.stats().rollback_events >= 3, "{}", out.report);
    }
}
