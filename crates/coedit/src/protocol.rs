//! Wire protocol between editors and the sequencer.

use hope_core::AidId;
use hope_runtime::Value;

use crate::ops::Op;

/// A co-editing protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum CoMsg {
    /// An editor proposes `op` against document version `base`, under
    /// assumption `aid` ("no conflicting edit was sequenced before mine").
    Propose {
        /// The optimistic assumption.
        aid: AidId,
        /// Version the op was composed against.
        base: u64,
        /// The edit.
        op: Op,
    },
    /// The sequencer committed `op` as version `version` (broadcast).
    Committed {
        /// The resulting document version.
        version: u64,
        /// The committed edit.
        op: Op,
    },
}

impl CoMsg {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        match self {
            CoMsg::Propose { aid, base, op } => Value::List(vec![
                Value::Str("prop".into()),
                Value::Int(aid.index() as i64),
                Value::Int(*base as i64),
                op.to_value(),
            ]),
            CoMsg::Committed { version, op } => Value::List(vec![
                Value::Str("comm".into()),
                Value::Int(*version as i64),
                op.to_value(),
            ]),
        }
    }

    /// Decode a received payload; `None` for foreign messages.
    pub fn from_value(v: &Value) -> Option<CoMsg> {
        let items = v.as_list()?;
        match items.first()?.as_str()? {
            "prop" if items.len() == 4 => Some(CoMsg::Propose {
                aid: AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
                base: u64::try_from(items[2].as_int()?).ok()?,
                op: Op::from_value(&items[3])?,
            }),
            "comm" if items.len() == 3 => Some(CoMsg::Committed {
                version: u64::try_from(items[1].as_int()?).ok()?,
                op: Op::from_value(&items[2])?,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let msgs = [
            CoMsg::Propose {
                aid: AidId::from_index(2),
                base: 7,
                op: Op::Insert { pos: 1, ch: 'h' },
            },
            CoMsg::Committed {
                version: 8,
                op: Op::Delete { pos: 3 },
            },
        ];
        for m in msgs {
            assert_eq!(CoMsg::from_value(&m.to_value()), Some(m));
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(CoMsg::from_value(&Value::Int(1)), None);
        assert_eq!(
            CoMsg::from_value(&Value::List(vec![Value::Str("prop".into())])),
            None
        );
    }
}
