//! The editor: compose locally, guess globally, rebase on conflict.
//!
//! Every edit is applied to the local replica the moment it is typed — the
//! `guess` is "no concurrent edit was sequenced before mine". A denial
//! rolls the editor back to the proposal, where it waits for the missed
//! commits (already broadcast to it), rebases its op positionally past
//! them, and re-proposes. Commitment of the final document text flows once
//! the editor has observed every sequenced version.

use std::collections::BTreeMap;

use hope_runtime::{Ctx, Hope, Message, ProcessId};
use hope_sim::VirtualDuration;

use crate::ops::Op;
use crate::protocol::CoMsg;

/// Configuration for [`run_editor`].
#[derive(Debug, Clone)]
pub struct EditorConfig {
    /// The sequencer process.
    pub sequencer: ProcessId,
    /// Edits this editor will make.
    pub edits: u64,
    /// Total commits the session will produce (all editors).
    pub total_versions: u64,
    /// Think time between edits.
    pub edit_cost: VirtualDuration,
    /// Bias towards insertions in `[0, 1]` (the rest are deletions).
    pub insert_bias: f64,
}

/// Local replica state: the document plus version bookkeeping.
#[derive(Debug, Default)]
struct Replica {
    doc: Vec<char>,
    /// Versions applied locally (own speculative commits included).
    known: u64,
    /// Committed ops applied so far, in version order (for rebasing).
    log: Vec<Op>,
    /// Out-of-order broadcasts held until contiguous.
    pending: BTreeMap<u64, Op>,
}

impl Replica {
    fn absorb(&mut self, m: &Message) {
        if let Some(CoMsg::Committed { version, op }) = CoMsg::from_value(&m.payload) {
            self.pending.insert(version, op);
        }
        self.drain_pending();
    }

    fn drain_pending(&mut self) {
        while let Some(op) = self.pending.remove(&(self.known + 1)) {
            op.apply(&mut self.doc);
            self.log.push(op);
            self.known += 1;
        }
    }

    fn apply_own(&mut self, op: Op) {
        op.apply(&mut self.doc);
        self.log.push(op);
        self.known += 1;
    }
}

/// Run one editor; emits `doc=<text>` after observing every version.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_editor(ctx: &mut Ctx, cfg: &EditorConfig) -> Hope<()> {
    let mut rep = Replica::default();
    for _ in 0..cfg.edits {
        while let Some(m) = ctx.try_recv()? {
            rep.absorb(&m);
        }
        // Compose against the current local state.
        let r = ctx.random_u64()?;
        let mut op = if ctx.chance(cfg.insert_bias)? || rep.doc.is_empty() {
            let pos = (r % (rep.doc.len() as u64 + 1)) as usize;
            let ch = char::from_u32('a' as u32 + (r % 26) as u32).expect("ascii letter");
            Op::Insert { pos, ch }
        } else {
            Op::Delete {
                pos: (r % rep.doc.len() as u64) as usize,
            }
        };
        // Propose-and-guess, rebasing until the sequencer takes it.
        loop {
            let aid = ctx.aid_init()?;
            ctx.send(
                cfg.sequencer,
                CoMsg::Propose {
                    aid,
                    base: rep.known,
                    op,
                }
                .to_value(),
            )?;
            if ctx.guess(aid)? {
                // Lock-free: keep typing as if the edit were sequenced.
                rep.apply_own(op);
                break;
            }
            // Denied: apply what we missed, rebase past it, try again.
            let before = rep.known;
            let rebase_from = rep.log.len();
            while rep.known == before {
                let m = ctx.recv()?;
                rep.absorb(&m);
            }
            for committed in &rep.log[rebase_from..] {
                op = op.rebase_past(committed);
            }
        }
        ctx.compute(cfg.edit_cost)?;
    }
    // Observe the rest of the session so the final text is authoritative.
    while rep.known < cfg.total_versions {
        let m = ctx.recv()?;
        rep.absorb(&m);
    }
    let text: String = rep.doc.iter().collect();
    ctx.output(format!("doc={text}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_applies_contiguously() {
        let mut r = Replica::default();
        // Version 2 arrives before version 1: held, then both apply.
        r.pending.insert(2, Op::Insert { pos: 1, ch: 'b' });
        r.drain_pending();
        assert_eq!(r.known, 0);
        r.pending.insert(1, Op::Insert { pos: 0, ch: 'a' });
        r.drain_pending();
        assert_eq!(r.known, 2);
        assert_eq!(r.doc, vec!['a', 'b']);
        assert_eq!(r.log.len(), 2);
    }

    #[test]
    fn apply_own_advances_version() {
        let mut r = Replica::default();
        r.apply_own(Op::Insert { pos: 0, ch: 'x' });
        assert_eq!(r.known, 1);
        assert_eq!(r.doc, vec!['x']);
    }
}
