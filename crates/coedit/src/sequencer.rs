//! The sequencer: total-orders edits and verifies freshness assumptions.
//!
//! Lock-free in the editing sense: no editor ever waits for permission to
//! type. The sequencer is this application's definite verifier (editors
//! propose *before* guessing, so with FIFO links it never becomes
//! speculative): a proposal based on the current version commits —
//! `affirm` — and is broadcast; a stale one is denied, rolling only the
//! proposing editor back to rebase and retry.

use hope_runtime::{Ctx, Hope, ProcessId};
use hope_sim::VirtualDuration;

use crate::protocol::CoMsg;

/// Configuration for [`run_sequencer`].
#[derive(Debug, Clone)]
pub struct SequencerConfig {
    /// All editor processes (committed ops are broadcast to each except
    /// the proposer).
    pub editors: Vec<ProcessId>,
    /// Total number of commits to sequence before reporting and exiting
    /// (the drivers use `editors × edits_per_editor`).
    pub total_versions: u64,
    /// CPU charged per handled proposal.
    pub step_time: VirtualDuration,
}

/// Run the sequencer; emits `doc=<text>` after the last commit.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_sequencer(ctx: &mut Ctx, cfg: &SequencerConfig) -> Hope<()> {
    let mut doc: Vec<char> = Vec::new();
    let mut version: u64 = 0;
    while version < cfg.total_versions {
        let msg = ctx.recv()?;
        let Some(CoMsg::Propose { aid, base, op }) = CoMsg::from_value(&msg.payload) else {
            continue;
        };
        ctx.compute(cfg.step_time)?;
        if base == version {
            op.apply(&mut doc);
            version += 1;
            ctx.affirm(aid)?;
            for &e in cfg.editors.iter().filter(|&&e| e != msg.from) {
                ctx.send(e, CoMsg::Committed { version, op }.to_value())?;
            }
        } else {
            // Stale base: the proposer's missed commits are already in
            // (or on the way to) its mailbox as broadcasts — deny and let
            // it rebase.
            ctx.deny(aid)?;
        }
    }
    let text: String = doc.iter().collect();
    ctx.output(format!("doc={text}"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let cfg = SequencerConfig {
            editors: vec![ProcessId(0), ProcessId(1)],
            total_versions: 8,
            step_time: VirtualDuration::from_micros(10),
        };
        assert_eq!(cfg.editors.len(), 2);
        assert_eq!(cfg.total_versions, 8);
    }
}
