//! Channel-min commit horizon — the local GVT computation.
//!
//! Time Warp's Global Virtual Time is the minimum, over every process and
//! in-flight message, of the unprocessed timestamps; everything older is
//! committed and fossil-collectable. A single LP can compute a *local*
//! under-approximation from its input channels alone: with per-link FIFO
//! delivery and monotone per-sender timestamps, once every commit channel
//! has delivered an event with timestamp ≥ `t`, no straggler older than `t`
//! can ever arrive, so guards below the channel minimum are safe to affirm.
//!
//! This module extracts that low-water-mark rule from [`run_lp`]
//! (crate::run_lp) so the same computation backs both the Time Warp guard
//! life-cycle here and, in generalized form, the engine-global commit
//! horizon of [`hope_core::Engine::collect_fossils`] — which replaces
//! "timestamp per channel" with "finalized frontier per process history".

use std::collections::BTreeMap;

use hope_core::AidId;
use hope_runtime::ProcessId;

/// Low-water-mark tracker over a fixed set of commit channels.
///
/// Feed every received event's `(sender, timestamp)` to
/// [`observe`](ChannelHorizon::observe); [`safe`](ChannelHorizon::safe)
/// yields the timestamp below which no straggler can arrive, once every
/// declared sender has been heard from at least once.
#[derive(Debug, Clone)]
pub struct ChannelHorizon {
    senders: Vec<ProcessId>,
    last_seen: BTreeMap<ProcessId, u64>,
}

impl ChannelHorizon {
    /// Track the given commit channels. An empty sender set means the
    /// horizon never advances (the perpetually-speculative symmetric PHOLD
    /// configuration; see `LpConfig::phold`).
    pub fn new(senders: Vec<ProcessId>) -> Self {
        ChannelHorizon {
            senders,
            last_seen: BTreeMap::new(),
        }
    }

    /// Record an arrival. All senders are recorded, commit channel or not:
    /// per-link FIFO plus monotone per-sender timestamps make the latest
    /// arrival the channel's high-water mark.
    pub fn observe(&mut self, from: ProcessId, ts: u64) {
        self.last_seen.insert(from, ts);
    }

    /// The commit horizon: `Some(min over commit channels of last seen)`
    /// once every declared sender has delivered, `None` before that (or if
    /// no senders are declared). Every guard with timestamp strictly below
    /// the returned value can never be straggled.
    pub fn safe(&self) -> Option<u64> {
        if self.senders.is_empty() || !self.senders.iter().all(|s| self.last_seen.contains_key(s)) {
            return None;
        }
        self.senders.iter().map(|s| self.last_seen[s]).min()
    }

    /// Pop the committed prefix of `guards` (sorted ascending by
    /// timestamp): every guard strictly below the current horizon is
    /// removed and returned, oldest first, ready to be affirmed.
    pub fn drain_safe(&self, guards: &mut Vec<(u64, AidId)>) -> Vec<AidId> {
        let Some(safe) = self.safe() else {
            return Vec::new();
        };
        let n = guards
            .iter()
            .position(|&(ts, _)| ts >= safe)
            .unwrap_or(guards.len());
        guards.drain(..n).map(|(_, g)| g).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_requires_all_senders() {
        let mut h = ChannelHorizon::new(vec![ProcessId(1), ProcessId(2)]);
        assert_eq!(h.safe(), None);
        h.observe(ProcessId(1), 10);
        assert_eq!(h.safe(), None, "one channel silent: no horizon");
        h.observe(ProcessId(2), 4);
        assert_eq!(h.safe(), Some(4), "horizon is the channel minimum");
        h.observe(ProcessId(2), 25);
        assert_eq!(h.safe(), Some(10));
    }

    #[test]
    fn empty_sender_set_never_commits() {
        let mut h = ChannelHorizon::new(Vec::new());
        h.observe(ProcessId(0), 100);
        assert_eq!(h.safe(), None);
        let mut guards = vec![(1, AidId::from_index(0))];
        assert!(h.drain_safe(&mut guards).is_empty());
        assert_eq!(guards.len(), 1);
    }

    #[test]
    fn drain_pops_strictly_older_guards() {
        let mut h = ChannelHorizon::new(vec![ProcessId(1)]);
        h.observe(ProcessId(1), 10);
        let mut guards = vec![
            (3, AidId::from_index(0)),
            (9, AidId::from_index(1)),
            (10, AidId::from_index(2)),
            (12, AidId::from_index(3)),
        ];
        let safe = h.drain_safe(&mut guards);
        assert_eq!(safe, vec![AidId::from_index(0), AidId::from_index(1)]);
        assert_eq!(
            guards,
            vec![(10, AidId::from_index(2)), (12, AidId::from_index(3))]
        );
        // Idempotent until the horizon moves.
        assert!(h.drain_safe(&mut guards).is_empty());
        h.observe(ProcessId(1), 13);
        assert_eq!(
            h.drain_safe(&mut guards),
            vec![AidId::from_index(2), AidId::from_index(3)]
        );
    }

    #[test]
    fn non_commit_senders_are_observed_but_ignored() {
        let mut h = ChannelHorizon::new(vec![ProcessId(1)]);
        h.observe(ProcessId(9), 1); // not a commit channel
        assert_eq!(h.safe(), None);
        h.observe(ProcessId(1), 5);
        assert_eq!(h.safe(), Some(5), "only declared channels bound the min");
    }
}
