//! The Time Warp logical process, expressed with HOPE primitives.
//!
//! §2 of the paper: "In Time Warp … only one kind of optimistic assumption
//! can be made, which is that messages arrive at each process in time-stamp
//! order … HOPE can specify any optimistic assumption, including message
//! arrival order." This module is that claim, executed:
//!
//! * Processing an event optimistically `guess`es a fresh **guard** AID —
//!   "no event with a smaller timestamp will arrive later".
//! * A **straggler** (an event older than something already processed)
//!   `deny`s the guard of the earliest prematurely processed event; HOPE's
//!   cascading rollback then plays the role of Time Warp's rollback *and*
//!   its anti-messages (speculatively sent events are tagged with the
//!   guard, so receivers unwind automatically and stale copies are ghosts).
//! * Guards become safe to `affirm` once every declared input channel has
//!   delivered something newer (per-link FIFO plus monotone per-sender
//!   timestamps make that sound) — the moral equivalent of GVT-based
//!   fossil collection.

use std::collections::{BTreeMap, BTreeSet};

use hope_core::AidId;
use hope_runtime::{Ctx, Hope, ProcessId};
use hope_sim::VirtualDuration;

use crate::event::Event;
use crate::horizon::ChannelHorizon;

/// Configuration of one logical process.
#[derive(Debug, Clone)]
pub struct LpConfig {
    /// All LP process ids (including this one): forwarding targets.
    pub lps: Vec<ProcessId>,
    /// Processes whose input channel participates in the commit (GVT)
    /// computation. Guards are affirmed only when *every* sender here has
    /// delivered an event at least as new. Usually equals `lps`.
    pub senders: Vec<ProcessId>,
    /// Number of jobs this LP injects to itself at start (timestamps
    /// `1, 2, …`).
    pub seed_jobs: u64,
    /// Substrate CPU time consumed per handled event.
    pub service_time: VirtualDuration,
    /// Mean model-time increment for forwarded events.
    pub mean_delay: u64,
    /// Events with `ts > horizon` are absorbed rather than forwarded.
    pub horizon: u64,
}

impl LpConfig {
    /// A standard PHOLD configuration over `lps`, each LP seeding one job.
    ///
    /// Commit channels are left **empty**: in a fully symmetric Time Warp
    /// system every process is perpetually speculative, and by the paper's
    /// own semantics (Lemma 6.3 / Theorem 6.2) a speculative affirm only
    /// takes definite effect when its issuer finalizes — so intra-LP fossil
    /// affirms can never finalize anything and merely invite conservative
    /// footnote-2 denials when the affirming interval rolls back. Real Time
    /// Warp escapes this with GVT, an *external, definite* observer; a
    /// faithful HOPE encoding therefore measures speculation, rollback and
    /// ghost cancellation (which HOPE does subsume) and leaves commitment
    /// to scenarios that have a definite affirmer (see the straggler test).
    /// This is a finding of the reproduction; see EXPERIMENTS.md (E6).
    pub fn phold(
        lps: Vec<ProcessId>,
        service_time: VirtualDuration,
        mean_delay: u64,
        horizon: u64,
    ) -> Self {
        LpConfig {
            senders: Vec::new(),
            lps,
            seed_jobs: 1,
            service_time,
            mean_delay,
            horizon,
        }
    }
}

/// Run one PHOLD-style logical process until the simulation shuts down.
///
/// Each handled event is re-forwarded to a pseudo-randomly chosen LP with a
/// model-time increment of `1 + (r % (2·mean_delay))`; events beyond the
/// horizon are absorbed. One output line is produced per handled event, so
/// [`RunReport::outputs`](hope_runtime::RunReport::outputs) counts exactly
/// the events whose guards were affirmed (committed), while the engine's
/// guess count includes speculative (possibly rolled back) processing.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s (the loop
/// terminates via `Shutdown`).
pub fn run_lp(ctx: &mut Ctx, cfg: &LpConfig) -> Hope<()> {
    let me = ctx.pid();
    // Model state, rebuilt deterministically by journal replay on rollback.
    let mut pending: BTreeSet<(Event, u64)> = BTreeSet::new(); // (event, msg id)
    let mut horizon = ChannelHorizon::new(cfg.senders.clone());
    let mut last_sent: BTreeMap<ProcessId, u64> = BTreeMap::new();
    let mut guards: Vec<(u64, AidId)> = Vec::new(); // (ts, guard), unaffirmed
    let mut last_processed: u64 = 0;

    for j in 0..cfg.seed_jobs {
        ctx.send(me, Event { ts: 1 + j, hops: 0 }.to_value())?;
    }
    if cfg.seed_jobs > 0 {
        last_sent.insert(me, cfg.seed_jobs);
    }

    loop {
        // Block for the next arriving event.
        let msg = ctx.recv()?;
        let ev = match Event::from_value(&msg.payload) {
            Some(ev) => ev,
            None => continue, // not an event; ignore
        };
        horizon.observe(msg.from, ev.ts);
        pending.insert((ev, msg.id));

        // Fossil-collect: once every commit channel has delivered something
        // at least as new, guards below the channel minimum can never be
        // straggled ([`ChannelHorizon`], the local GVT computation).
        for guard in horizon.drain_safe(&mut guards) {
            ctx.affirm(guard)?;
        }

        // Process everything pending, eagerly and optimistically.
        while let Some(&(ev, mid)) = pending.iter().next() {
            pending.remove(&(ev, mid));
            if ev.ts < last_processed {
                // Straggler: deny the guard of the earliest event processed
                // with a larger timestamp. We depend on that guard, so the
                // deny is definite and unwinds us to its guess (§5.3).
                let &(_, guard) = guards
                    .iter()
                    .find(|(ts, _)| *ts > ev.ts)
                    .expect("a processed guard outranks the straggler");
                ctx.deny(guard)?;
                unreachable!("self-deny always unwinds");
            }
            let guard = ctx.aid_init()?;
            guards.push((ev.ts, guard));
            guards.sort_unstable();
            if ctx.guess(guard)? {
                // Handle the event under the no-straggler assumption.
                ctx.compute(cfg.service_time)?;
                ctx.output(format!("handled ts={} hops={}", ev.ts, ev.hops))?;
                last_processed = last_processed.max(ev.ts);
                if ev.ts <= cfg.horizon {
                    let r = ctx.random_u64()?;
                    let target = cfg.lps[(r % cfg.lps.len() as u64) as usize];
                    let delay = 1 + (r >> 32) % (2 * cfg.mean_delay.max(1));
                    // Keep per-target timestamps strictly increasing: with
                    // the substrate's per-link FIFO this makes each input
                    // channel monotone, which is what makes the channel-min
                    // commit rule above sound.
                    let floor = last_sent.get(&target).map_or(0, |t| t + 1);
                    let ts = (ev.ts + delay).max(floor);
                    last_sent.insert(target, ts);
                    let next = Event {
                        ts,
                        hops: ev.hops + 1,
                    };
                    ctx.send(target, next.to_value())?;
                }
            } else {
                // Rolled back here: either a straggler older than `ev`
                // was re-enqueued into our mailbox, or a conservative deny
                // (a fossil affirm whose interval rolled back, §5.6
                // footnote 2) invalidated this guard without a straggler.
                // Withdraw the premature attempt, drain everything already
                // deliverable, and let the ordered `pending` set decide
                // what to process next.
                let pos = guards
                    .iter()
                    .position(|(_, g)| *g == guard)
                    .expect("guard was just pushed");
                guards.remove(pos);
                pending.insert((ev, mid));
                while let Some(m) = ctx.try_recv()? {
                    if let Some(e2) = Event::from_value(&m.payload) {
                        horizon.observe(m.from, e2.ts);
                        pending.insert((e2, m.id));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_runtime::{SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology};

    /// Two LPs exchanging jobs: the run progresses to the horizon and
    /// quiesces without errors.
    #[test]
    fn phold_pair_progresses() {
        let mut sim = Simulation::new(SimConfig::with_seed(5));
        let lps = vec![ProcessId(0), ProcessId(1)];
        let cfg = LpConfig::phold(lps, VirtualDuration::from_micros(100), 10, 100);
        let c0 = cfg.clone();
        sim.spawn("lp0", move |ctx| run_lp(ctx, &c0));
        let c1 = cfg;
        sim.spawn("lp1", move |ctx| run_lp(ctx, &c1));
        let report = sim.run();
        assert!(report.errors().is_empty(), "{report}");
        assert!(report.stats().engine.guesses > 10, "{report}");
        // Symmetric Time Warp: everyone is perpetually speculative, so no
        // output can commit (Lemma 6.3) — the reproduction's E6 finding.
        assert!(report.outputs().is_empty(), "{report}");
        assert!(!report.hit_limits(), "{report}");
    }

    /// Force a straggler: two senders with very different link latencies.
    #[test]
    fn straggler_rolls_back_and_reorders() {
        let mut topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(1)));
        // Driver 2 → LP0 is slow: its early-timestamped event arrives late.
        topo.set_link(2, 0, LatencyModel::Fixed(VirtualDuration::from_millis(50)));
        let mut sim = Simulation::new(SimConfig::with_seed(5).topology(topo));
        let cfg = LpConfig {
            lps: vec![ProcessId(0)],
            senders: vec![ProcessId(1), ProcessId(2)],
            seed_jobs: 0,
            service_time: VirtualDuration::from_micros(100),
            mean_delay: 10,
            horizon: 0, // absorb everything: no forwarding
        };
        sim.spawn("lp0", move |ctx| run_lp(ctx, &cfg));
        sim.spawn("driver-fast", move |ctx| {
            // Arrives first, timestamps 100 and 200.
            ctx.send(ProcessId(0), Event { ts: 100, hops: 0 }.to_value())?;
            ctx.send(ProcessId(0), Event { ts: 200, hops: 0 }.to_value())?;
            Ok(())
        });
        sim.spawn("driver-slow", move |ctx| {
            // Arrives last with the *oldest* timestamp: a straggler.
            ctx.send(ProcessId(0), Event { ts: 7, hops: 0 }.to_value())?;
            Ok(())
        });
        let report = sim.run();
        assert!(report.errors().is_empty(), "{report}");
        assert!(
            report.stats().rollback_events >= 1,
            "the straggler must trigger a Time Warp rollback: {report}"
        );
        // ts=100 was processed at least twice (once prematurely, once after
        // the rollback) and ts=7/200 once each: ≥ 4 guard guesses.
        assert!(report.stats().engine.guesses >= 4, "{report}");
        // The committed prefix (if any) is in timestamp order.
        let ts: Vec<u64> = report
            .outputs()
            .iter()
            .map(|o| {
                o.line
                    .split("ts=")
                    .nth(1)
                    .unwrap()
                    .split(' ')
                    .next()
                    .unwrap()
                    .parse()
                    .unwrap()
            })
            .collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted);
    }
}
