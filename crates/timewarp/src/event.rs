//! Timestamped simulation events exchanged between logical processes.
//!
//! Time Warp's virtual time is a *payload-level* notion: these timestamps
//! are the simulated model's clock, independent of the substrate's
//! [`VirtualTime`](hope_sim::VirtualTime) (which models real network/CPU
//! delays). Jefferson's insight — and the paper's §2 point — is that
//! "messages arrive in timestamp order" is just one particular optimistic
//! assumption; HOPE expresses it with one guard AID per processed event.

use hope_runtime::Value;

/// A logical-process event: a model timestamp plus a hop counter (PHOLD
/// jobs count how many times they have bounced).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// Model (Time Warp) timestamp, in abstract ticks.
    pub ts: u64,
    /// How many LPs this job has visited.
    pub hops: u64,
}

impl Event {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Int(self.ts as i64),
            Value::Int(self.hops as i64),
        ])
    }

    /// Decode a received payload.
    ///
    /// Returns `None` for malformed payloads.
    pub fn from_value(v: &Value) -> Option<Event> {
        let items = v.as_list()?;
        if items.len() != 2 {
            return None;
        }
        Some(Event {
            ts: u64::try_from(items[0].as_int()?).ok()?,
            hops: u64::try_from(items[1].as_int()?).ok()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let e = Event { ts: 42, hops: 3 };
        assert_eq!(Event::from_value(&e.to_value()), Some(e));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(Event::from_value(&Value::Unit), None);
        assert_eq!(
            Event::from_value(&Value::List(vec![Value::Int(-1), Value::Int(0)])),
            None
        );
        assert_eq!(Event::from_value(&Value::List(vec![Value::Int(1)])), None);
    }

    #[test]
    fn orders_by_timestamp_first() {
        let a = Event { ts: 1, hops: 9 };
        let b = Event { ts: 2, hops: 0 };
        assert!(a < b);
    }
}
