//! # hope-timewarp — Time Warp, expressed in HOPE
//!
//! The paper's related-work section (§2) positions HOPE against Jefferson's
//! Time Warp: Time Warp hard-codes *one* optimistic assumption — that
//! messages arrive at each process in timestamp order — while HOPE "can
//! specify any optimistic assumption, including message arrival order".
//! This crate makes the subsumption concrete by building an optimistic
//! parallel discrete-event simulator *on top of* the HOPE primitives:
//!
//! * one **guard** AID per processed event encodes the timestamp-order
//!   assumption ([`run_lp`]);
//! * stragglers `deny` guards; HOPE's cascading rollback replaces Time
//!   Warp's hand-rolled rollback **and** its anti-messages (ghost-message
//!   filtering does the cancellation);
//! * channel-min fossil collection `affirm`s safe guards, standing in for
//!   GVT.
//!
//! The [`phold`] module provides the standard PHOLD workload and a
//! sequential baseline for experiment E6.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
pub mod horizon;
mod lp;
pub mod phold;

pub use event::Event;
pub use horizon::ChannelHorizon;
pub use lp::{run_lp, LpConfig};
