//! The PHOLD workload: the standard Time Warp benchmark, plus a sequential
//! baseline.
//!
//! PHOLD circulates a fixed population of jobs among N logical processes;
//! each handled job is re-scheduled at a random future model time on a
//! random LP. The Time Warp version distributes the work across N
//! simulated nodes with optimistic synchronization (`hope-timewarp`); the
//! baseline processes the identical event stream on one node. Experiment
//! E6 compares their substrate completion times and counts rollbacks.

use std::collections::BinaryHeap;

use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation};
use hope_sim::{SimRng, Topology, VirtualDuration};

use crate::lp::{run_lp, LpConfig};

/// Result of a Time Warp PHOLD run.
#[derive(Debug)]
pub struct PholdReport {
    /// The underlying simulation report.
    pub report: RunReport,
    /// Events handled (including speculatively; engine guess count minus
    /// re-execution noise is a fair "work done" measure).
    pub handled: u64,
    /// Events whose guards committed (released output lines).
    pub committed: u64,
    /// Straggler-induced rollbacks.
    pub rollbacks: u64,
}

/// Run PHOLD on `n_lps` HOPE Time Warp processes (no commitment: the
/// committed count will be zero — the E6 finding).
///
/// # Panics
///
/// Panics if `n_lps == 0`.
pub fn run_phold(
    n_lps: usize,
    topology: Topology,
    service_time: VirtualDuration,
    mean_delay: u64,
    horizon: u64,
    seed: u64,
) -> PholdReport {
    run_phold_with(
        n_lps,
        topology,
        service_time,
        mean_delay,
        horizon,
        seed,
        false,
    )
}

/// Run PHOLD with an optional quiescence-commit oracle — the *external
/// definite observer* that stands in for Time Warp's GVT (see
/// [`SimConfig::commit_at_quiescence`](hope_runtime::SimConfig) and the
/// E6 finding). With `commit = true` the committed-event count equals the
/// surviving handled events.
///
/// # Panics
///
/// Panics if `n_lps == 0`.
pub fn run_phold_with(
    n_lps: usize,
    topology: Topology,
    service_time: VirtualDuration,
    mean_delay: u64,
    horizon: u64,
    seed: u64,
    commit: bool,
) -> PholdReport {
    assert!(n_lps > 0, "need at least one LP");
    let mut cfg_sim = SimConfig::with_seed(seed).topology(topology);
    if commit {
        cfg_sim = cfg_sim.commit_at_quiescence();
    }
    let mut sim = Simulation::new(cfg_sim);
    let lps: Vec<ProcessId> = (0..n_lps as u32).map(ProcessId).collect();
    let cfg = LpConfig::phold(lps.clone(), service_time, mean_delay, horizon);
    for (i, _) in lps.iter().enumerate() {
        let cfg = cfg.clone();
        sim.spawn(format!("lp{i}"), move |ctx| run_lp(ctx, &cfg));
    }
    let report = sim.run();
    PholdReport {
        handled: report.stats().engine.guesses,
        committed: report.stats().outputs_released,
        rollbacks: report.stats().rollback_events,
        report,
    }
}

/// Result of the sequential baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqReport {
    /// Events processed.
    pub events: u64,
    /// Total (single-CPU) substrate time consumed.
    pub total_time: VirtualDuration,
}

/// Process the same PHOLD parameters on a single sequential node: every
/// event costs `service_time` on one CPU, so total time is linear in the
/// event count. This is the baseline Time Warp must beat.
pub fn run_sequential(
    n_lps: usize,
    service_time: VirtualDuration,
    mean_delay: u64,
    horizon: u64,
    seed: u64,
) -> SeqReport {
    let mut rng = SimRng::new(seed).fork(424242);
    let mut heap: BinaryHeap<std::cmp::Reverse<u64>> = BinaryHeap::new();
    for _ in 0..n_lps {
        heap.push(std::cmp::Reverse(1));
    }
    let mut events = 0u64;
    while let Some(std::cmp::Reverse(ts)) = heap.pop() {
        events += 1;
        if ts <= horizon {
            let delay = 1 + rng.next_u64() % (2 * mean_delay.max(1));
            heap.push(std::cmp::Reverse(ts + delay));
        }
    }
    SeqReport {
        events,
        total_time: service_time * events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_baseline_is_linear_in_events() {
        let r = run_sequential(4, VirtualDuration::from_micros(100), 10, 100, 7);
        assert!(r.events >= 4);
        assert_eq!(r.total_time, VirtualDuration::from_micros(100) * r.events);
        // Deterministic.
        assert_eq!(
            r,
            run_sequential(4, VirtualDuration::from_micros(100), 10, 100, 7)
        );
    }

    #[test]
    fn timewarp_phold_runs() {
        let r = run_phold(
            4,
            Topology::lan(),
            VirtualDuration::from_micros(100),
            10,
            100,
            7,
        );
        assert!(r.report.errors().is_empty(), "{:?}", r.report.errors());
        assert!(r.handled > 4, "handled={}", r.handled);
        // Symmetric Time Warp never commits under pure HOPE semantics
        // (no definite affirmer exists): see LpConfig::phold.
        assert_eq!(r.committed, 0);
        assert!(!r.report.hit_limits(), "{:?}", r.report.stats());
    }

    #[test]
    fn quiescence_oracle_commits_phold() {
        // Without the oracle nothing commits (the E6 finding)…
        let plain = run_phold(
            3,
            Topology::local(),
            VirtualDuration::from_micros(200),
            10,
            60,
            9,
        );
        assert_eq!(plain.committed, 0);
        // …with it, every surviving handled event commits, in timestamp
        // order per LP.
        let committed = run_phold_with(
            3,
            Topology::local(),
            VirtualDuration::from_micros(200),
            10,
            60,
            9,
            true,
        );
        assert!(committed.committed > 0, "{:?}", committed.report.stats());
        for lp in 0..3u32 {
            let ts: Vec<u64> = committed
                .report
                .outputs()
                .iter()
                .filter(|o| o.process == ProcessId(lp))
                .map(|o| {
                    o.line
                        .split("ts=")
                        .nth(1)
                        .unwrap()
                        .split(' ')
                        .next()
                        .unwrap()
                        .parse()
                        .unwrap()
                })
                .collect();
            let mut sorted = ts.clone();
            sorted.sort_unstable();
            assert_eq!(ts, sorted, "LP{lp} committed out of timestamp order");
        }
    }

    #[test]
    fn timewarp_beats_sequential_on_compute_bound_workloads() {
        // Large service time, local links: the parallel version should
        // finish well before the single-CPU baseline.
        let service = VirtualDuration::from_millis(1);
        let tw = run_phold(8, Topology::local(), service, 10, 100, 3);
        let seq = run_sequential(8, service, 10, 100, 3);
        let tw_time = tw.report.end_time().as_secs_f64();
        let seq_time = seq.total_time.as_secs_f64();
        assert!(
            tw_time < seq_time,
            "Time Warp {tw_time}s !< sequential {seq_time}s (handled={}, rollbacks={})",
            tw.handled,
            tw.rollbacks
        );
    }
}
