//! Offline stand-in for
//! [`crossbeam-channel`](https://docs.rs/crossbeam-channel), covering
//! exactly the API surface this workspace uses: [`unbounded`] channels with
//! cloneable senders *and* receivers, blocking [`Receiver::recv`], and
//! non-blocking [`Sender::send`].
//!
//! The container this repository builds in has no registry access, so the
//! real crate cannot be fetched. `std::sync::mpsc` is single-consumer, so a
//! plain re-export cannot satisfy crossbeam's `Receiver: Clone`; instead the
//! shim implements a small mutex-plus-condvar MPMC queue and reuses the
//! standard library's channel error vocabulary (`SendError`, `RecvError`,
//! `TryRecvError`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The sending half of an unbounded channel. Cloneable; sends never block.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of an unbounded channel. Cloneable; clones compete
/// for messages (each message is delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel, crossbeam-style.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        available: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message. Fails only when every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.shared.lock();
        if state.receivers == 0 {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.shared.available.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut state = self.shared.lock();
        state.senders -= 1;
        let disconnected = state.senders == 0;
        drop(state);
        if disconnected {
            // Wake blocked receivers so they observe the disconnect.
            self.shared.available.notify_all();
        }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Dequeue the next message, blocking until one arrives. Fails only
    /// when the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.shared.lock();
        loop {
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self
                .shared
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeue the next message without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut state = self.shared.lock();
        match state.queue.pop_front() {
            Some(value) => Ok(value),
            None if state.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.lock().receivers -= 1;
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn disconnect_is_an_error() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert!(rx.recv().is_err());
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn cloned_receiver_sees_disconnect_only_after_drain() {
        let (tx, rx) = unbounded();
        let rx2 = rx.clone();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx2.recv().unwrap(), 7);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn cross_thread_handoff() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<u32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn blocked_receiver_wakes_on_send() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(10));
        tx.send(42u32).unwrap();
        assert_eq!(t.join().unwrap(), 42);
    }
}
