//! Whole-problem drivers: build the chunk pipeline, run it, collect the
//! committed solution.

use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation};
use hope_sim::{Topology, VirtualDuration};

use crate::worker::{jacobi_step, run_chunk_optimistic, run_chunk_sync, ChunkConfig};

/// Problem parameters for a domain-decomposed Jacobi run.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Number of chunk processes.
    pub n_chunks: usize,
    /// Interior cells per chunk.
    pub chunk_size: usize,
    /// Jacobi iterations.
    pub iterations: u64,
    /// Halo-prediction tolerance (0 ⇒ exact reproduction of the
    /// synchronous solution).
    pub tolerance: f64,
    /// Virtual CPU per iteration per chunk.
    pub compute_per_iter: VirtualDuration,
    /// Dirichlet boundary at the global left edge.
    pub left_boundary: f64,
    /// Dirichlet boundary at the global right edge.
    pub right_boundary: f64,
}

impl Default for Problem {
    fn default() -> Self {
        Problem {
            n_chunks: 4,
            chunk_size: 8,
            iterations: 20,
            tolerance: 0.0,
            compute_per_iter: VirtualDuration::from_micros(200),
            left_boundary: 1.0,
            right_boundary: 0.0,
        }
    }
}

/// The outcome of one run: per-chunk committed sums plus the raw report.
#[derive(Debug)]
pub struct JacobiOutcome {
    /// Committed per-chunk sums (index order); `None` where a chunk's
    /// output never committed (should not happen — asserted in tests).
    pub sums: Vec<Option<f64>>,
    /// The full simulation report.
    pub report: RunReport,
}

impl JacobiOutcome {
    /// Total of all committed sums.
    ///
    /// # Panics
    ///
    /// Panics if any chunk failed to commit its result.
    pub fn total(&self) -> f64 {
        self.sums
            .iter()
            .map(|s| s.expect("every chunk committed"))
            .sum()
    }
}

fn chunk_config(p: &Problem, i: usize) -> ChunkConfig {
    ChunkConfig {
        index: i,
        chunk_size: p.chunk_size,
        iterations: p.iterations,
        tolerance: p.tolerance,
        compute_per_iter: p.compute_per_iter,
        left: (i > 0).then(|| ProcessId(i as u32 - 1)),
        right: (i + 1 < p.n_chunks).then(|| ProcessId(i as u32 + 1)),
        left_boundary: p.left_boundary,
        right_boundary: p.right_boundary,
    }
}

/// Run the problem on the given topology, optimistically or not.
pub fn run(problem: &Problem, topology: Topology, seed: u64, optimistic: bool) -> JacobiOutcome {
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topology));
    for i in 0..problem.n_chunks {
        let cfg = chunk_config(problem, i);
        if optimistic {
            sim.spawn(format!("chunk{i}"), move |ctx| {
                run_chunk_optimistic(ctx, &cfg)
            });
        } else {
            sim.spawn(format!("chunk{i}"), move |ctx| run_chunk_sync(ctx, &cfg));
        }
    }
    let report = sim.run();
    let mut sums = vec![None; problem.n_chunks];
    for line in report.output_lines() {
        if let Some(rest) = line.strip_prefix("chunk ") {
            let mut parts = rest.split(" sum=");
            if let (Some(i), Some(v)) = (parts.next(), parts.next()) {
                if let (Ok(i), Ok(v)) = (i.parse::<usize>(), v.parse::<f64>()) {
                    if i < sums.len() {
                        sums[i] = Some(v);
                    }
                }
            }
        }
    }
    JacobiOutcome { sums, report }
}

/// The single-process reference solution (no decomposition, no messages).
pub fn reference(problem: &Problem) -> Vec<f64> {
    let n = problem.n_chunks * problem.chunk_size;
    let mut u = vec![0.0f64; n];
    for _ in 0..problem.iterations {
        u = jacobi_step(&u, problem.left_boundary, problem.right_boundary);
    }
    u
}

/// Per-chunk sums of the reference solution.
pub fn reference_sums(problem: &Problem) -> Vec<f64> {
    reference(problem)
        .chunks(problem.chunk_size)
        .map(|c| c.iter().sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_sim::LatencyModel;

    fn topo(ms: u64) -> Topology {
        Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(ms)))
    }

    #[test]
    fn sync_solver_matches_reference_exactly() {
        let p = Problem::default();
        let out = run(&p, topo(2), 1, false);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        let expected = reference_sums(&p);
        for (i, s) in out.sums.iter().enumerate() {
            let got = s.expect("chunk committed");
            assert!(
                (got - expected[i]).abs() < 1e-9,
                "chunk {i}: {got} vs {}",
                expected[i]
            );
        }
    }

    #[test]
    fn optimistic_with_zero_tolerance_is_exact_and_commits() {
        let p = Problem::default();
        let out = run(&p, topo(2), 1, true);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        let expected = reference_sums(&p);
        for (i, s) in out.sums.iter().enumerate() {
            let got = s.unwrap_or_else(|| panic!("chunk {i} never committed: {}", out.report));
            assert!(
                (got - expected[i]).abs() < 1e-9,
                "chunk {i}: {got} vs {}",
                expected[i]
            );
        }
        // Early iterations mispredict (halos move fast), so rollbacks
        // must have occurred — that is the machinery working.
        assert!(out.report.stats().rollback_events > 0, "{}", out.report);
    }

    #[test]
    fn loose_tolerance_is_faster_and_bounded() {
        let mut p = Problem {
            iterations: 16,
            ..Problem::default()
        };
        let exact = run(&p, topo(5), 2, true);
        p.tolerance = 0.05;
        let loose = run(&p, topo(5), 2, true);
        assert!(loose.report.errors().is_empty(), "{}", loose.report);
        // Fewer rollbacks and no later finish.
        assert!(
            loose.report.stats().rollback_events <= exact.report.stats().rollback_events,
            "loose {} vs exact {}",
            loose.report.stats().rollback_events,
            exact.report.stats().rollback_events
        );
        // Bounded deviation from the reference.
        let expected = reference_sums(&p);
        for (i, s) in loose.sums.iter().enumerate() {
            let got = s.expect("chunk committed");
            let bound = p.tolerance * p.iterations as f64 * p.chunk_size as f64;
            assert!(
                (got - expected[i]).abs() <= bound,
                "chunk {i}: {got} vs {} (bound {bound})",
                expected[i]
            );
        }
    }

    #[test]
    fn optimistic_beats_sync_on_slow_links() {
        let p = Problem {
            tolerance: 0.02,
            ..Problem::default()
        };
        let sync = run(&p, topo(10), 3, false);
        let opt = run(&p, topo(10), 3, true);
        let ts = sync.report.end_time();
        let to = opt.report.end_time();
        assert!(
            to < ts,
            "optimistic {to} !< sync {ts} (rollbacks {})",
            opt.report.stats().rollback_events
        );
    }
}
