//! The chunk solver: Jacobi iteration with optimistic halo exchange.
//!
//! The 1-D heat equation `u_new[i] = (u[i−1] + u[i+1]) / 2` is domain-
//! decomposed across processes; each iteration needs the neighbouring
//! chunks' edge values (*halos*). Synchronously that is two blocking
//! receives per iteration — pure latency. Optimistically, a missing halo
//! is **predicted** (its last known value), the prediction is `guess`ed,
//! and the iteration proceeds; when the true halo arrives the process
//! verifies its own guess: within `tolerance` ⇒ `affirm`, otherwise
//! `deny` — which rolls the computation back to the mispredicted
//! iteration and re-runs it with the actual value (by then sitting in the
//! mailbox).
//!
//! With `tolerance = 0` the optimistic solver provably computes the
//! *identical* solution to the synchronous one (every misprediction is
//! repaired); with `tolerance > 0` it is a bounded-error asynchronous
//! iteration that trades accuracy for latency — exactly the trade ref \[7\]
//! ("Optimistic Programming in PVM") explored on real numerical codes.

use std::collections::BTreeMap;

use hope_core::AidId;
use hope_runtime::{Ctx, Hope, Message, ProcessId};
use hope_sim::VirtualDuration;

use crate::halo::{Halo, Side};

/// Configuration of one chunk process.
#[derive(Debug, Clone)]
pub struct ChunkConfig {
    /// This chunk's index (0-based, left to right).
    pub index: usize,
    /// Number of interior cells this chunk owns.
    pub chunk_size: usize,
    /// Jacobi iterations to run.
    pub iterations: u64,
    /// Maximum |actual − predicted| for a halo guess to be affirmed.
    pub tolerance: f64,
    /// Virtual CPU time per iteration.
    pub compute_per_iter: VirtualDuration,
    /// Left neighbour (None at the global left edge).
    pub left: Option<ProcessId>,
    /// Right neighbour (None at the global right edge).
    pub right: Option<ProcessId>,
    /// Dirichlet boundary value at the global left edge.
    pub left_boundary: f64,
    /// Dirichlet boundary value at the global right edge.
    pub right_boundary: f64,
}

/// Which neighbour a halo concerns, from this chunk's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Nb {
    Left,
    Right,
}

#[derive(Debug)]
struct Pending {
    aid: AidId,
    iter: u64,
    nb: Nb,
    predicted: f64,
}

/// State for tracking received halos and outstanding predictions.
#[derive(Debug, Default)]
struct HaloState {
    left: BTreeMap<u64, f64>,
    right: BTreeMap<u64, f64>,
    pending: Vec<Pending>,
}

impl HaloState {
    fn record(&mut self, cfg: &ChunkConfig, m: &Message) -> bool {
        let Some(h) = Halo::from_value(&m.payload) else {
            return false;
        };
        // A halo from my left neighbour is its Right edge, and vice versa.
        match (Some(m.from) == cfg.left, Some(m.from) == cfg.right, h.side) {
            (true, _, Side::Right) => {
                self.left.insert(h.iter, h.value);
                true
            }
            (_, true, Side::Left) => {
                self.right.insert(h.iter, h.value);
                true
            }
            _ => false,
        }
    }

    fn actual(&self, nb: Nb, iter: u64) -> Option<f64> {
        match nb {
            Nb::Left => self.left.get(&iter).copied(),
            Nb::Right => self.right.get(&iter).copied(),
        }
    }

    /// Latest known value at or before `iter` (the prediction source).
    fn latest(&self, nb: Nb, iter: u64) -> Option<f64> {
        let map = match nb {
            Nb::Left => &self.left,
            Nb::Right => &self.right,
        };
        map.range(..=iter).next_back().map(|(_, v)| *v)
    }
}

/// Verify any outstanding predictions whose true halos have arrived.
/// A failed verification denies (and therefore unwinds via `?`).
fn verify_pending(ctx: &mut Ctx, cfg: &ChunkConfig, st: &mut HaloState) -> Hope<()> {
    let mut i = 0;
    while i < st.pending.len() {
        let p = &st.pending[i];
        match st.actual(p.nb, p.iter) {
            Some(actual) => {
                if (actual - p.predicted).abs() <= cfg.tolerance {
                    let aid = p.aid;
                    st.pending.remove(i);
                    ctx.affirm(aid)?;
                } else {
                    // Definite self-deny: we depend on this guess.
                    let aid = p.aid;
                    ctx.deny(aid)?;
                    unreachable!("self-deny unwinds");
                }
            }
            None => i += 1,
        }
    }
    Ok(())
}

fn drain_halos(ctx: &mut Ctx, cfg: &ChunkConfig, st: &mut HaloState) -> Hope<()> {
    while let Some(m) = ctx.try_recv()? {
        st.record(cfg, &m);
    }
    verify_pending(ctx, cfg, st)
}

/// Obtain the halo value for `nb` at `iter`, predicting if necessary.
fn halo_or_predict(
    ctx: &mut Ctx,
    cfg: &ChunkConfig,
    st: &mut HaloState,
    nb: Nb,
    iter: u64,
) -> Hope<f64> {
    if let Some(v) = st.actual(nb, iter) {
        return Ok(v);
    }
    let predicted = st.latest(nb, iter).unwrap_or(0.0);
    let aid = ctx.aid_init()?;
    if ctx.guess(aid)? {
        st.pending.push(Pending {
            aid,
            iter,
            nb,
            predicted,
        });
        Ok(predicted)
    } else {
        // Rolled back here: the actual value (or the knowledge that the
        // prediction chain moved) is in the mailbox — drain and retry.
        drain_halos(ctx, cfg, st)?;
        match st.actual(nb, iter) {
            Some(v) => Ok(v),
            None => {
                // Still missing (e.g. the halo was ghosted with its
                // sender's rollback): block until it arrives for real.
                loop {
                    let m = ctx.recv()?;
                    st.record(cfg, &m);
                    verify_pending(ctx, cfg, st)?;
                    if let Some(v) = st.actual(nb, iter) {
                        return Ok(v);
                    }
                }
            }
        }
    }
}

/// Run one chunk **optimistically**; emits `chunk <i> sum=<Σ>` when done.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_chunk_optimistic(ctx: &mut Ctx, cfg: &ChunkConfig) -> Hope<()> {
    let mut u = vec![0.0f64; cfg.chunk_size];
    let mut st = HaloState::default();
    // Iteration 0 state is globally known (all zeros): seed the halo maps.
    st.left.insert(0, 0.0);
    st.right.insert(0, 0.0);

    for k in 1..=cfg.iterations {
        drain_halos(ctx, cfg, &mut st)?;
        let lh = match cfg.left {
            None => cfg.left_boundary,
            Some(_) => halo_or_predict(ctx, cfg, &mut st, Nb::Left, k - 1)?,
        };
        let rh = match cfg.right {
            None => cfg.right_boundary,
            Some(_) => halo_or_predict(ctx, cfg, &mut st, Nb::Right, k - 1)?,
        };
        u = jacobi_step(&u, lh, rh);
        ctx.compute(cfg.compute_per_iter)?;
        if let Some(l) = cfg.left {
            ctx.send(
                l,
                Halo {
                    iter: k,
                    side: Side::Left,
                    value: u[0],
                }
                .to_value(),
            )?;
        }
        if let Some(r) = cfg.right {
            ctx.send(
                r,
                Halo {
                    iter: k,
                    side: Side::Right,
                    value: u[cfg.chunk_size - 1],
                }
                .to_value(),
            )?;
        }
    }

    // Settle the tail: every outstanding prediction must be verified so
    // the speculation collapses and the output below can commit.
    while !st.pending.is_empty() {
        let m = ctx.recv()?;
        st.record(cfg, &m);
        verify_pending(ctx, cfg, &mut st)?;
    }

    let sum: f64 = u.iter().sum();
    ctx.output(format!("chunk {} sum={:.12}", cfg.index, sum))?;
    Ok(())
}

/// Run one chunk **synchronously** (the baseline): block for both halos
/// every iteration.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_chunk_sync(ctx: &mut Ctx, cfg: &ChunkConfig) -> Hope<()> {
    let mut u = vec![0.0f64; cfg.chunk_size];
    let mut st = HaloState::default();
    st.left.insert(0, 0.0);
    st.right.insert(0, 0.0);

    for k in 1..=cfg.iterations {
        // Send my (k−1)-edges first so neighbours can make progress.
        if k > 1 {
            if let Some(l) = cfg.left {
                ctx.send(
                    l,
                    Halo {
                        iter: k - 1,
                        side: Side::Left,
                        value: u[0],
                    }
                    .to_value(),
                )?;
            }
            if let Some(r) = cfg.right {
                ctx.send(
                    r,
                    Halo {
                        iter: k - 1,
                        side: Side::Right,
                        value: u[cfg.chunk_size - 1],
                    }
                    .to_value(),
                )?;
            }
        }
        let lh = match cfg.left {
            None => cfg.left_boundary,
            Some(_) => loop {
                if let Some(v) = st.actual(Nb::Left, k - 1) {
                    break v;
                }
                let m = ctx.recv()?;
                st.record(cfg, &m);
            },
        };
        let rh = match cfg.right {
            None => cfg.right_boundary,
            Some(_) => loop {
                if let Some(v) = st.actual(Nb::Right, k - 1) {
                    break v;
                }
                let m = ctx.recv()?;
                st.record(cfg, &m);
            },
        };
        u = jacobi_step(&u, lh, rh);
        ctx.compute(cfg.compute_per_iter)?;
    }

    let sum: f64 = u.iter().sum();
    ctx.output(format!("chunk {} sum={:.12}", cfg.index, sum))?;
    Ok(())
}

/// One Jacobi relaxation step over a chunk with explicit halo values.
pub fn jacobi_step(u: &[f64], left_halo: f64, right_halo: f64) -> Vec<f64> {
    let n = u.len();
    let mut out = vec![0.0; n];
    for i in 0..n {
        let l = if i == 0 { left_halo } else { u[i - 1] };
        let r = if i + 1 == n { right_halo } else { u[i + 1] };
        out[i] = 0.5 * (l + r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_step_averages_neighbours() {
        let u = vec![0.0, 0.0, 0.0];
        let next = jacobi_step(&u, 1.0, 0.0);
        assert_eq!(next, vec![0.5, 0.0, 0.0]);
        let next2 = jacobi_step(&next, 1.0, 0.0);
        assert_eq!(next2, vec![0.5, 0.25, 0.0]);
    }

    #[test]
    fn halo_state_records_only_neighbour_edges() {
        let cfg = ChunkConfig {
            index: 1,
            chunk_size: 2,
            iterations: 1,
            tolerance: 0.0,
            compute_per_iter: VirtualDuration::ZERO,
            left: Some(ProcessId(0)),
            right: Some(ProcessId(2)),
            left_boundary: 1.0,
            right_boundary: 0.0,
        };
        let mut st = HaloState::default();
        let mk = |from: u32, side: Side| {
            Message::synthetic(
                ProcessId(from),
                ProcessId(1),
                hope_runtime::MsgKind::Plain,
                Halo {
                    iter: 3,
                    side,
                    value: 0.25,
                }
                .to_value(),
            )
        };
        assert!(st.record(&cfg, &mk(0, Side::Right))); // left nb's right edge
        assert!(st.record(&cfg, &mk(2, Side::Left))); // right nb's left edge
        assert!(!st.record(&cfg, &mk(0, Side::Left))); // wrong edge
        assert!(!st.record(&cfg, &mk(9, Side::Left))); // stranger
        assert_eq!(st.actual(Nb::Left, 3), Some(0.25));
        assert_eq!(st.actual(Nb::Right, 3), Some(0.25));
        assert_eq!(st.latest(Nb::Left, 10), Some(0.25));
        assert_eq!(st.latest(Nb::Left, 2), None);
    }
}
