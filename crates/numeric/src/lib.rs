//! # hope-numeric — optimistic numerical computation on HOPE
//!
//! §7 of the paper promises to "extend the application of optimism beyond
//! its traditional domains … into new areas such as … numerical
//! computation \[7\]" (Cowan's *Optimistic Programming in PVM*). This crate
//! is that extension: a domain-decomposed Jacobi solver for the 1-D heat
//! equation in which the per-iteration halo exchange — the classic
//! latency wall of distributed stencil codes — is performed
//! *optimistically*:
//!
//! * a missing neighbour edge is **predicted** (its last known value) and
//!   the prediction `guess`ed;
//! * the true edge, when it arrives, is compared against the prediction:
//!   within [`Problem::tolerance`] ⇒ `affirm`, beyond it ⇒ `deny`, rolling
//!   the chunk back to the mispredicted iteration (where the true value
//!   now awaits in the mailbox);
//! * with `tolerance = 0` the committed solution is bit-equal to the
//!   synchronous solver's; with `tolerance > 0` it is a bounded-error
//!   asynchronous iteration that buys latency with accuracy.
//!
//! The global commit argument is the interesting part: every prediction
//! AID is eventually affirmed or denied by its own chunk, and because a
//! speculative affirm replaces dependence on the AID with the affirmer's
//! *remaining* dependence (Equations 10–14), once every AID in the system
//! is decided, every `IDO` set is empty and all speculation collapses to
//! definite — the per-chunk results commit. See `tests/` and experiment
//! E11.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod halo;
mod solver;
mod worker;

pub use halo::{Halo, Side};
pub use solver::{reference, reference_sums, run, JacobiOutcome, Problem};
pub use worker::{jacobi_step, run_chunk_optimistic, run_chunk_sync, ChunkConfig};
