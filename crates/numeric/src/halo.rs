//! Wire encoding for halo (boundary) exchange messages.
//!
//! Floating-point values travel as IEEE-754 bit patterns inside the
//! runtime's integer payloads, so exchanges are exact (no text round-trip
//! error) and deterministic.

use hope_runtime::Value;

/// Which side of a chunk a boundary value belongs to, from the *sender's*
/// perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Side {
    /// The sender's leftmost cell (its left neighbour's right halo).
    Left,
    /// The sender's rightmost cell (its right neighbour's left halo).
    Right,
}

impl Side {
    fn code(self) -> i64 {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }

    fn from_code(v: i64) -> Option<Side> {
        match v {
            0 => Some(Side::Left),
            1 => Some(Side::Right),
            _ => None,
        }
    }
}

/// One halo message: "my `side` edge after iteration `iter` is `value`".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Halo {
    /// Iteration the value belongs to.
    pub iter: u64,
    /// Which of the sender's edges.
    pub side: Side,
    /// The boundary value.
    pub value: f64,
}

impl Halo {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Str("halo".into()),
            Value::Int(self.iter as i64),
            Value::Int(self.side.code()),
            Value::Int(self.value.to_bits() as i64),
        ])
    }

    /// Decode a received payload; `None` for foreign messages.
    pub fn from_value(v: &Value) -> Option<Halo> {
        let items = v.as_list()?;
        if items.len() != 4 || items[0].as_str()? != "halo" {
            return None;
        }
        Some(Halo {
            iter: u64::try_from(items[1].as_int()?).ok()?,
            side: Side::from_code(items[2].as_int()?)?,
            value: f64::from_bits(items[3].as_int()? as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_bits() {
        for v in [0.0, -1.5, std::f64::consts::PI, 1e-300, f64::MAX] {
            let h = Halo {
                iter: 7,
                side: Side::Right,
                value: v,
            };
            let decoded = Halo::from_value(&h.to_value()).unwrap();
            assert_eq!(decoded.iter, 7);
            assert_eq!(decoded.side, Side::Right);
            assert_eq!(decoded.value.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(Halo::from_value(&Value::Unit), None);
        assert_eq!(
            Halo::from_value(&Value::List(vec![Value::Str("halo".into())])),
            None
        );
        assert_eq!(
            Halo::from_value(&Value::List(vec![
                Value::Str("halo".into()),
                Value::Int(0),
                Value::Int(9), // bad side code
                Value::Int(0),
            ])),
            None
        );
    }
}
