//! Property tests: across random problem shapes, the optimistic solver
//! with zero tolerance reproduces the synchronous solution, and loose
//! tolerances stay within the analytic error bound.

use hope_numeric::{reference_sums, run, Problem};
use hope_sim::{LatencyModel, Topology, VirtualDuration};
use proptest::prelude::*;

fn problem() -> impl Strategy<Value = Problem> {
    (2usize..5, 2usize..7, 4u64..14).prop_map(|(n_chunks, chunk_size, iterations)| Problem {
        n_chunks,
        chunk_size,
        iterations,
        tolerance: 0.0,
        compute_per_iter: VirtualDuration::from_micros(100),
        left_boundary: 1.0,
        right_boundary: 0.0,
    })
}

fn topo(ms: u64) -> Topology {
    Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(ms)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn zero_tolerance_matches_sync_exactly(p in problem(), link in 1u64..5, seed in 0u64..16) {
        let sync = run(&p, topo(link), seed, false);
        let opt = run(&p, topo(link), seed, true);
        prop_assert!(opt.report.errors().is_empty(), "{}", opt.report);
        for (i, (a, b)) in opt.sums.iter().zip(&sync.sums).enumerate() {
            let (a, b) = (a.expect("opt committed"), b.expect("sync committed"));
            prop_assert!((a - b).abs() < 1e-9, "chunk {i}: {a} vs {b}");
        }
        // And both match the single-machine reference.
        let reference = reference_sums(&p);
        for (i, s) in sync.sums.iter().enumerate() {
            prop_assert!((s.unwrap() - reference[i]).abs() < 1e-9, "chunk {i}");
        }
    }

    #[test]
    fn loose_tolerance_error_is_bounded(p in problem(), seed in 0u64..8) {
        let loose = Problem { tolerance: 0.02, ..p.clone() };
        let out = run(&loose, topo(3), seed, true);
        prop_assert!(out.report.errors().is_empty(), "{}", out.report);
        let reference = reference_sums(&p);
        // Each mispredicted halo injects ≤ tolerance of error per cell per
        // iteration; the per-chunk sum deviation is bounded accordingly.
        let bound = loose.tolerance * loose.iterations as f64 * loose.chunk_size as f64;
        for (i, s) in out.sums.iter().enumerate() {
            let got = s.expect("chunk committed");
            prop_assert!(
                (got - reference[i]).abs() <= bound,
                "chunk {i}: {got} vs {} (bound {bound})",
                reference[i]
            );
        }
    }

    #[test]
    fn optimistic_runs_are_deterministic(p in problem(), seed in 0u64..8) {
        let a = run(&p, topo(2), seed, true);
        let b = run(&p, topo(2), seed, true);
        prop_assert_eq!(&a.sums, &b.sums);
        prop_assert_eq!(
            a.report.stats().rollback_events,
            b.report.stats().rollback_events
        );
        prop_assert_eq!(a.report.end_time(), b.report.end_time());
    }
}
