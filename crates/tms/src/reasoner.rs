//! The distributed reasoner: assumes, derives, gossips, and is revised by
//! rollback.
//!
//! A reasoner owns a list of candidate assumptions. Per round it drains
//! incoming peer facts, makes its next assumption (announce → `guess` →
//! confirm), forward-chains its local belief set under the shared rule
//! base, and broadcasts newly derived atoms. When the judge refutes an
//! assumption (dependency-directed backtracking!), HOPE rolls the
//! reasoner — and transitively every peer that consumed its facts — back
//! to the guess, where the re-executed `guess` returns `false` and the
//! assumption is simply not made. Doyle's TMS justification network is
//! the engine's `IDO`/`DOM` graph, maintained for free.

use std::collections::BTreeSet;

use hope_runtime::{Ctx, Hope, ProcessId};
use hope_sim::VirtualDuration;

use crate::logic::{Atom, KnowledgeBase};
use crate::protocol::TmsMsg;

/// Configuration of one reasoner process.
#[derive(Debug, Clone)]
pub struct ReasonerConfig {
    /// The nogood-policing judge.
    pub judge: ProcessId,
    /// Fellow reasoners (facts are gossiped to all of them).
    pub peers: Vec<ProcessId>,
    /// The shared rule base (nogoods are the judge's business).
    pub kb: KnowledgeBase,
    /// Atoms to assume, one per round, in order.
    pub assumptions: Vec<Atom>,
    /// Extra gossip rounds after the last assumption (lets facts settle).
    pub extra_rounds: u64,
    /// Virtual CPU per round.
    pub round_time: VirtualDuration,
}

/// Run one reasoner; emits `beliefs=<sorted atoms>` once its rounds end.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_reasoner(ctx: &mut Ctx, cfg: &ReasonerConfig) -> Hope<()> {
    let mut beliefs: BTreeSet<Atom> = BTreeSet::new();
    let mut shared: BTreeSet<Atom> = BTreeSet::new();

    let rounds = cfg.assumptions.len() as u64 + cfg.extra_rounds;
    for round in 0..rounds {
        // Absorb peer facts (ghosts of retracted derivations are filtered
        // by the runtime before we ever see them).
        while let Some(m) = ctx.try_recv()? {
            if let Some(TmsMsg::Fact { atom }) = TmsMsg::from_value(&m.payload) {
                beliefs.insert(atom);
            }
        }
        // Make this round's assumption, if any.
        if let Some(&atom) = cfg.assumptions.get(round as usize) {
            let aid = ctx.aid_init()?;
            ctx.send(cfg.judge, TmsMsg::Announce { aid, atom }.to_value())?;
            if ctx.guess(aid)? {
                beliefs.insert(atom);
                ctx.send(cfg.judge, TmsMsg::Confirm { aid, atom }.to_value())?;
            }
            // guess == false: the judge refuted it (now or in a previous
            // life); reason on without it.
        }
        // Forward-chain and gossip anything new.
        beliefs = cfg.kb.close(&beliefs);
        for &atom in beliefs.difference(&shared.clone()) {
            for &p in &cfg.peers {
                ctx.send(p, TmsMsg::Fact { atom }.to_value())?;
            }
            shared.insert(atom);
        }
        ctx.compute(cfg.round_time)?;
    }

    // Final drain, then report.
    while let Some(m) = ctx.try_recv()? {
        if let Some(TmsMsg::Fact { atom }) = TmsMsg::from_value(&m.payload) {
            beliefs.insert(atom);
        }
    }
    beliefs = cfg.kb.close(&beliefs);
    let listed: Vec<String> = beliefs.iter().map(u32::to_string).collect();
    ctx.output(format!("beliefs={}", listed.join(",")))?;
    ctx.send(cfg.judge, TmsMsg::Done.to_value())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_shapes() {
        let cfg = ReasonerConfig {
            judge: ProcessId(9),
            peers: vec![ProcessId(1)],
            kb: KnowledgeBase::default(),
            assumptions: vec![1, 2],
            extra_rounds: 3,
            round_time: VirtualDuration::from_micros(10),
        };
        assert_eq!(cfg.assumptions.len() as u64 + cfg.extra_rounds, 5);
    }
}
