//! Wire encoding for the distributed TMS.

use hope_core::AidId;
use hope_runtime::Value;

use crate::logic::Atom;

/// A TMS protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TmsMsg {
    /// "I am about to assume `atom` under assumption id `aid`" — sent
    /// *before* the guess, so it carries only prior dependence.
    Announce {
        /// The assumption's AID.
        aid: AidId,
        /// The assumed atom.
        atom: Atom,
    },
    /// "I have assumed it" — sent *after* the guess, so the receiver
    /// becomes dependent on the assumption (making a later deny definite).
    Confirm {
        /// The assumption's AID.
        aid: AidId,
        /// The assumed atom.
        atom: Atom,
    },
    /// A derived fact, shared with peers.
    Fact {
        /// The derived atom.
        atom: Atom,
    },
    /// "My reasoning rounds are over."
    Done,
}

impl TmsMsg {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        match self {
            TmsMsg::Announce { aid, atom } => Value::List(vec![
                Value::Str("assume".into()),
                Value::Int(aid.index() as i64),
                Value::Int(*atom as i64),
            ]),
            TmsMsg::Confirm { aid, atom } => Value::List(vec![
                Value::Str("confirm".into()),
                Value::Int(aid.index() as i64),
                Value::Int(*atom as i64),
            ]),
            TmsMsg::Fact { atom } => {
                Value::List(vec![Value::Str("fact".into()), Value::Int(*atom as i64)])
            }
            TmsMsg::Done => Value::List(vec![Value::Str("done".into())]),
        }
    }

    /// Decode a received payload; `None` for foreign messages.
    pub fn from_value(v: &Value) -> Option<TmsMsg> {
        let items = v.as_list()?;
        match items.first()?.as_str()? {
            "assume" if items.len() == 3 => Some(TmsMsg::Announce {
                aid: AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
                atom: u32::try_from(items[2].as_int()?).ok()?,
            }),
            "confirm" if items.len() == 3 => Some(TmsMsg::Confirm {
                aid: AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
                atom: u32::try_from(items[2].as_int()?).ok()?,
            }),
            "fact" if items.len() == 2 => Some(TmsMsg::Fact {
                atom: u32::try_from(items[1].as_int()?).ok()?,
            }),
            "done" if items.len() == 1 => Some(TmsMsg::Done),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let msgs = [
            TmsMsg::Announce {
                aid: AidId::from_index(3),
                atom: 7,
            },
            TmsMsg::Confirm {
                aid: AidId::from_index(3),
                atom: 7,
            },
            TmsMsg::Fact { atom: 9 },
            TmsMsg::Done,
        ];
        for m in msgs {
            assert_eq!(TmsMsg::from_value(&m.to_value()), Some(m));
        }
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(TmsMsg::from_value(&Value::Unit), None);
        assert_eq!(
            TmsMsg::from_value(&Value::List(vec![Value::Str("fact".into())])),
            None
        );
        assert_eq!(
            TmsMsg::from_value(&Value::List(vec![
                Value::Str("assume".into()),
                Value::Int(-1),
                Value::Int(0),
            ])),
            None
        );
    }
}
