//! # hope-tms — distributed truth maintenance on HOPE
//!
//! §7 of the paper proposes extending optimism "into new areas such as
//! truth maintenance systems \[12\]" (Doyle). This crate is that extension,
//! and it makes a tidy conceptual point: **a TMS justification network is
//! HOPE's dependency graph, and dependency-directed backtracking is HOPE
//! rollback.**
//!
//! * An *assumption* is an AID: a reasoner announces it, `guess`es it, and
//!   reasons onward; every fact derived from it — on any reasoner,
//!   anywhere in the gossip mesh — is automatically a causal descendant,
//!   because the runtime tags the fact messages.
//! * A *nogood* violation triggers `deny` on the chosen culprit; HOPE
//!   retracts every consequence everywhere (ghost-filtering the stale
//!   facts), and the re-executed `guess` returning `false` is precisely
//!   the TMS marking the assumption *out*.
//! * The judge's final `affirm`s settle the surviving assumptions so the
//!   distributed belief sets commit.
//!
//! See [`run_tms`] for the assembled system and
//! [`sequential_oracle`] for the classical single-machine equivalent used
//! in testing.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod driver;
mod judge;
mod logic;
mod protocol;
mod reasoner;

pub use driver::{run_tms, sequential_oracle, TmsOutcome};
pub use judge::{run_judge, JudgeConfig};
pub use logic::{Atom, KnowledgeBase, Nogood, Rule};
pub use protocol::TmsMsg;
pub use reasoner::{run_reasoner, ReasonerConfig};
