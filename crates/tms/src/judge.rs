//! The judge: nogood policing and belief revision by `deny`.
//!
//! The judge models the union of all *live* assumptions. A `Confirm`
//! message makes it causally dependent on the assumption (the message is
//! tagged with it), so when the closure of the live set violates a
//! nogood, denying the chosen culprit is a **definite** deny (Equation
//! 15's `X ∈ A.IDO` case) — it unwinds the judge itself along with every
//! reasoner downstream of the doomed assumption. Re-execution replays the
//! judge's history with the culprit's messages ghost-filtered away: the
//! judge's model is rebuilt *without* the retracted assumption, which is
//! exactly dependency-directed backtracking.

use std::collections::BTreeSet;

use hope_core::AidId;
use hope_runtime::{Ctx, Hope};
use hope_sim::VirtualDuration;

use crate::logic::{Atom, KnowledgeBase};
use crate::protocol::TmsMsg;

/// Configuration of the judge process.
#[derive(Debug, Clone)]
pub struct JudgeConfig {
    /// The shared knowledge base (rules and nogoods).
    pub kb: KnowledgeBase,
    /// Number of reasoners whose `Done` the judge awaits.
    pub reasoners: usize,
    /// Virtual CPU per processed message.
    pub step_time: VirtualDuration,
}

/// Run the judge; emits `live=<sorted atoms>` after settling everything.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_judge(ctx: &mut Ctx, cfg: &JudgeConfig) -> Hope<()> {
    // Live assumptions, in confirmation order (newest last).
    let mut live: Vec<(AidId, Atom)> = Vec::new();
    let mut done: usize = 0;

    while done < cfg.reasoners {
        let msg = ctx.recv()?;
        let Some(decoded) = TmsMsg::from_value(&msg.payload) else {
            continue;
        };
        ctx.compute(cfg.step_time)?;
        match decoded {
            TmsMsg::Announce { .. } => {
                // Bookkeeping only; the dependence arrives with Confirm.
            }
            TmsMsg::Confirm { aid, atom } => {
                live.push((aid, atom));
                // Police the nogoods over the closure of live assumptions.
                // One check suffices per confirm: a deny unwinds us, and
                // the re-execution (with the culprit's ghosts filtered)
                // re-checks as the confirms replay.
                let facts: BTreeSet<Atom> = live.iter().map(|(_, a)| *a).collect();
                let closed = cfg.kb.close(&facts);
                if let Some(violated) = cfg.kb.violated(&closed).cloned() {
                    // Chronological dependency-directed backtracking: the
                    // newest live assumption whose removal clears this
                    // nogood is the culprit.
                    // If every nogood atom is multiply supported, no single
                    // retraction clears it; retract the newest assumption
                    // and let the re-executed check continue (live shrinks
                    // monotonically, so this terminates).
                    let culprit = (0..live.len())
                        .rev()
                        .find(|&i| {
                            let without: BTreeSet<Atom> = live
                                .iter()
                                .enumerate()
                                .filter(|(j, _)| *j != i)
                                .map(|(_, (_, a))| *a)
                                .collect();
                            let closed = cfg.kb.close(&without);
                            !violated.atoms.iter().all(|a| closed.contains(a))
                        })
                        .unwrap_or(live.len() - 1);
                    let (aid, _) = live[culprit];
                    // Definite (we depend on it via the Confirm tag):
                    // unwinds us too — the `?` propagates the rollback and
                    // our re-execution rebuilds `live` without the ghosts.
                    ctx.deny(aid)?;
                    unreachable!("denying a confirmed assumption unwinds the judge");
                }
            }
            TmsMsg::Fact { .. } => {}
            TmsMsg::Done => done += 1,
        }
    }

    // Everything announced and never refuted survives: settle it so the
    // reasoners' speculative belief reports commit (the speculative
    // affirms collapse once every AID is decided — see hope-core's
    // engine docs on Equations 10–14).
    for (aid, _) in live.clone() {
        ctx.affirm(aid)?;
    }
    let atoms: BTreeSet<Atom> = live.iter().map(|(_, a)| *a).collect();
    let listed: Vec<String> = atoms.iter().map(u32::to_string).collect();
    ctx.output(format!("live={}", listed.join(",")))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn judge_config_shapes() {
        let cfg = JudgeConfig {
            kb: KnowledgeBase::default(),
            reasoners: 3,
            step_time: VirtualDuration::from_micros(5),
        };
        assert_eq!(cfg.reasoners, 3);
    }
}
