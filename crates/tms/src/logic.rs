//! Propositional machinery: atoms, Horn rules, nogoods, forward chaining.
//!
//! Deliberately tiny — the interesting dependency tracking lives in HOPE,
//! not here. Atoms are small integers; a [`KnowledgeBase`] is a rule set
//! plus a nogood set; [`KnowledgeBase::close`] computes the deductive
//! closure of a fact set.

use std::collections::BTreeSet;

/// A propositional atom.
pub type Atom = u32;

/// A Horn rule: if every atom in `body` holds, `head` holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// Antecedents (all required).
    pub body: Vec<Atom>,
    /// Consequent.
    pub head: Atom,
}

/// A set of atoms that must not all hold simultaneously.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nogood {
    /// The mutually inconsistent atoms.
    pub atoms: Vec<Atom>,
}

/// Rules plus integrity constraints.
#[derive(Debug, Clone, Default)]
pub struct KnowledgeBase {
    /// Horn rules.
    pub rules: Vec<Rule>,
    /// Integrity constraints.
    pub nogoods: Vec<Nogood>,
}

impl KnowledgeBase {
    /// Build from `(body, head)` rule tuples and nogood atom lists.
    pub fn new(rules: &[(&[Atom], Atom)], nogoods: &[&[Atom]]) -> Self {
        KnowledgeBase {
            rules: rules
                .iter()
                .map(|(body, head)| Rule {
                    body: body.to_vec(),
                    head: *head,
                })
                .collect(),
            nogoods: nogoods
                .iter()
                .map(|atoms| Nogood {
                    atoms: atoms.to_vec(),
                })
                .collect(),
        }
    }

    /// Deductive closure of `facts` under the rules.
    pub fn close(&self, facts: &BTreeSet<Atom>) -> BTreeSet<Atom> {
        let mut out = facts.clone();
        loop {
            let mut grew = false;
            for r in &self.rules {
                if !out.contains(&r.head) && r.body.iter().all(|a| out.contains(a)) {
                    out.insert(r.head);
                    grew = true;
                }
            }
            if !grew {
                return out;
            }
        }
    }

    /// The first violated nogood in `facts`, if any (deterministic order).
    pub fn violated(&self, facts: &BTreeSet<Atom>) -> Option<&Nogood> {
        self.nogoods
            .iter()
            .find(|n| n.atoms.iter().all(|a| facts.contains(a)))
    }

    /// `true` if `facts` is deductively closed.
    pub fn is_closed(&self, facts: &BTreeSet<Atom>) -> bool {
        self.close(facts) == *facts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kb() -> KnowledgeBase {
        KnowledgeBase::new(
            &[(&[1, 2], 10), (&[10], 11), (&[3], 12)],
            &[&[11, 12], &[1, 4]],
        )
    }

    #[test]
    fn closure_chains_rules() {
        let kb = kb();
        let facts: BTreeSet<Atom> = [1, 2].into();
        let closed = kb.close(&facts);
        assert_eq!(closed, [1, 2, 10, 11].into());
        assert!(kb.is_closed(&closed));
        assert!(!kb.is_closed(&facts));
    }

    #[test]
    fn violations_detected_in_order() {
        let kb = kb();
        let ok: BTreeSet<Atom> = [1, 2, 10, 11].into();
        assert!(kb.violated(&ok).is_none());
        let bad = kb.close(&[1, 2, 3].into());
        let v = kb.violated(&bad).expect("11 and 12 both derived");
        assert_eq!(v.atoms, vec![11, 12]);
        let bad2: BTreeSet<Atom> = [1, 4].into();
        assert_eq!(kb.violated(&bad2).unwrap().atoms, vec![1, 4]);
    }

    #[test]
    fn empty_kb_is_inert() {
        let kb = KnowledgeBase::default();
        let facts: BTreeSet<Atom> = [5].into();
        assert_eq!(kb.close(&facts), facts);
        assert!(kb.violated(&facts).is_none());
    }
}
