//! Whole-system driver: spawn reasoners + judge, run, decode the verdict.

use std::collections::BTreeSet;

use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation};
use hope_sim::{Topology, VirtualDuration};

use crate::judge::{run_judge, JudgeConfig};
use crate::logic::{Atom, KnowledgeBase};
use crate::reasoner::{run_reasoner, ReasonerConfig};

/// Result of a distributed TMS run.
#[derive(Debug)]
pub struct TmsOutcome {
    /// Assumptions that survived the judge (committed).
    pub live: BTreeSet<Atom>,
    /// Each reasoner's committed belief set (index = spawn order).
    pub beliefs: Vec<BTreeSet<Atom>>,
    /// The raw simulation report.
    pub report: RunReport,
}

/// Run a TMS over `kb` with one reasoner per assumption list.
pub fn run_tms(
    kb: &KnowledgeBase,
    assumption_lists: &[Vec<Atom>],
    topology: Topology,
    seed: u64,
) -> TmsOutcome {
    let n = assumption_lists.len();
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topology));
    let judge_pid = ProcessId(n as u32);
    let max_rounds = assumption_lists.iter().map(Vec::len).max().unwrap_or(0) as u64;
    for (i, assumptions) in assumption_lists.iter().enumerate() {
        let peers: Vec<ProcessId> = (0..n as u32)
            .filter(|&p| p as usize != i)
            .map(ProcessId)
            .collect();
        let cfg = ReasonerConfig {
            judge: judge_pid,
            peers,
            kb: kb.clone(),
            assumptions: assumptions.clone(),
            extra_rounds: max_rounds + 2, // let gossip settle
            // Rounds must outlast the links or facts never land between
            // rounds; 5ms covers every topology the tests and benches use.
            round_time: VirtualDuration::from_millis(5),
        };
        sim.spawn(format!("reasoner{i}"), move |ctx| run_reasoner(ctx, &cfg));
    }
    let jcfg = JudgeConfig {
        kb: kb.clone(),
        reasoners: n,
        step_time: VirtualDuration::from_micros(50),
    };
    sim.spawn("judge", move |ctx| run_judge(ctx, &jcfg));
    let report = sim.run();

    let mut live = BTreeSet::new();
    let mut beliefs = vec![BTreeSet::new(); n];
    for o in report.outputs() {
        if let Some(rest) = o.line.strip_prefix("live=") {
            live = parse_atoms(rest);
        } else if let Some(rest) = o.line.strip_prefix("beliefs=") {
            let idx = o.process.0 as usize;
            if idx < n {
                beliefs[idx] = parse_atoms(rest);
            }
        }
    }
    TmsOutcome {
        live,
        beliefs,
        report,
    }
}

fn parse_atoms(s: &str) -> BTreeSet<Atom> {
    s.split(',')
        .filter(|t| !t.is_empty())
        .filter_map(|t| t.parse().ok())
        .collect()
}

/// The sequential oracle: chronological assumption-based backtracking over
/// one global assumption order. Used by tests to sanity-check the shape of
/// distributed verdicts (exact equality is only guaranteed when the
/// distributed confirmation order matches `order`).
pub fn sequential_oracle(kb: &KnowledgeBase, order: &[Atom]) -> BTreeSet<Atom> {
    let mut live: Vec<Atom> = Vec::new();
    for &atom in order {
        live.push(atom);
        loop {
            let facts: BTreeSet<Atom> = live.iter().copied().collect();
            let closed = kb.close(&facts);
            let Some(violated) = kb.violated(&closed).cloned() else {
                break;
            };
            let culprit = (0..live.len())
                .rev()
                .find(|&i| {
                    let without: BTreeSet<Atom> = live
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| *j != i)
                        .map(|(_, a)| *a)
                        .collect();
                    let closed = kb.close(&without);
                    !violated.atoms.iter().all(|a| closed.contains(a))
                })
                .unwrap_or(live.len() - 1);
            live.remove(culprit);
        }
    }
    live.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_sim::LatencyModel;

    fn topo() -> Topology {
        Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(1)))
    }

    /// Rules: 1∧2→10, 10→11, 3→12; nogoods: {11,12}, {1,4}.
    fn kb() -> KnowledgeBase {
        KnowledgeBase::new(
            &[(&[1, 2], 10), (&[10], 11), (&[3], 12)],
            &[&[11, 12], &[1, 4]],
        )
    }

    #[test]
    fn consistent_assumptions_all_survive() {
        let out = run_tms(&kb(), &[vec![1], vec![2]], topo(), 5);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert_eq!(out.live, [1, 2].into());
        // Both reasoners eventually believe the closure {1,2,10,11}.
        for (i, b) in out.beliefs.iter().enumerate() {
            assert_eq!(b, &BTreeSet::from([1, 2, 10, 11]), "reasoner {i}");
        }
        assert_eq!(out.report.stats().rollback_events, 0);
    }

    #[test]
    fn contradiction_across_reasoners_is_revised() {
        // Reasoner 0 assumes 1 and 2 (⇒ 11); reasoner 1 assumes 3 (⇒ 12).
        // {11, 12} is nogood: the judge retracts the newest culpable
        // assumption and the system settles nogood-free.
        let out = run_tms(&kb(), &[vec![1, 2], vec![3]], topo(), 5);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert!(out.report.stats().rollback_events > 0, "{}", out.report);
        // The judge's live set is consistent…
        let closed = kb().close(&out.live);
        assert!(kb().violated(&closed).is_none(), "live={:?}", out.live);
        // …and not everything survived.
        assert!(out.live.len() < 3, "live={:?}", out.live);
        // Every committed belief set is nogood-free and within the live
        // closure.
        for (i, b) in out.beliefs.iter().enumerate() {
            assert!(kb().violated(b).is_none(), "reasoner {i}: {b:?}");
            assert!(b.is_subset(&closed), "reasoner {i}: {b:?} ⊄ {closed:?}");
        }
    }

    #[test]
    fn direct_nogood_between_two_reasoners() {
        // {1, 4} is nogood; whichever confirms second is retracted.
        let out = run_tms(&kb(), &[vec![1], vec![4]], topo(), 5);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        assert_eq!(out.live.len(), 1, "live={:?}", out.live);
        assert!(out.report.stats().rollback_events > 0);
        for b in &out.beliefs {
            assert!(kb().violated(b).is_none(), "{b:?}");
        }
    }

    #[test]
    fn matches_sequential_oracle_for_single_reasoner() {
        // One reasoner ⇒ confirmation order == assumption order ⇒ the
        // distributed verdict equals the sequential oracle's.
        let order = vec![1, 2, 3, 4];
        let out = run_tms(&kb(), std::slice::from_ref(&order), topo(), 5);
        assert!(out.report.errors().is_empty(), "{}", out.report);
        let oracle = sequential_oracle(&kb(), &order);
        assert_eq!(out.live, oracle, "{}", out.report);
        assert_eq!(out.beliefs[0], kb().close(&oracle));
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_tms(&kb(), &[vec![1, 2], vec![3, 4]], topo(), 9);
        let b = run_tms(&kb(), &[vec![1, 2], vec![3, 4]], topo(), 9);
        assert_eq!(a.live, b.live);
        assert_eq!(a.beliefs, b.beliefs);
        assert_eq!(
            a.report.stats().rollback_events,
            b.report.stats().rollback_events
        );
    }

    #[test]
    fn oracle_handles_multiply_supported_nogoods() {
        // a→x, b→x, nogood {x}: removing either alone does not clear it.
        let kb = KnowledgeBase::new(&[(&[1], 10), (&[2], 10)], &[&[10]]);
        let live = sequential_oracle(&kb, &[1, 2]);
        assert!(kb.violated(&kb.close(&live)).is_none(), "{live:?}");
    }
}
