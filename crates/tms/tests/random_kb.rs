//! Property tests: distributed truth maintenance over random knowledge
//! bases must always settle to a consistent, committed world.

use std::collections::BTreeSet;

use hope_sim::{LatencyModel, Topology, VirtualDuration};
use hope_tms::{run_tms, KnowledgeBase, Nogood, Rule};
use proptest::prelude::*;

const ASSUMABLE: u32 = 6; // atoms 1..=6 are assumable
const DERIVED: u32 = 6; // atoms 7..=12 are derivable heads

fn atom() -> impl Strategy<Value = u32> {
    1..=(ASSUMABLE + DERIVED)
}

fn rule() -> impl Strategy<Value = Rule> {
    (
        proptest::collection::vec(atom(), 1..3),
        (ASSUMABLE + 1)..=(ASSUMABLE + DERIVED),
    )
        .prop_map(|(body, head)| Rule { body, head })
}

fn nogood() -> impl Strategy<Value = Nogood> {
    proptest::collection::btree_set(atom(), 2..4).prop_map(|atoms| Nogood {
        atoms: atoms.into_iter().collect(),
    })
}

fn kb() -> impl Strategy<Value = KnowledgeBase> {
    (
        proptest::collection::vec(rule(), 0..6),
        proptest::collection::vec(nogood(), 0..4),
    )
        .prop_map(|(rules, nogoods)| KnowledgeBase { rules, nogoods })
}

fn assumption_lists() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(
        proptest::collection::vec(1..=ASSUMABLE, 0..4),
        1..3, // 1–2 reasoners
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn committed_worlds_are_consistent(
        kb in kb(),
        lists in assumption_lists(),
        seed in 0u64..32,
    ) {
        let topo = Topology::uniform(LatencyModel::Fixed(
            VirtualDuration::from_millis(1),
        ));
        let out = run_tms(&kb, &lists, topo, seed);
        prop_assert!(out.report.errors().is_empty(), "{}", out.report);
        // The judge's live set is consistent under the rules.
        let closed = kb.close(&out.live);
        prop_assert!(
            kb.violated(&closed).is_none(),
            "live={:?} violates a nogood",
            out.live
        );
        // Live assumptions were actually assumable and were requested.
        let requested: BTreeSet<u32> = lists.iter().flatten().copied().collect();
        prop_assert!(out.live.iter().all(|a| requested.contains(a)));
        // Every committed belief set is nogood-free and inside the live
        // closure.
        for (i, b) in out.beliefs.iter().enumerate() {
            prop_assert!(kb.violated(b).is_none(), "reasoner {i}: {b:?}");
            prop_assert!(
                b.is_subset(&closed),
                "reasoner {i}: {b:?} ⊄ {closed:?}"
            );
        }
    }

    #[test]
    fn runs_are_deterministic(
        kb in kb(),
        lists in assumption_lists(),
        seed in 0u64..8,
    ) {
        let topo = Topology::uniform(LatencyModel::Fixed(
            VirtualDuration::from_millis(1),
        ));
        let a = run_tms(&kb, &lists, topo.clone(), seed);
        let b = run_tms(&kb, &lists, topo, seed);
        prop_assert_eq!(&a.live, &b.live);
        prop_assert_eq!(&a.beliefs, &b.beliefs);
        prop_assert_eq!(
            a.report.stats().rollback_events,
            b.report.stats().rollback_events
        );
    }
}
