//! Offline stand-in for [`criterion`](https://docs.rs/criterion), covering
//! exactly the API surface this workspace's benches use.
//!
//! The container this repository builds in has no registry access, so the
//! real crate cannot be fetched. This shim keeps every `benches/*.rs`
//! target compiling and runnable: it times each benchmark with
//! [`std::time::Instant`] over a fixed number of iterations and prints a
//! `name ... median time` line. There are no statistical refinements
//! (warm-up phases, outlier analysis, HTML reports) — the shim exists so
//! `cargo bench` still produces comparable numbers offline and so bench
//! code cannot rot.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched
/// work. Delegates to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How batched inputs are sized in [`Bencher::iter_batched`]. The shim
/// runs one input per measured call regardless of the variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// A benchmark identifier: a function name plus a parameter rendering.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to every benchmark closure; runs and times the workload.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples;
    }

    /// Time `routine` over inputs built by `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
        self.iters = self.samples;
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many iterations each benchmark runs (criterion's sample
    /// count; the shim uses it directly as the iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1) as u64;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = self.samples;
        let name = format!("{}/{}", self.name, id);
        run_one(&name, samples, f);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let samples = self.samples;
        let name = format!("{}/{}", self.name, id);
        run_one(&name, samples, |b| f(b, input));
        self
    }

    /// Finish the group (purely cosmetic in the shim).
    pub fn finish(&mut self) {}
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _criterion: self,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, f);
        self
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: u64, mut f: F) {
    let mut bencher = Bencher {
        samples,
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut bencher);
    let per_iter = if bencher.iters == 0 {
        Duration::ZERO
    } else {
        bencher.elapsed / (bencher.iters as u32)
    };
    println!(
        "bench: {name:<60} {per_iter:>12.3?}/iter ({} iters)",
        bencher.iters
    );
}

/// Declare the benchmark functions a bench target runs.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench target's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.bench_function("iter", |b| b.iter(|| 21 * 2));
        g.bench_with_input(BenchmarkId::new("with_input", 5), &5u64, |b, &n| {
            b.iter_batched(|| n, |x| x + 1, BatchSize::SmallInput);
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
    }
}
