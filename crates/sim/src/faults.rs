//! Deterministic fault injection: seeded link and process faults.
//!
//! A [`FaultPlan`] is a *schedule*, not a random process: given the same
//! plan (seed included) and the same sequence of queries, it produces the
//! same faults, so a faulty run of a deterministic simulation is
//! bit-identical under replay. Link faults (drop, duplication, delay
//! spikes) are drawn from the plan's own [`SimRng`] stream — one fixed
//! number of draws per query, so adding a fault class never perturbs the
//! others — while partitions and process kills are explicit windows and
//! step numbers, deterministic by construction.
//!
//! The plan is policy only. The runtime decides *mechanism*: what a
//! dropped delivery or a killed process means for the semantics engine
//! (ghosts, rollback, journal-prefix replay) lives in `hope-runtime`.

use crate::rng::SimRng;
use crate::time::{VirtualDuration, VirtualTime};
use crate::topology::NodeId;

/// What the plan decided about one attempted message delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkVerdict {
    /// Deliver the message, possibly late and possibly twice.
    Deliver {
        /// Extra latency added on top of the topology's sample
        /// (`VirtualDuration::ZERO` when no spike fired).
        extra_delay: VirtualDuration,
        /// Deliver a second copy of the message as well.
        duplicate: bool,
    },
    /// Lose the message entirely.
    Drop,
}

/// A temporary partition window: deliveries crossing the cut are dropped
/// for `from <= now < until`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// One side of the cut.
    pub a: NodeId,
    /// The other side; `None` isolates `a` from *every* other node.
    pub b: Option<NodeId>,
    /// First instant at which the cut is in force.
    pub from: VirtualTime,
    /// First instant at which the cut has healed.
    pub until: VirtualTime,
}

impl Partition {
    /// `true` if a message `src -> dst` sent at `now` crosses the cut.
    pub fn blocks(&self, src: NodeId, dst: NodeId, now: VirtualTime) -> bool {
        if now < self.from || now >= self.until {
            return false;
        }
        match self.b {
            Some(b) => (src == self.a && dst == b) || (src == b && dst == self.a),
            None => src == self.a || dst == self.a,
        }
    }
}

/// A scheduled process kill: the process on `node` is crashed just before
/// the `at_step`-th scheduler event is dispatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// The victim (runtime process ids double as node ids).
    pub node: NodeId,
    /// 1-based scheduler event count at which the kill fires.
    pub at_step: u64,
    /// If set, the process comes back after this much downtime and
    /// recovers from its surviving journal prefix; if `None` the crash is
    /// permanent.
    pub restart_after: Option<VirtualDuration>,
}

/// A seeded, deterministic schedule of link and process faults.
///
/// Construct with [`FaultPlan::new`] and layer faults on with the builder
/// methods; the zero plan injects nothing (but still consumes its RNG
/// draws, so toggling one fault class does not reshuffle another).
///
/// # Examples
///
/// ```
/// use hope_sim::{FaultPlan, SimRng, VirtualDuration, VirtualTime};
///
/// let plan = FaultPlan::new(7)
///     .drop_rate(0.1)
///     .dupe_rate(0.05)
///     .delay_spikes(0.2, VirtualDuration::from_millis(3))
///     .partition_between(0, 1, VirtualTime::from_nanos(0), VirtualTime::from_nanos(100))
///     .kill(2, 40, Some(VirtualDuration::from_millis(5)));
///
/// // Same plan + same rng stream + same queries => same verdicts.
/// let mut a = SimRng::new(plan.seed()).fork(1);
/// let mut b = SimRng::new(plan.seed()).fork(1);
/// let t = VirtualTime::from_nanos(500);
/// assert_eq!(plan.verdict(0, 1, t, &mut a), plan.verdict(0, 1, t, &mut b));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_rate: f64,
    dupe_rate: f64,
    delay_rate: f64,
    delay_spike: VirtualDuration,
    partitions: Vec<Partition>,
    kills: Vec<Kill>,
}

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_rate: 0.0,
            dupe_rate: 0.0,
            delay_rate: 0.0,
            delay_spike: VirtualDuration::ZERO,
            partitions: Vec::new(),
            kills: Vec::new(),
        }
    }

    /// The plan's seed (feeds the runtime's dedicated fault RNG stream).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Drop each delivery independently with probability `p`.
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.drop_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Duplicate each (surviving) delivery with probability `p`.
    pub fn dupe_rate(mut self, p: f64) -> Self {
        self.dupe_rate = p.clamp(0.0, 1.0);
        self
    }

    /// With probability `p`, add `spike` of extra latency to a delivery.
    pub fn delay_spikes(mut self, p: f64, spike: VirtualDuration) -> Self {
        self.delay_rate = p.clamp(0.0, 1.0);
        self.delay_spike = spike;
        self
    }

    /// Cut the (bidirectional) link between `a` and `b` for
    /// `from <= now < until`.
    pub fn partition_between(
        mut self,
        a: NodeId,
        b: NodeId,
        from: VirtualTime,
        until: VirtualTime,
    ) -> Self {
        self.partitions.push(Partition {
            a,
            b: Some(b),
            from,
            until,
        });
        self
    }

    /// Isolate `node` from every other node for `from <= now < until`.
    pub fn isolate(mut self, node: NodeId, from: VirtualTime, until: VirtualTime) -> Self {
        self.partitions.push(Partition {
            a: node,
            b: None,
            from,
            until,
        });
        self
    }

    /// Crash the process on `node` just before the `at_step`-th scheduler
    /// event (1-based); with `restart_after` set it recovers after that
    /// much downtime.
    pub fn kill(
        mut self,
        node: NodeId,
        at_step: u64,
        restart_after: Option<VirtualDuration>,
    ) -> Self {
        self.kills.push(Kill {
            node,
            at_step,
            restart_after,
        });
        self
    }

    /// The configured partition windows.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// The configured kill schedule.
    pub fn kills(&self) -> &[Kill] {
        &self.kills
    }

    /// Kills scheduled to fire just before scheduler event `step`.
    pub fn kills_at(&self, step: u64) -> impl Iterator<Item = &Kill> {
        self.kills.iter().filter(move |k| k.at_step == step)
    }

    /// `true` if the plan can inject anything at all.
    pub fn is_zero(&self) -> bool {
        self.drop_rate == 0.0
            && self.dupe_rate == 0.0
            && self.delay_rate == 0.0
            && self.partitions.is_empty()
            && self.kills.is_empty()
    }

    /// Decide the fate of one `src -> dst` delivery attempted at `now`.
    ///
    /// Always consumes exactly three draws from `rng` (drop, dupe, delay),
    /// whether or not the corresponding rate is zero and even when a
    /// partition already doomed the message — so the verdict stream for
    /// every later delivery is unperturbed by the rates chosen for earlier
    /// ones. This is what makes two runs of the same plan bit-identical.
    pub fn verdict(
        &self,
        src: NodeId,
        dst: NodeId,
        now: VirtualTime,
        rng: &mut SimRng,
    ) -> LinkVerdict {
        let dropped = rng.chance(self.drop_rate);
        let duplicate = rng.chance(self.dupe_rate);
        let spiked = rng.chance(self.delay_rate);
        if self.partitions.iter().any(|p| p.blocks(src, dst, now)) || dropped {
            return LinkVerdict::Drop;
        }
        LinkVerdict::Deliver {
            extra_delay: if spiked {
                self.delay_spike
            } else {
                VirtualDuration::ZERO
            },
            duplicate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> VirtualTime {
        VirtualTime::from_nanos(ns)
    }

    #[test]
    fn zero_plan_always_delivers_cleanly() {
        let plan = FaultPlan::new(1);
        assert!(plan.is_zero());
        let mut rng = SimRng::new(plan.seed()).fork(9);
        for i in 0..100 {
            assert_eq!(
                plan.verdict(0, 1, at(i), &mut rng),
                LinkVerdict::Deliver {
                    extra_delay: VirtualDuration::ZERO,
                    duplicate: false
                }
            );
        }
    }

    #[test]
    fn verdicts_are_reproducible_per_seed() {
        let plan = FaultPlan::new(33)
            .drop_rate(0.3)
            .dupe_rate(0.2)
            .delay_spikes(0.25, VirtualDuration::from_millis(2));
        let run = || {
            let mut rng = SimRng::new(plan.seed()).fork(4);
            (0..200)
                .map(|i| plan.verdict(i % 3, (i + 1) % 3, at(i as u64), &mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
        let verdicts = run();
        assert!(verdicts.contains(&LinkVerdict::Drop));
        assert!(verdicts.iter().any(|v| matches!(
            v,
            LinkVerdict::Deliver {
                duplicate: true,
                ..
            }
        )));
        assert!(verdicts.iter().any(
            |v| matches!(v, LinkVerdict::Deliver { extra_delay, .. } if !extra_delay.is_zero())
        ));
    }

    #[test]
    fn rates_do_not_perturb_each_others_draws() {
        // Same seed, drop rate toggled: the *dupe* decisions must be
        // identical because every verdict consumes a fixed number of draws.
        let base = FaultPlan::new(5).dupe_rate(0.5);
        let with_drops = base.clone().drop_rate(0.0); // same draws, same stream
        let mut r1 = SimRng::new(5).fork(0);
        let mut r2 = SimRng::new(5).fork(0);
        for i in 0..50 {
            let a = base.verdict(0, 1, at(i), &mut r1);
            let b = with_drops.verdict(0, 1, at(i), &mut r2);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn partition_blocks_both_directions_within_window() {
        let plan = FaultPlan::new(0).partition_between(0, 1, at(10), at(20));
        let mut rng = SimRng::new(0);
        assert_eq!(plan.verdict(0, 1, at(15), &mut rng), LinkVerdict::Drop);
        assert_eq!(plan.verdict(1, 0, at(19), &mut rng), LinkVerdict::Drop);
        assert!(matches!(
            plan.verdict(0, 1, at(9), &mut rng),
            LinkVerdict::Deliver { .. }
        ));
        assert!(matches!(
            plan.verdict(0, 1, at(20), &mut rng),
            LinkVerdict::Deliver { .. }
        ));
        // An unrelated pair is unaffected.
        assert!(matches!(
            plan.verdict(2, 3, at(15), &mut rng),
            LinkVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn isolation_cuts_every_link_of_the_node() {
        let plan = FaultPlan::new(0).isolate(2, at(0), at(100));
        let mut rng = SimRng::new(0);
        assert_eq!(plan.verdict(2, 0, at(5), &mut rng), LinkVerdict::Drop);
        assert_eq!(plan.verdict(1, 2, at(5), &mut rng), LinkVerdict::Drop);
        assert!(matches!(
            plan.verdict(0, 1, at(5), &mut rng),
            LinkVerdict::Deliver { .. }
        ));
    }

    #[test]
    fn kill_schedule_is_queryable_by_step() {
        let plan = FaultPlan::new(0)
            .kill(1, 40, None)
            .kill(2, 40, Some(VirtualDuration::from_millis(1)))
            .kill(1, 90, None);
        assert_eq!(plan.kills().len(), 3);
        let at40: Vec<_> = plan.kills_at(40).collect();
        assert_eq!(at40.len(), 2);
        assert_eq!(at40[0].node, 1);
        assert_eq!(at40[1].restart_after, Some(VirtualDuration::from_millis(1)));
        assert_eq!(plan.kills_at(41).count(), 0);
    }
}
