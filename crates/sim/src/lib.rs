//! # hope-sim — a deterministic distributed-system substrate
//!
//! The HOPE prototype (§7 of the paper) ran on PVM: real UNIX processes on
//! a real network. A reproduction needs results that are stable across
//! machines, so this crate substitutes PVM with a *deterministic
//! discrete-event simulation substrate*: virtual time ([`VirtualTime`],
//! [`VirtualDuration`]), per-link latency models ([`LatencyModel`],
//! [`Topology`]), a CPU model for the paper's §3.1 instruction arithmetic
//! ([`CpuModel`]), seeded randomness ([`SimRng`]) and a deterministic event
//! queue ([`EventQueue`]).
//!
//! `hope-runtime` builds the actual process/scheduler machinery on these
//! parts; this crate has no dependency on the semantics engine and is
//! reusable for any message-passing simulation.
//!
//! ## Example
//!
//! ```
//! use hope_sim::{CpuModel, LatencyModel, SimRng, Topology, VirtualDuration};
//!
//! // The paper's setting: coast-to-coast links, a 100 MIPS CPU.
//! let topo = Topology::coast_to_coast();
//! let cpu = CpuModel::mips(100);
//! let mut rng = SimRng::new(42);
//!
//! let one_way = topo.sample(0, 1, &mut rng);
//! assert_eq!(one_way, VirtualDuration::from_millis(15));
//! // Instructions wasted waiting for one round trip:
//! assert_eq!(cpu.instructions_in(one_way * 2), 3_000_000);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod faults;
mod latency;
mod rng;
mod time;
mod topology;

pub use event::EventQueue;
pub use faults::{FaultPlan, Kill, LinkVerdict, Partition};
pub use latency::{CpuModel, LatencyModel};
pub use rng::{drain_permutation, SimRng};
pub use time::{VirtualDuration, VirtualTime};
pub use topology::{NodeId, Topology};
