//! A deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in virtual time break by
//! insertion order, which makes every simulation run a pure function of its
//! inputs — the property the whole experiment suite rests on.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::VirtualTime;

/// A min-heap of timestamped events with deterministic tie-breaking.
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: VirtualTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time`. Returns the event's sequence number
    /// (unique per queue, usable as a cancellation epoch).
    pub fn push(&mut self, time: VirtualTime, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { time, seq, payload }));
        seq
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(VirtualTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.payload))
    }

    /// The timestamp of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<VirtualTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Enumerate every pending event as `(time, seq, payload)` in
    /// deterministic `(time, seq)` order, without removing anything.
    ///
    /// This is the model checker's view of a scheduler choice point: the
    /// full ready set, not just the earliest entry. Costs a sort per call,
    /// so production paths never use it — only oracle-driven runs do.
    pub fn pending_sorted(&self) -> Vec<(VirtualTime, u64, &T)> {
        let mut entries: Vec<&Entry<T>> = self.heap.iter().map(|Reverse(e)| e).collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        entries
            .iter()
            .map(|e| (e.time, e.seq, &e.payload))
            .collect()
    }

    /// Remove and return the event with sequence number `seq`, if pending.
    ///
    /// O(n) heap rebuild — acceptable because only oracle-driven
    /// (model-checking) runs pick non-earliest events.
    pub fn remove_by_seq(&mut self, seq: u64) -> Option<(VirtualTime, T)> {
        let mut found = None;
        let drained = std::mem::take(&mut self.heap);
        for Reverse(e) in drained {
            if e.seq == seq && found.is_none() {
                found = Some((e.time, e.payload));
            } else {
                self.heap.push(Reverse(e));
            }
        }
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::VirtualDuration;

    fn t(ms: u64) -> VirtualTime {
        VirtualTime::ZERO + VirtualDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((t(1), "a")));
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(t(2), 1);
        q.push(t(2), 2);
        q.push(t(2), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(9), ());
        assert_eq!(q.peek_time(), Some(t(9)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn sequence_numbers_are_unique() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), ());
        let b = q.push(t(1), ());
        assert_ne!(a, b);
    }

    #[test]
    fn pending_sorted_lists_without_removing() {
        let mut q = EventQueue::new();
        let c = q.push(t(5), "c");
        let a = q.push(t(1), "a");
        let b = q.push(t(3), "b");
        let listed: Vec<(VirtualTime, u64, &&str)> = q.pending_sorted();
        assert_eq!(
            listed,
            vec![(t(1), a, &"a"), (t(3), b, &"b"), (t(5), c, &"c")]
        );
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn remove_by_seq_plucks_one_event() {
        let mut q = EventQueue::new();
        q.push(t(5), "c");
        let a = q.push(t(1), "a");
        q.push(t(3), "b");
        assert_eq!(q.remove_by_seq(a), Some((t(1), "a")));
        assert_eq!(q.remove_by_seq(a), None);
        assert_eq!(q.pop(), Some((t(3), "b")));
        assert_eq!(q.pop(), Some((t(5), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn remove_by_seq_agrees_with_pop_order() {
        let mut q = EventQueue::new();
        for i in 0..10u64 {
            q.push(t(10 - i % 3), i);
        }
        loop {
            let head = q
                .pending_sorted()
                .first()
                .map(|&(time, seq, _)| (time, seq));
            let Some((time, seq)) = head else { break };
            let removed = q.remove_by_seq(seq).expect("listed event is pending");
            assert_eq!(removed.0, time);
        }
        assert!(q.is_empty());
    }
}
