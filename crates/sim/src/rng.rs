//! Deterministic randomness for simulations.
//!
//! Every source of randomness in a simulation flows from one master seed so
//! that runs are exactly reproducible. [`SimRng`] is a self-contained
//! SplitMix64 generator (the same construction `hope-core`'s program
//! generator uses) and adds [`fork`](SimRng::fork) to derive independent,
//! stable sub-streams (one per network link, one per process, …) without
//! the sub-streams perturbing each other's draw sequences. Being
//! dependency-free keeps the whole workspace buildable with no registry
//! access.

/// A seeded random-number generator for simulation components.
///
/// SplitMix64: tiny, fast, and statistically strong enough for simulation
/// workloads (it is the generator used to seed xoshiro/xoroshiro family
/// generators). Every draw advances a 64-bit counter state by a Weyl
/// constant and mixes it, so streams never short-cycle.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
    seed: u64,
}

impl SimRng {
    /// Create a generator from a master seed.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed, seed }
    }

    /// The seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent sub-stream keyed by `stream`. Deterministic:
    /// the same `(seed, stream)` always yields the same sequence, and
    /// drawing from a fork does not affect the parent.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix-style mix of seed and stream id.
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream.wrapping_mul(0xD129_0D3B_3F6C_4B7B));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::new(z ^ (z >> 31))
    }

    /// A uniformly random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 high-quality bits → the unit interval, the standard recipe.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire): uniform without modulo bias.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(span as u128);
        let mut l = m as u64;
        if l < span {
            let t = span.wrapping_neg() % span;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(span as u128);
                l = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        self.range_u64(0, n as u64) as usize
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p.clamp(0.0, 1.0)
    }

    /// An exponentially distributed `f64` with the given mean.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not finite and positive.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        let u: f64 = 1.0 - self.next_f64(); // in (0, 1]
        -mean * u.ln()
    }
}

/// A seeded uniform permutation of `0..n` (Fisher–Yates), for deterministic
/// shard-drain ordering: the sharded engine's quiescent-point drain takes a
/// destination-shard order, and a simulation that randomizes it must do so
/// reproducibly from its master seed so the same seed replays the same run
/// bit-for-bit.
pub fn drain_permutation(rng: &mut SimRng, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.index(i + 1);
        perm.swap(i, j);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_stable_and_independent() {
        let parent = SimRng::new(42);
        let mut f1 = parent.fork(1);
        let mut f1_again = parent.fork(1);
        let mut f2 = parent.fork(2);
        let s1: Vec<u64> = (0..8).map(|_| f1.next_u64()).collect();
        let s1b: Vec<u64> = (0..8).map(|_| f1_again.next_u64()).collect();
        let s2: Vec<u64> = (0..8).map(|_| f2.next_u64()).collect();
        assert_eq!(s1, s1b);
        assert_ne!(s1, s2);
    }

    #[test]
    fn range_and_index_respect_bounds() {
        let mut r = SimRng::new(1);
        for _ in 0..100 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = r.index(5);
            assert!(i < 5);
        }
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut r = SimRng::new(9);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
        assert!(!r.chance(-1.0)); // clamped
    }

    #[test]
    fn exponential_mean_is_plausible() {
        let mut r = SimRng::new(123);
        let n = 20_000;
        let mean = 5.0;
        let total: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - mean).abs() < 0.2,
            "sample mean {sample_mean}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        SimRng::new(1).range_u64(5, 5);
    }

    #[test]
    fn drain_permutation_is_a_seeded_permutation() {
        let mut r1 = SimRng::new(77);
        let mut r2 = SimRng::new(77);
        let p1 = drain_permutation(&mut r1, 8);
        let p2 = drain_permutation(&mut r2, 8);
        assert_eq!(p1, p2, "same seed, same order");
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
        assert!(drain_permutation(&mut r1, 0).is_empty());
        assert_eq!(drain_permutation(&mut r1, 1), vec![0]);
        // Different seeds eventually shuffle differently.
        let mut r3 = SimRng::new(78);
        let distinct = (0..8).any(|_| drain_permutation(&mut r3, 8) != p1);
        assert!(distinct);
    }
}
