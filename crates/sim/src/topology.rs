//! Network topologies: which latency model governs each directed link.
//!
//! The HOPE prototype ran on PVM over a LAN; the paper's motivating
//! arithmetic is a WAN. A [`Topology`] assigns a [`LatencyModel`] to every
//! ordered pair of nodes, with a default and per-link overrides, so
//! experiments can model co-located workers talking to a remote server, a
//! uniform LAN, or anything in between.

use std::collections::HashMap;

use crate::latency::LatencyModel;
use crate::rng::SimRng;
use crate::time::VirtualDuration;

/// Node index within a topology (process ids map onto these 1:1 in the
/// runtime).
pub type NodeId = u32;

/// Per-link latency assignment.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    default: LatencyModel,
    overrides: HashMap<(NodeId, NodeId), LatencyModel>,
    /// Latency for a node sending to itself (local pipe); defaults to zero.
    self_latency: Option<LatencyModel>,
}

impl Topology {
    /// A uniform topology: every link uses `default`.
    pub fn uniform(default: LatencyModel) -> Self {
        Topology {
            default,
            overrides: HashMap::new(),
            self_latency: None,
        }
    }

    /// A uniform LAN (100 µs links).
    pub fn lan() -> Self {
        Topology::uniform(LatencyModel::lan())
    }

    /// The paper's WAN: 15 ms one-way links (30 ms RTT, §3.1).
    pub fn coast_to_coast() -> Self {
        Topology::uniform(LatencyModel::coast_to_coast())
    }

    /// Co-located processes: zero latency everywhere.
    pub fn local() -> Self {
        Topology::uniform(LatencyModel::zero())
    }

    /// Override the latency of the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, model: LatencyModel) -> &mut Self {
        self.overrides.insert((from, to), model);
        self
    }

    /// Override both directions between `a` and `b`.
    pub fn set_pair(&mut self, a: NodeId, b: NodeId, model: LatencyModel) -> &mut Self {
        self.overrides.insert((a, b), model.clone());
        self.overrides.insert((b, a), model);
        self
    }

    /// Override the self-send latency (defaults to zero).
    pub fn set_self_latency(&mut self, model: LatencyModel) -> &mut Self {
        self.self_latency = Some(model);
        self
    }

    /// The model governing `from → to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> &LatencyModel {
        if from == to {
            if let Some(m) = &self.self_latency {
                return m;
            }
            // A process messaging itself goes through a local pipe.
            const ZERO: LatencyModel = LatencyModel::Fixed(VirtualDuration::ZERO);
            return &ZERO;
        }
        self.overrides.get(&(from, to)).unwrap_or(&self.default)
    }

    /// Sample a latency for one message on `from → to`.
    pub fn sample(&self, from: NodeId, to: NodeId, rng: &mut SimRng) -> VirtualDuration {
        self.link(from, to).sample(rng)
    }

    /// The smallest latency any link can produce (global lookahead).
    pub fn min_latency(&self) -> VirtualDuration {
        self.overrides
            .values()
            .map(LatencyModel::min)
            .chain(std::iter::once(self.default.min()))
            .min()
            .unwrap_or(VirtualDuration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_links() {
        let t = Topology::coast_to_coast();
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(0, 1, &mut rng), VirtualDuration::from_millis(15));
        assert_eq!(t.sample(5, 9, &mut rng), VirtualDuration::from_millis(15));
    }

    #[test]
    fn self_send_is_free_by_default() {
        let t = Topology::coast_to_coast();
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(3, 3, &mut rng), VirtualDuration::ZERO);
    }

    #[test]
    fn self_latency_can_be_overridden() {
        let mut t = Topology::local();
        t.set_self_latency(LatencyModel::Fixed(VirtualDuration::from_micros(1)));
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(3, 3, &mut rng), VirtualDuration::from_micros(1));
    }

    #[test]
    fn link_override_is_directional() {
        let mut t = Topology::lan();
        t.set_link(0, 1, LatencyModel::Fixed(VirtualDuration::from_millis(9)));
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(0, 1, &mut rng), VirtualDuration::from_millis(9));
        assert_eq!(t.sample(1, 0, &mut rng), VirtualDuration::from_micros(100));
    }

    #[test]
    fn pair_override_covers_both_directions() {
        let mut t = Topology::lan();
        t.set_pair(0, 1, LatencyModel::Fixed(VirtualDuration::from_millis(2)));
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(0, 1, &mut rng), VirtualDuration::from_millis(2));
        assert_eq!(t.sample(1, 0, &mut rng), VirtualDuration::from_millis(2));
    }

    #[test]
    fn min_latency_scans_overrides() {
        let mut t = Topology::coast_to_coast();
        assert_eq!(t.min_latency(), VirtualDuration::from_millis(15));
        t.set_link(0, 1, LatencyModel::Fixed(VirtualDuration::from_micros(10)));
        assert_eq!(t.min_latency(), VirtualDuration::from_micros(10));
    }

    #[test]
    fn default_topology_is_lan() {
        let t = Topology::default();
        let mut rng = SimRng::new(1);
        assert_eq!(t.sample(0, 1, &mut rng), VirtualDuration::from_micros(100));
    }
}
