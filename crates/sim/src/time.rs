//! Virtual time: the clock of the simulated distributed system.
//!
//! The paper's performance argument (§3.1) is about *latency*: "the time
//! required to send a photon from New York to Los Angeles and back again is
//! 30 milliseconds. … A 100 MIPS CPU can execute over 3 million
//! instructions while waiting for a response from the opposite coast."
//! Reproducing that argument requires a clock that is independent of the
//! host machine; [`VirtualTime`] and [`VirtualDuration`] are that clock,
//! with nanosecond resolution in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time, in nanoseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtualDuration(u64);

impl VirtualTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: VirtualTime = VirtualTime(0);

    /// A time no event can reach; useful as an "infinite" horizon.
    pub const MAX: VirtualTime = VirtualTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed duration since `earlier`, saturating at zero.
    pub fn since(self, earlier: VirtualTime) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(earlier.0))
    }

    /// Fractional seconds since simulation start (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds since simulation start (for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl VirtualDuration {
    /// The zero-length duration.
    pub const ZERO: VirtualDuration = VirtualDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        VirtualDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        VirtualDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        VirtualDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, saturating on overflow and
    /// clamping negatives to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return VirtualDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            VirtualDuration(u64::MAX)
        } else {
            VirtualDuration(ns as u64)
        }
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// `true` if zero-length.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating scalar multiplication (what the `*` operator does too —
    /// this form makes the saturation explicit at call sites computing
    /// exponential backoffs from configured timeouts, where wrapping would
    /// turn a huge deadline into a tiny one).
    pub const fn saturating_mul(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0.saturating_mul(rhs))
    }
}

impl Add<VirtualDuration> for VirtualTime {
    type Output = VirtualTime;
    fn add(self, rhs: VirtualDuration) -> VirtualTime {
        VirtualTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<VirtualDuration> for VirtualTime {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Sub<VirtualTime> for VirtualTime {
    type Output = VirtualDuration;
    fn sub(self, rhs: VirtualTime) -> VirtualDuration {
        self.since(rhs)
    }
}

impl Add for VirtualDuration {
    type Output = VirtualDuration;
    fn add(self, rhs: VirtualDuration) -> VirtualDuration {
        VirtualDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for VirtualDuration {
    fn add_assign(&mut self, rhs: VirtualDuration) {
        *self = *self + rhs;
    }
}

impl Mul<u64> for VirtualDuration {
    type Output = VirtualDuration;
    fn mul(self, rhs: u64) -> VirtualDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for VirtualDuration {
    type Output = VirtualDuration;
    /// # Panics
    ///
    /// Panics on division by zero.
    fn div(self, rhs: u64) -> VirtualDuration {
        VirtualDuration(self.0 / rhs)
    }
}

impl Sum for VirtualDuration {
    fn sum<I: Iterator<Item = VirtualDuration>>(iter: I) -> Self {
        iter.fold(VirtualDuration::ZERO, Add::add)
    }
}

impl fmt::Display for VirtualTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for VirtualDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(VirtualDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(VirtualDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(VirtualDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(VirtualDuration::from_secs(2).as_secs_f64(), 2.0);
        assert_eq!(VirtualDuration::from_millis(30).as_millis_f64(), 30.0);
        assert_eq!(VirtualDuration::from_micros(5).as_micros_f64(), 5.0);
    }

    #[test]
    fn from_secs_f64_edges() {
        assert_eq!(VirtualDuration::from_secs_f64(-1.0), VirtualDuration::ZERO);
        assert_eq!(VirtualDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(VirtualDuration::from_secs_f64(1e30).as_nanos(), u64::MAX);
    }

    #[test]
    fn arithmetic() {
        let t = VirtualTime::ZERO + VirtualDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        let t2 = t + VirtualDuration::from_millis(3);
        assert_eq!((t2 - t).as_nanos(), 3_000_000);
        assert_eq!(t.since(t2), VirtualDuration::ZERO); // saturating
        let mut d = VirtualDuration::from_millis(1);
        d += VirtualDuration::from_millis(2);
        assert_eq!(d, VirtualDuration::from_millis(3));
        assert_eq!(d * 2, VirtualDuration::from_millis(6));
        assert_eq!(d / 3, VirtualDuration::from_millis(1));
        let total: VirtualDuration = (0..4).map(|_| VirtualDuration::from_millis(2)).sum();
        assert_eq!(total, VirtualDuration::from_millis(8));
    }

    #[test]
    fn saturation() {
        assert_eq!(
            VirtualTime::MAX + VirtualDuration::from_secs(1),
            VirtualTime::MAX
        );
        assert_eq!(
            VirtualDuration::from_millis(1).saturating_sub(VirtualDuration::from_secs(1)),
            VirtualDuration::ZERO
        );
        assert_eq!(
            VirtualDuration::from_nanos(u64::MAX / 2).saturating_mul(4),
            VirtualDuration::from_nanos(u64::MAX)
        );
        assert_eq!(
            VirtualDuration::from_nanos(u64::MAX / 2) * 4,
            VirtualDuration::from_nanos(u64::MAX),
            "the operator saturates identically"
        );
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(VirtualDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(VirtualDuration::from_micros(12).to_string(), "12.000µs");
        assert_eq!(VirtualDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(VirtualDuration::from_secs(12).to_string(), "12.000s");
        assert!(VirtualTime::from_nanos(1_500_000)
            .to_string()
            .starts_with("t="));
    }

    #[test]
    fn ordering() {
        assert!(VirtualTime::from_nanos(1) < VirtualTime::from_nanos(2));
        assert!(VirtualDuration::from_millis(1) < VirtualDuration::from_secs(1));
        assert!(VirtualDuration::ZERO.is_zero());
    }
}
