//! Latency and CPU models.
//!
//! §3.1 of the paper motivates optimism with concrete numbers: a
//! transcontinental fibre channel has a 30 ms round trip; a 100 MIPS CPU
//! executes over 3 million instructions in that window. [`LatencyModel`]
//! produces message latencies (deterministically, from a [`SimRng`]);
//! [`CpuModel`] converts instruction counts to virtual compute time so the
//! §3.1 arithmetic is reproducible (experiment E3).

use std::fmt;

use crate::rng::SimRng;
use crate::time::VirtualDuration;

/// A distribution of one-way message latencies.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Fixed(VirtualDuration),
    /// Uniformly distributed between `lo` and `hi` (inclusive of `lo`,
    /// exclusive of `hi`).
    Uniform {
        /// Minimum latency.
        lo: VirtualDuration,
        /// Maximum latency (exclusive).
        hi: VirtualDuration,
    },
    /// Exponentially distributed around `mean`, shifted by a propagation
    /// `floor` (no message can beat the speed of light).
    Exponential {
        /// Lower bound added to every sample.
        floor: VirtualDuration,
        /// Mean of the exponential component.
        mean: VirtualDuration,
    },
    /// Sampled uniformly from an observed set of latencies (replay a real
    /// trace's distribution).
    Empirical {
        /// The observed samples; drawn uniformly at random.
        samples: Vec<VirtualDuration>,
    },
}

impl LatencyModel {
    /// Zero latency (co-located processes).
    pub fn zero() -> Self {
        LatencyModel::Fixed(VirtualDuration::ZERO)
    }

    /// A LAN-like fixed latency: 100 µs one-way.
    pub fn lan() -> Self {
        LatencyModel::Fixed(VirtualDuration::from_micros(100))
    }

    /// The paper's transcontinental link: 30 ms round trip, so 15 ms
    /// one-way (§3.1).
    pub fn coast_to_coast() -> Self {
        LatencyModel::Fixed(VirtualDuration::from_millis(15))
    }

    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> VirtualDuration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                let (a, b) = (lo.as_nanos(), hi.as_nanos());
                if a >= b {
                    *lo
                } else {
                    VirtualDuration::from_nanos(rng.range_u64(a, b))
                }
            }
            LatencyModel::Exponential { floor, mean } => {
                let extra = rng.exponential(mean.as_nanos().max(1) as f64);
                *floor + VirtualDuration::from_nanos(extra as u64)
            }
            LatencyModel::Empirical { samples } => {
                if samples.is_empty() {
                    VirtualDuration::ZERO
                } else {
                    samples[rng.index(samples.len())]
                }
            }
        }
    }

    /// The smallest latency this model can produce (its lookahead).
    pub fn min(&self) -> VirtualDuration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { lo, .. } => *lo,
            LatencyModel::Exponential { floor, .. } => *floor,
            LatencyModel::Empirical { samples } => samples
                .iter()
                .copied()
                .min()
                .unwrap_or(VirtualDuration::ZERO),
        }
    }

    /// The expected latency of this model.
    pub fn mean(&self) -> VirtualDuration {
        match self {
            LatencyModel::Fixed(d) => *d,
            LatencyModel::Uniform { lo, hi } => {
                VirtualDuration::from_nanos((lo.as_nanos() + hi.as_nanos()) / 2)
            }
            LatencyModel::Exponential { floor, mean } => *floor + *mean,
            LatencyModel::Empirical { samples } => {
                if samples.is_empty() {
                    VirtualDuration::ZERO
                } else {
                    let total: u128 = samples.iter().map(|d| d.as_nanos() as u128).sum();
                    VirtualDuration::from_nanos((total / samples.len() as u128) as u64)
                }
            }
        }
    }
}

impl Default for LatencyModel {
    /// Defaults to [`LatencyModel::lan`].
    fn default() -> Self {
        LatencyModel::lan()
    }
}

impl fmt::Display for LatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LatencyModel::Fixed(d) => write!(f, "fixed({d})"),
            LatencyModel::Uniform { lo, hi } => write!(f, "uniform({lo}..{hi})"),
            LatencyModel::Exponential { floor, mean } => {
                write!(f, "exp(floor={floor}, mean={mean})")
            }
            LatencyModel::Empirical { samples } => {
                write!(f, "empirical({} samples)", samples.len())
            }
        }
    }
}

/// A CPU speed model: converts instruction counts to virtual time.
///
/// # Examples
///
/// The paper's §3.1 claim, verified:
///
/// ```
/// use hope_sim::{CpuModel, VirtualDuration};
///
/// let cpu = CpuModel::mips(100);
/// let rtt = VirtualDuration::from_millis(30);
/// assert!(cpu.instructions_in(rtt) >= 3_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuModel {
    /// Instructions executed per second.
    instructions_per_sec: u64,
}

impl CpuModel {
    /// A CPU executing `m` million instructions per second.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mips(m: u64) -> Self {
        assert!(m > 0, "CPU speed must be positive");
        CpuModel {
            instructions_per_sec: m * 1_000_000,
        }
    }

    /// Virtual time needed to execute `n` instructions.
    pub fn time_for(&self, instructions: u64) -> VirtualDuration {
        // ns = n * 1e9 / ips, computed to avoid overflow for large n.
        let secs = instructions / self.instructions_per_sec;
        let rem = instructions % self.instructions_per_sec;
        VirtualDuration::from_secs(secs)
            + VirtualDuration::from_nanos(
                rem.saturating_mul(1_000_000_000) / self.instructions_per_sec,
            )
    }

    /// Instructions executable within `d`.
    pub fn instructions_in(&self, d: VirtualDuration) -> u64 {
        ((d.as_nanos() as u128 * self.instructions_per_sec as u128) / 1_000_000_000u128) as u64
    }
}

impl Default for CpuModel {
    /// The paper's 100 MIPS CPU.
    fn default() -> Self {
        CpuModel::mips(100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let m = LatencyModel::Fixed(VirtualDuration::from_millis(5));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), VirtualDuration::from_millis(5));
        }
        assert_eq!(m.min(), VirtualDuration::from_millis(5));
        assert_eq!(m.mean(), VirtualDuration::from_millis(5));
    }

    #[test]
    fn uniform_within_bounds() {
        let m = LatencyModel::Uniform {
            lo: VirtualDuration::from_millis(1),
            hi: VirtualDuration::from_millis(2),
        };
        let mut rng = SimRng::new(2);
        for _ in 0..100 {
            let s = m.sample(&mut rng);
            assert!(s >= VirtualDuration::from_millis(1));
            assert!(s < VirtualDuration::from_millis(2));
        }
        assert_eq!(m.min(), VirtualDuration::from_millis(1));
        assert_eq!(m.mean().as_nanos(), 1_500_000);
    }

    #[test]
    fn uniform_degenerate_range() {
        let d = VirtualDuration::from_millis(3);
        let m = LatencyModel::Uniform { lo: d, hi: d };
        let mut rng = SimRng::new(2);
        assert_eq!(m.sample(&mut rng), d);
    }

    #[test]
    fn exponential_respects_floor() {
        let m = LatencyModel::Exponential {
            floor: VirtualDuration::from_millis(10),
            mean: VirtualDuration::from_millis(5),
        };
        let mut rng = SimRng::new(3);
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= VirtualDuration::from_millis(10));
        }
        assert_eq!(m.min(), VirtualDuration::from_millis(10));
        assert_eq!(m.mean(), VirtualDuration::from_millis(15));
    }

    #[test]
    fn presets() {
        assert_eq!(LatencyModel::zero().min(), VirtualDuration::ZERO);
        assert_eq!(
            LatencyModel::lan().mean(),
            VirtualDuration::from_micros(100)
        );
        assert_eq!(
            LatencyModel::coast_to_coast().mean(),
            VirtualDuration::from_millis(15)
        );
        assert_eq!(LatencyModel::default(), LatencyModel::lan());
    }

    #[test]
    fn display() {
        assert!(LatencyModel::lan().to_string().starts_with("fixed("));
        let u = LatencyModel::Uniform {
            lo: VirtualDuration::ZERO,
            hi: VirtualDuration::from_millis(1),
        };
        assert!(u.to_string().starts_with("uniform("));
    }

    #[test]
    fn empirical_draws_only_observed_samples() {
        let samples = vec![
            VirtualDuration::from_millis(1),
            VirtualDuration::from_millis(4),
            VirtualDuration::from_millis(9),
        ];
        let m = LatencyModel::Empirical {
            samples: samples.clone(),
        };
        let mut rng = SimRng::new(4);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let s = m.sample(&mut rng);
            assert!(samples.contains(&s), "{s}");
            seen.insert(s);
        }
        assert_eq!(seen.len(), 3, "all samples eventually drawn");
        assert_eq!(m.min(), VirtualDuration::from_millis(1));
        assert_eq!(m.mean(), VirtualDuration::from_nanos(4_666_666));
        assert!(m.to_string().starts_with("empirical("));
    }

    #[test]
    fn empirical_empty_is_zero() {
        let m = LatencyModel::Empirical { samples: vec![] };
        let mut rng = SimRng::new(4);
        assert_eq!(m.sample(&mut rng), VirtualDuration::ZERO);
        assert_eq!(m.min(), VirtualDuration::ZERO);
        assert_eq!(m.mean(), VirtualDuration::ZERO);
    }

    #[test]
    fn cpu_paper_arithmetic() {
        // §3.1: 100 MIPS × 30 ms RTT > 3 million instructions.
        let cpu = CpuModel::mips(100);
        let n = cpu.instructions_in(VirtualDuration::from_millis(30));
        assert_eq!(n, 3_000_000);
        // And the inverse:
        assert_eq!(cpu.time_for(3_000_000), VirtualDuration::from_millis(30));
    }

    #[test]
    fn cpu_large_counts_do_not_overflow() {
        let cpu = CpuModel::mips(1);
        let d = cpu.time_for(10_000_000_000);
        assert_eq!(d, VirtualDuration::from_secs(10_000));
    }
}
