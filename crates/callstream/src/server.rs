//! Server side: the verifying service (the generalized WorryWart).
//!
//! [`serve_verified`] wraps an ordinary request handler so that the same
//! server answers both pessimistic RPCs ([`sync_call`](crate::sync_call))
//! and optimistic streamed calls ([`stream_call`](crate::stream_call)). For
//! a streamed call it plays the paper's WorryWart: it executes the request
//! for real, compares the actual response against the client's prediction,
//! and **affirms** the assumption on a match or **denies** it — shipping
//! the actual response alongside — on a mismatch.

use hope_runtime::{Ctx, Hope, MsgKind, Value};
use hope_sim::VirtualDuration;

use crate::protocol::StreamRequest;

/// Statistics a verifying server accumulates (returned per-request to the
/// supplied observer, and usable by benchmarks via closure capture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The prediction matched; the assumption was affirmed.
    Affirmed,
    /// The prediction missed; the assumption was denied and the actual
    /// response shipped.
    Denied,
    /// The request was a plain pessimistic RPC; answered directly.
    Plain,
}

/// Run a verifying server until shutdown.
///
/// `handler` maps a request payload to a response; `cost` is the virtual
/// CPU time charged per request (the work the RPC actually does).
///
/// This function loops forever; the process ends when the simulation shuts
/// down, so the server always appears in
/// [`RunReport::unfinished`](hope_runtime::RunReport::unfinished).
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s (that is how the
/// loop terminates).
pub fn serve_verified(
    ctx: &mut Ctx,
    cost: VirtualDuration,
    mut handler: impl FnMut(&Value) -> Value,
    mut observer: impl FnMut(VerifyOutcome),
) -> Hope<()> {
    loop {
        let msg = ctx.recv()?;
        match StreamRequest::from_value(&msg.payload) {
            Some(stream) => {
                ctx.compute(cost)?;
                let actual = handler(&stream.request);
                if actual == stream.predicted {
                    ctx.affirm(stream.aid)?;
                    observer(VerifyOutcome::Affirmed);
                } else {
                    // Ship the truth first so it is already in flight when
                    // the client's rollback re-executes the guess.
                    if matches!(msg.kind, MsgKind::Request(_)) {
                        ctx.reply(&msg, actual)?;
                    }
                    ctx.deny(stream.aid)?;
                    observer(VerifyOutcome::Denied);
                }
            }
            None => {
                // A pessimistic RPC: compute and reply.
                ctx.compute(cost)?;
                let actual = handler(&msg.payload);
                if matches!(msg.kind, MsgKind::Request(_)) {
                    ctx.reply(&msg, actual)?;
                }
                observer(VerifyOutcome::Plain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{stream_call, sync_call};
    use hope_runtime::{ProcessId, SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology};

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    /// Doubling server; client predicts correctly.
    #[test]
    fn correct_prediction_hides_latency() {
        let topo = Topology::uniform(LatencyModel::Fixed(ms(10)));
        let server = ProcessId(1);

        // Optimistic client: two dependent calls, both predicted right.
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo.clone()));
        let client = sim.spawn("client", move |ctx| {
            let a = stream_call(ctx, server, Value::Int(3), Value::Int(6))?;
            let b = stream_call(ctx, server, a.clone(), Value::Int(12))?;
            ctx.output(format!("result={b}"))?;
            Ok(())
        });
        sim.spawn("server", |ctx| {
            serve_verified(ctx, ms(1), |v| Value::Int(v.expect_int() * 2), |_| {})
        });
        let opt = sim.run();
        assert_eq!(opt.output_lines(), vec!["result=12"]);
        let opt_time = opt.finish_time(client).unwrap();

        // Pessimistic client: same calls, synchronous.
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
        let client = sim.spawn("client", move |ctx| {
            let a = sync_call(ctx, server, Value::Int(3))?;
            let b = sync_call(ctx, server, a.clone())?;
            ctx.output(format!("result={b}"))?;
            Ok(())
        });
        sim.spawn("server", |ctx| {
            serve_verified(ctx, ms(1), |v| Value::Int(v.expect_int() * 2), |_| {})
        });
        let pess = sim.run();
        assert_eq!(pess.output_lines(), vec!["result=12"]);
        let pess_time = pess.finish_time(client).unwrap();

        // The optimistic client finished immediately (its guesses were
        // affirmed later); the pessimistic one paid 2 round trips + compute.
        assert!(
            opt_time < pess_time,
            "optimistic {opt_time} !< pessimistic {pess_time}"
        );
        assert_eq!(pess_time.as_millis_f64(), 2.0 * (20.0 + 1.0));
        assert_eq!(opt.stats().rollback_events, 0);
    }

    /// Client predicts wrong: rollback, and the result is still correct.
    #[test]
    fn wrong_prediction_rolls_back_to_truth() {
        let topo = Topology::uniform(LatencyModel::Fixed(ms(10)));
        let server = ProcessId(1);
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
        sim.spawn("client", move |ctx| {
            let a = stream_call(ctx, server, Value::Int(3), Value::Int(999))?;
            ctx.output(format!("result={a}"))?;
            Ok(())
        });
        sim.spawn("server", |ctx| {
            serve_verified(ctx, ms(1), |v| Value::Int(v.expect_int() * 2), |_| {})
        });
        let report = sim.run();
        assert_eq!(report.output_lines(), vec!["result=6"]);
        assert_eq!(report.stats().rollback_events, 1);
        assert!(report.stats().replays >= 1);
    }

    /// A chain where the middle prediction misses: only the suffix re-runs.
    #[test]
    fn chained_calls_with_one_miss() {
        let topo = Topology::uniform(LatencyModel::Fixed(ms(10)));
        let server = ProcessId(1);
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
        sim.spawn("client", move |ctx| {
            let a = stream_call(ctx, server, Value::Int(1), Value::Int(2))?; // right
            let b = stream_call(ctx, server, a.clone(), Value::Int(5))?; // wrong (4)
            let c = stream_call(ctx, server, b.clone(), Value::Int(8))?; // right (8)
            ctx.output(format!("chain={a},{b},{c}"))?;
            Ok(())
        });
        let outcomes = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let obs = outcomes.clone();
        sim.spawn("server", move |ctx| {
            let obs = obs.clone();
            serve_verified(
                ctx,
                ms(1),
                |v| Value::Int(v.expect_int() * 2),
                move |o| obs.lock().unwrap().push(o),
            )
        });
        let report = sim.run();
        assert_eq!(report.output_lines(), vec!["chain=2,4,8"]);
        assert!(report.stats().rollback_events >= 1);
        let seen = outcomes.lock().unwrap();
        assert!(seen.contains(&VerifyOutcome::Denied));
        assert!(seen.contains(&VerifyOutcome::Affirmed));
    }
}
