//! The paper's running example, reproduced literally: Figures 1 and 2.
//!
//! A Worker prints a running total (`S1`, an RPC returning the current line
//! number), forces a new page if the total ended too low on the page (`S2`),
//! and prints a summary (`S3`, another RPC). Figure 1 runs `S1`–`S3`
//! synchronously; Figure 2 parallelizes them by (a) moving `S1` into a
//! spawned **WorryWart** process and (b) optimistically assuming
//! `line < PageSize` (the `PartPage` AID). A second AID, `Order`, guards
//! against `S3`'s message overtaking `S1` at the print server: the
//! WorryWart asserts `free_of(Order)`, and if the causality constraint was
//! violated the assertion denies `Order`, rolling the system back to a
//! consistent state (§3.1).

use hope_core::{AidId, ProcessId};
use hope_runtime::{Ctx, Hope, Value};
use hope_sim::VirtualDuration;

/// Default page size used by the examples and benchmarks.
pub const PAGE_SIZE: i64 = 60;

/// A simple print server: `["print", text]` appends a line and replies with
/// the resulting line number; `["newpage"]` resets the line counter and
/// replies `0`. Each request costs `cost` of server CPU.
///
/// Runs until simulation shutdown.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn print_server(ctx: &mut Ctx, start_line: i64, cost: VirtualDuration) -> Hope<()> {
    let mut line = start_line;
    loop {
        let msg = ctx.recv()?;
        ctx.compute(cost)?;
        let items = msg.payload.expect_list();
        let op = items[0].expect_str();
        let response = match op {
            "print" => {
                line += 1;
                Value::Int(line)
            }
            "newpage" => {
                line = 0;
                Value::Int(0)
            }
            other => panic!("print server: unknown op {other:?}"),
        };
        ctx.reply(&msg, response)?;
    }
}

/// Encode a `print` request.
pub fn print_req(text: &str) -> Value {
    Value::List(vec![Value::Str("print".into()), Value::Str(text.into())])
}

/// Encode a `newpage` request.
pub fn newpage_req() -> Value {
    Value::List(vec![Value::Str("newpage".into())])
}

/// **Figure 1** — the pessimistic Worker: three synchronous RPCs.
///
/// ```text
/// line = call print("Total is ", total);      /* S1 — RPC */
/// if (line > PageSize) { call newpage(); }    /* S2 — RPC */
/// call print("Summary ...");                  /* S3 — RPC */
/// ```
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn worker_pessimistic(
    ctx: &mut Ctx,
    printer: ProcessId,
    total: i64,
    page_size: i64,
) -> Hope<()> {
    let line = ctx
        .rpc(printer, print_req(&format!("Total is {total}")))?
        .expect_int(); // S1
    if line > page_size {
        ctx.rpc(printer, newpage_req())?; // S2
    }
    ctx.rpc(printer, print_req("Summary ..."))?; // S3
    ctx.output("report done")?;
    Ok(())
}

/// **Figure 2, Worker half** — the Call-Streaming transformation.
///
/// Sends the `PartPage` and `Order` AIDs (with the total) to the WorryWart,
/// optimistically assumes the page did not overflow, and proceeds to the
/// summary without waiting for `S1`.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn worker_optimistic(
    ctx: &mut Ctx,
    printer: ProcessId,
    worrywart: ProcessId,
    total: i64,
) -> Hope<()> {
    let part_page = ctx.aid_init()?;
    let order = ctx.aid_init()?;
    ctx.send(
        worrywart,
        Value::List(vec![
            Value::Int(part_page.index() as i64),
            Value::Int(order.index() as i64),
            Value::Int(total),
        ]),
    )?;
    if ctx.guess(part_page)? {
        // S2 elided: the total (probably) fit on the current page.
    } else {
        ctx.rpc(printer, newpage_req())?; // S2
    }
    let _ = ctx.guess(order)?; // mark S3 dependent on message ordering
    ctx.rpc(printer, print_req("Summary ..."))?; // S3
    ctx.output("report done")?;
    Ok(())
}

/// **Figure 2, WorryWart half** — executes `S1`, asserts the ordering
/// constraint, then verifies the `PartPage` assumption.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn worrywart(ctx: &mut Ctx, printer: ProcessId, page_size: i64) -> Hope<()> {
    let msg = ctx.recv()?;
    let items = msg.payload.expect_list();
    let part_page = AidId::from_index(items[0].expect_int() as u64);
    let order = AidId::from_index(items[1].expect_int() as u64);
    let total = items[2].expect_int();
    let line = ctx
        .rpc(printer, print_req(&format!("Total is {total}")))?
        .expect_int(); // S1
    ctx.free_of(order)?;
    if line < page_size {
        ctx.affirm(part_page)?;
    } else {
        ctx.deny(part_page)?;
    }
    Ok(())
}

/// The topology the paper's scenario implies: the WorryWart sits close to
/// the Worker, so `S1` (routed through it) still reaches the print server
/// ahead of the Worker's direct `S3`. Nodes: 0 = worker, 1 = printer,
/// 2 = worrywart.
pub fn paper_topology(one_way: VirtualDuration) -> hope_sim::Topology {
    use hope_sim::{LatencyModel, Topology};
    let close = VirtualDuration::from_micros(100);
    let mut topo = Topology::uniform(LatencyModel::Fixed(one_way));
    topo.set_pair(0, 2, LatencyModel::Fixed(close));
    // WorryWart → printer is slightly faster than worker → printer, so S1
    // keeps its head start.
    topo.set_pair(2, 1, LatencyModel::Fixed(one_way.saturating_sub(close * 3)));
    topo
}

#[cfg(test)]
mod tests {
    use super::*;
    use hope_runtime::{SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology};

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    fn run_pessimistic(start_line: i64, topo: Topology) -> hope_runtime::RunReport {
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
        let printer = ProcessId(1);
        sim.spawn("worker", move |ctx| {
            worker_pessimistic(ctx, printer, 1234, PAGE_SIZE)
        });
        sim.spawn("printer", move |ctx| print_server(ctx, start_line, ms(1)));
        sim.run()
    }

    fn run_optimistic(start_line: i64, topo: Topology) -> hope_runtime::RunReport {
        let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
        let printer = ProcessId(1);
        let wart = ProcessId(2);
        sim.spawn("worker", move |ctx| {
            worker_optimistic(ctx, printer, wart, 1234)
        });
        sim.spawn("printer", move |ctx| print_server(ctx, start_line, ms(1)));
        sim.spawn("worrywart", move |ctx| worrywart(ctx, printer, PAGE_SIZE));
        sim.run()
    }

    #[test]
    fn figure1_pessimistic_baseline() {
        let report = run_pessimistic(10, Topology::uniform(LatencyModel::Fixed(ms(10))));
        assert_eq!(report.output_lines(), vec!["report done"]);
        // S1 and S3 only (no page overflow): 2 × (RTT 20ms + 1ms compute).
        let t = report
            .finish_time(ProcessId(0))
            .expect("worker finished")
            .as_millis_f64();
        assert_eq!(t, 42.0);
    }

    #[test]
    fn figure2_optimistic_is_faster_when_assumption_holds() {
        let topo = paper_topology(ms(10));
        let pess = run_pessimistic(10, topo.clone());
        let opt = run_optimistic(10, topo);
        assert_eq!(opt.output_lines(), vec!["report done"]);
        assert_eq!(opt.stats().rollback_events, 0, "assumption held: {opt}");
        let tp = pess.finish_time(ProcessId(0)).unwrap();
        let to = opt.finish_time(ProcessId(0)).unwrap();
        assert!(to < tp, "optimistic {to} !< pessimistic {tp}");
    }

    #[test]
    fn figure2_page_overflow_forces_rollback_and_newpage() {
        // Start the page at line 70 (> PAGE_SIZE): the WorryWart denies
        // PartPage, the Worker re-executes with guess=false and calls
        // newpage before the summary.
        let opt = run_optimistic(70, paper_topology(ms(10)));
        assert_eq!(opt.output_lines(), vec!["report done"]);
        assert!(opt.stats().rollback_events >= 1);
        assert!(opt.stats().engine.definite_denies >= 1);
    }

    #[test]
    fn uniform_latency_triggers_order_violation_and_recovers() {
        // With a uniform topology S3 overtakes S1 at the printer; the
        // WorryWart's free_of(Order) detects the causality violation, the
        // system rolls back, and the re-execution is properly ordered.
        let opt = run_optimistic(10, Topology::uniform(LatencyModel::Fixed(ms(10))));
        assert_eq!(opt.output_lines(), vec!["report done"]);
        assert!(
            opt.stats().rollback_events >= 2,
            "worker+printer (at least) roll back: {opt}"
        );
        assert!(opt.stats().ghosts_dropped >= 1);
        assert!(opt.stats().engine.free_ofs >= 1);
    }

    #[test]
    fn results_identical_between_figures() {
        for start in [0, 30, 59, 60, 70] {
            for topo in [
                paper_topology(ms(5)),
                Topology::uniform(LatencyModel::Fixed(ms(5))),
            ] {
                let p = run_pessimistic(start, topo.clone());
                let o = run_optimistic(start, topo);
                assert_eq!(
                    p.output_lines(),
                    o.output_lines(),
                    "speculation must be transparent (start={start})"
                );
            }
        }
    }
}
