//! Client side: the optimistic call.
//!
//! [`stream_call`] is the Bacon/Strom-style transformation of Figure 2: the
//! synchronous RPC of Figure 1 becomes an asynchronous send plus a `guess`,
//! and the caller continues immediately with its predicted response. If the
//! prediction was wrong the caller is rolled back to the guess, observes
//! `false`, and falls back to the *actual* response the server shipped with
//! its deny — by which time that response is usually already in the mailbox,
//! so even the pessimistic path pays roughly one round trip.

use hope_core::ProcessId;
use hope_runtime::{Ctx, Hope, MsgKind, Value};

use crate::protocol::StreamRequest;

/// Issue `request` to `server` optimistically, predicting `predicted`.
///
/// Returns immediately (speculatively) with the prediction. The server —
/// which must be running [`serve_verified`](crate::serve_verified) — executes
/// the request for real and affirms or denies the underlying assumption.
/// On deny, the caller transparently rolls back to this point and the call
/// returns the actual response instead.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
///
/// # Examples
///
/// See the crate-level example, which prints a page total and a summary in
/// one round trip instead of two.
pub fn stream_call(
    ctx: &mut Ctx,
    server: ProcessId,
    request: impl Into<Value>,
    predicted: impl Into<Value>,
) -> Hope<Value> {
    let request = request.into();
    let predicted = predicted.into();
    let aid = ctx.aid_init()?;
    let payload = StreamRequest {
        aid,
        request,
        predicted: predicted.clone(),
    }
    .to_value();
    let call = ctx.send_request(server, payload)?;
    if ctx.guess(aid)? {
        // Optimistic path: proceed with the prediction; the latency of the
        // real call is hidden behind whatever the caller does next.
        Ok(predicted)
    } else {
        // Pessimistic path (after rollback): the deny shipped the actual
        // response as a reply correlated with our request's message id.
        let m = ctx.recv_matching(move |m| m.kind == MsgKind::Reply(call))?;
        Ok(m.payload)
    }
}

/// The fully pessimistic equivalent (Figure 1): a plain synchronous RPC.
///
/// Exists so benchmarks and tests can run the same workload both ways; the
/// server side answers both (see [`serve_verified`](crate::serve_verified)).
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn sync_call(ctx: &mut Ctx, server: ProcessId, request: impl Into<Value>) -> Hope<Value> {
    ctx.rpc(server, request.into())
}
