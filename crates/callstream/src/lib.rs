//! # hope-callstream — the Call Streaming protocol (Figures 1–2)
//!
//! The paper motivates HOPE with RPC latency (§3.1): a synchronous caller
//! idles for a full round trip per call, and "a 100 MIPS CPU can execute
//! over 3 million instructions while waiting for a response from the
//! opposite coast". **Call Streaming** is the optimistic transformation
//! that hides the latency: the caller sends the request *and a predicted
//! response* to a verifying server, `guess`es that the prediction is right,
//! and continues immediately. The server executes the request for real and
//! affirms or denies the assumption; a deny rolls the caller back to the
//! guess, where it picks up the actual response instead. §7 reports the
//! prototype gained up to 80% this way; the `hope-bench` crate's E1/E2/E4
//! experiments reproduce the shape of that result.
//!
//! * [`stream_call`] / [`sync_call`] — the optimistic call and its
//!   pessimistic equivalent.
//! * [`serve_verified`] — the server loop that answers both.
//! * [`page`] — the paper's running example (the page printer of Figures 1
//!   and 2), including the `Order` AID and the `free_of` causality guard.
//!
//! ## Example
//!
//! ```
//! use hope_callstream::{serve_verified, stream_call};
//! use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
//! use hope_sim::VirtualDuration;
//!
//! let mut sim = Simulation::new(SimConfig::with_seed(1));
//! let server = ProcessId(1);
//! sim.spawn("client", move |ctx| {
//!     // Ask for 21 doubled, predicting 42; we keep computing while the
//!     // server verifies.
//!     let answer = stream_call(ctx, server, Value::Int(21), Value::Int(42))?;
//!     ctx.output(format!("answer={answer}"))?;
//!     Ok(())
//! });
//! sim.spawn("server", |ctx| {
//!     serve_verified(
//!         ctx,
//!         VirtualDuration::from_millis(1),
//!         |req| Value::Int(req.expect_int() * 2),
//!         |_| {},
//!     )
//! });
//! let report = sim.run();
//! assert_eq!(report.output_lines(), vec!["answer=42"]);
//! assert_eq!(report.stats().rollback_events, 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
pub mod page;
mod predictor;
mod protocol;
mod server;

pub use client::{stream_call, sync_call};
pub use predictor::{stream_call_predicted, LastValuePredictor, MemoPredictor, Predictor};
pub use protocol::StreamRequest;
pub use server::{serve_verified, VerifyOutcome};
