//! Wire encoding of the Call Streaming protocol.
//!
//! A *streamed call* ships three things to the verifying server in one
//! message: the assumption identifier the client is about to guess, the
//! request itself, and the client's predicted response. The server executes
//! the request for real and affirms the AID if the prediction matched,
//! denying it (and shipping the actual result) otherwise.
//!
//! Payloads are encoded as [`Value::List`]s so they travel over the
//! runtime's ordinary tagged messages.

use hope_core::AidId;
use hope_runtime::Value;

/// A streamed-call request as decoded by the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamRequest {
    /// The assumption the client guessed: "the server's answer will equal
    /// my prediction".
    pub aid: AidId,
    /// The actual request payload for the server's handler.
    pub request: Value,
    /// The client's predicted response.
    pub predicted: Value,
}

impl StreamRequest {
    /// Encode for transmission.
    pub fn to_value(&self) -> Value {
        Value::List(vec![
            Value::Int(self.aid.index() as i64),
            self.request.clone(),
            self.predicted.clone(),
        ])
    }

    /// Decode a received payload.
    ///
    /// Returns `None` if the payload is not a well-formed stream request.
    pub fn from_value(v: &Value) -> Option<StreamRequest> {
        let items = v.as_list()?;
        if items.len() != 3 {
            return None;
        }
        let aid = AidId::from_index(u64::try_from(items[0].as_int()?).ok()?);
        Some(StreamRequest {
            aid,
            request: items[1].clone(),
            predicted: items[2].clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let r = StreamRequest {
            aid: AidId::from_index(7),
            request: Value::Str("print".into()),
            predicted: Value::Int(42),
        };
        let v = r.to_value();
        assert_eq!(StreamRequest::from_value(&v), Some(r));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(StreamRequest::from_value(&Value::Unit), None);
        assert_eq!(StreamRequest::from_value(&Value::List(vec![])), None);
        assert_eq!(
            StreamRequest::from_value(&Value::List(vec![
                Value::Str("not an aid".into()),
                Value::Unit,
                Value::Unit,
            ])),
            None
        );
        assert_eq!(
            StreamRequest::from_value(&Value::List(vec![
                Value::Int(-1), // negative index
                Value::Unit,
                Value::Unit,
            ])),
            None
        );
    }
}
