//! Predictors: where optimistic guesses come from.
//!
//! Call Streaming is only as good as its predictions. The paper's page
//! printer predicts from domain knowledge ("reports rarely end exactly at
//! the page boundary"); general clients predict from history. This module
//! provides the trait and the two workhorse strategies, both usable
//! directly with [`stream_call_predicted`].

use std::collections::HashMap;

use hope_core::ProcessId;
use hope_runtime::{Ctx, Hope, Value};

use crate::client::stream_call;

/// A source of predicted responses for optimistic calls.
///
/// Implementations must be deterministic functions of the observations
/// fed to [`Predictor::observe`] — they live inside process bodies, so
/// journal replay will re-run them.
pub trait Predictor {
    /// Predict the server's response to `request`.
    fn predict(&mut self, request: &Value) -> Value;

    /// Learn from an actual `(request, response)` pair.
    fn observe(&mut self, request: &Value, response: &Value);
}

/// Predicts that a request maps to whatever it mapped to last time, with
/// a configurable default for unseen requests.
///
/// The right strategy for read-mostly services (caches, directories,
/// replicated reads): after one observation per key it is exact until the
/// value changes.
#[derive(Debug, Clone, Default)]
pub struct MemoPredictor {
    memory: HashMap<Value, Value>,
    default: Value,
}

impl MemoPredictor {
    /// A memoizing predictor that predicts `default` for unseen requests.
    pub fn new(default: Value) -> Self {
        MemoPredictor {
            memory: HashMap::new(),
            default,
        }
    }

    /// Number of request keys memorized.
    pub fn len(&self) -> usize {
        self.memory.len()
    }

    /// `true` if nothing has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.memory.is_empty()
    }
}

impl Predictor for MemoPredictor {
    fn predict(&mut self, request: &Value) -> Value {
        self.memory
            .get(request)
            .cloned()
            .unwrap_or_else(|| self.default.clone())
    }

    fn observe(&mut self, request: &Value, response: &Value) {
        self.memory.insert(request.clone(), response.clone());
    }
}

/// Predicts the last response seen, regardless of the request — the right
/// strategy for slowly varying streams (sensor reads, sequence numbers
/// advancing by a known stride when combined with [`LastValuePredictor::with_stride`]).
#[derive(Debug, Clone, Default)]
pub struct LastValuePredictor {
    last: Option<Value>,
    stride: i64,
}

impl LastValuePredictor {
    /// Predict exactly the previous response.
    pub fn new() -> Self {
        LastValuePredictor::default()
    }

    /// Predict the previous integer response plus `stride` (for counters
    /// and sequence numbers).
    pub fn with_stride(stride: i64) -> Self {
        LastValuePredictor { last: None, stride }
    }
}

impl Predictor for LastValuePredictor {
    fn predict(&mut self, _request: &Value) -> Value {
        match &self.last {
            Some(Value::Int(v)) => Value::Int(v + self.stride),
            Some(v) => v.clone(),
            // Cold start: predict the stride itself. Note this is an
            // `Int` even though nothing was observed — speculative code
            // runs with the *predicted* value, so a prediction must be
            // type-correct even when it is numerically wrong.
            None => Value::Int(self.stride),
        }
    }

    fn observe(&mut self, _request: &Value, response: &Value) {
        self.last = Some(response.clone());
    }
}

/// [`stream_call`] with the prediction supplied (and trained) by a
/// [`Predictor`].
///
/// The actual response — whether it came back optimistically confirmed or
/// via rollback — is fed to [`Predictor::observe`], so mispredictions are
/// self-correcting.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn stream_call_predicted(
    ctx: &mut Ctx,
    server: ProcessId,
    request: impl Into<Value>,
    predictor: &mut impl Predictor,
) -> Hope<Value> {
    let request = request.into();
    let predicted = predictor.predict(&request);
    let response = stream_call(ctx, server, request.clone(), predicted)?;
    predictor.observe(&request, &response);
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve_verified;
    use hope_runtime::{SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology, VirtualDuration};

    #[test]
    fn memo_predictor_learns_keys() {
        let mut p = MemoPredictor::new(Value::Int(0));
        assert!(p.is_empty());
        assert_eq!(p.predict(&Value::Int(1)), Value::Int(0));
        p.observe(&Value::Int(1), &Value::Int(42));
        assert_eq!(p.predict(&Value::Int(1)), Value::Int(42));
        assert_eq!(p.predict(&Value::Int(2)), Value::Int(0));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn last_value_predictor_strides() {
        let mut p = LastValuePredictor::with_stride(10);
        assert_eq!(p.predict(&Value::Unit), Value::Int(10), "typed cold start");
        p.observe(&Value::Unit, &Value::Int(5));
        assert_eq!(p.predict(&Value::Unit), Value::Int(15));
        let mut plain = LastValuePredictor::new();
        plain.observe(&Value::Unit, &Value::Str("x".into()));
        assert_eq!(plain.predict(&Value::Unit), Value::Str("x".into()));
    }

    #[test]
    fn predicted_calls_self_correct_across_rollbacks() {
        // A counter service with a mid-stream regime change: the stride
        // predictor hits until the jump, rolls back exactly once there,
        // learns the new level, and hits again.
        let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(5)));
        let server = hope_runtime::ProcessId(1);
        let mut sim = Simulation::new(SimConfig::with_seed(2).topology(topo));
        sim.spawn("client", move |ctx| {
            let mut predictor = LastValuePredictor::with_stride(1);
            let mut seen = Vec::new();
            for _ in 0..6 {
                let v = stream_call_predicted(ctx, server, Value::Unit, &mut predictor)?;
                seen.push(v.expect_int());
            }
            ctx.output(format!("seen={seen:?}"))?;
            Ok(())
        });
        sim.spawn("server", |ctx| {
            let mut counter = 0i64;
            let mut calls = 0u32;
            serve_verified(
                ctx,
                VirtualDuration::from_micros(50),
                move |_| {
                    calls += 1;
                    counter += if calls == 4 { 7 } else { 1 };
                    Value::Int(counter)
                },
                |_| {},
            )
        });
        let report = sim.run();
        assert!(report.errors().is_empty(), "{report}");
        assert_eq!(report.output_lines(), vec!["seen=[1, 2, 3, 10, 11, 12]"]);
        // Exactly one misprediction: the regime change.
        assert_eq!(report.stats().rollback_events, 1, "{report}");
    }
}
