//! Plain-text result tables, one per experiment.

use std::fmt;

/// An aligned, markdown-compatible results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Create a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn push(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
    }

    /// Append a footnote rendered under the table.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Cell at `(row, col)` for programmatic checks in tests.
    pub fn cell(&self, row: usize, col: usize) -> Option<&str> {
        self.rows.get(row)?.get(col).map(String::as_str)
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The footnotes.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }
}

/// Render experiment tables as JSON: an array of experiment objects, each
/// with its `experiment` id, `title`, `headers`, `notes`, and `rows` —
/// every row an object keyed by the column headers, all values strings.
/// Hand-rolled; the workspace deliberately carries no serde.
pub fn tables_to_json(tables: &[(&str, Table)]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    fn str_array(items: &[String]) -> String {
        let quoted: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
        format!("[{}]", quoted.join(", "))
    }
    let mut out = String::from("[\n");
    for (i, (id, t)) in tables.iter().enumerate() {
        out.push_str("  {\n");
        out.push_str(&format!("    \"experiment\": \"{}\",\n", esc(id)));
        out.push_str(&format!("    \"title\": \"{}\",\n", esc(t.title())));
        out.push_str(&format!("    \"headers\": {},\n", str_array(t.headers())));
        out.push_str(&format!("    \"notes\": {},\n", str_array(t.notes())));
        out.push_str("    \"rows\": [\n");
        for (j, row) in t.rows().iter().enumerate() {
            let fields: Vec<String> = t
                .headers()
                .iter()
                .zip(row)
                .map(|(h, cell)| format!("\"{}\": \"{}\"", esc(h), esc(cell)))
                .collect();
            out.push_str(&format!("      {{{}}}", fields.join(", ")));
            out.push_str(if j + 1 < t.rows().len() { ",\n" } else { "\n" });
        }
        out.push_str("    ]\n");
        out.push_str(if i + 1 < tables.len() {
            "  },\n"
        } else {
            "  }\n"
        });
    }
    out.push_str("]\n");
    out
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "## {}", self.title)?;
        write!(f, "|")?;
        for (h, w) in self.headers.iter().zip(&widths) {
            write!(f, " {h:>w$} |", w = w)?;
        }
        writeln!(f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            write!(f, "|")?;
            for (cell, w) in row.iter().zip(&widths) {
                write!(f, " {cell:>w$} |", w = w)?;
            }
            writeln!(f)?;
        }
        for n in &self.notes {
            writeln!(f, "> {n}")?;
        }
        Ok(())
    }
}

/// Format a millisecond quantity compactly.
pub fn fmt_ms(ms: f64) -> String {
    if ms >= 100.0 {
        format!("{ms:.0}ms")
    } else if ms >= 1.0 {
        format!("{ms:.2}ms")
    } else {
        format!("{:.1}µs", ms * 1000.0)
    }
}

/// Format a ratio as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Demo", &["param", "value"]);
        t.push(vec!["rtt".into(), "30ms".into()]);
        t.push(vec!["long-parameter".into(), "1".into()]);
        t.note("a footnote");
        let s = t.to_string();
        assert!(s.contains("## Demo"));
        assert!(s.contains("| long-parameter |"));
        assert!(s.contains("> a footnote"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.cell(0, 1), Some("30ms"));
        assert_eq!(t.cell(5, 0), None);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn json_schema_has_ids_headers_notes_and_keyed_rows() {
        let mut t = Table::new("Demo \"quoted\"", &["param", "value"]);
        t.push(vec!["rtt".into(), "30ms".into()]);
        t.push(vec!["back\\slash".into(), "1".into()]);
        t.note("a note");
        let json = tables_to_json(&[("e99", t)]);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("]\n"));
        assert!(json.contains("\"experiment\": \"e99\""));
        assert!(json.contains("\"title\": \"Demo \\\"quoted\\\"\""));
        assert!(json.contains("\"headers\": [\"param\", \"value\"]"));
        assert!(json.contains("\"notes\": [\"a note\"]"));
        assert!(json.contains("{\"param\": \"rtt\", \"value\": \"30ms\"},"));
        assert!(json.contains("{\"param\": \"back\\\\slash\", \"value\": \"1\"}"));
        // Balanced brackets — a cheap well-formedness check without a
        // JSON parser in the workspace.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "braces balance"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(250.0), "250ms");
        assert_eq!(fmt_ms(2.5), "2.50ms");
        assert_eq!(fmt_ms(0.5), "500.0µs");
        assert_eq!(fmt_pct(0.425), "42.5%");
    }
}
