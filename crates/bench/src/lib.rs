//! # hope-bench — the experiment harness
//!
//! Regenerates every empirical artifact of the paper (and the extensions
//! this reproduction adds) as plain-text tables:
//!
//! | id  | artifact | module |
//! |-----|----------|--------|
//! | E1  | Figures 1–2, page printer latency | [`experiments::e1_callstream`] |
//! | E2  | §7 "up to 80%" gain vs chain length | [`experiments::e2_chain`] |
//! | E3  | §3.1 latency arithmetic | [`experiments::e3_arithmetic`] |
//! | E4  | gain vs prediction accuracy | [`experiments::e4_accuracy`] |
//! | E5  | Theorem 5.1 cascade reach | [`experiments::e5_cascade`] |
//! | E6  | §2 Time Warp subsumption (PHOLD) | [`experiments::e6_timewarp`] |
//! | E7  | §7 optimistic replication | [`experiments::e7_replication`] |
//! | E8  | §7 checkpoint/tracking ablation | [`experiments::e8_ablation`] |
//! | E10 | §1/§2 optimistic recovery | [`experiments::e10_recovery`] |
//! | E11 | §7 numerical computation (ref \[7\]) | [`experiments::e11_numeric`] |
//! | E12 | §7 truth maintenance (ref \[12\]) | [`experiments::e12_tms`] |
//! | E13 | §7 co-operative work (ref \[5\]) | [`experiments::e13_coedit`] |
//! | E14 | cost-model calibration | [`experiments::e14_costmodel`] |
//! | E15 | DepSet vs BTreeSet hot paths | [`experiments::e15_depset`] |
//! | E16 | chaos: throughput vs fault rate | [`experiments::e16_chaos`] |
//! | E17 | model checking: DPOR reduction, schedule-complete verdicts | [`experiments::e17_mc`] |
//! | E18 | sharded-engine scaling: steps/s vs cores | [`experiments::e18_sharding`] |
//! | E19 | memory vs commit horizon (fossil collection) | [`experiments::e19_memory`] |
//! | E20 | full DPOR + symmetry ladder, Simulation-layer exhaustion | [`experiments::e20_dpor`] |
//! | E21 | deny-storm admission control: governor off vs on | [`experiments::e21_governor`] |
//!
//! (E9, the theorem suite, runs under `cargo test` — see `tests/theorems.rs`
//! at the workspace root.)
//!
//! Run `cargo run -p hope-bench --release --bin tables` to print all
//! tables, or pass experiment ids (`e1 e6 …`) to select. The Criterion
//! benches under `benches/` measure host-time costs of the same scenarios.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
mod table;

pub use table::{fmt_ms, fmt_pct, tables_to_json, Table};

/// All experiment ids known to the `tables` binary, in order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Produce the table for one experiment id.
///
/// # Panics
///
/// Panics on an unknown id (the binary validates first).
pub fn table_for(id: &str) -> Table {
    match id {
        "e1" => experiments::e1_callstream::table(),
        "e2" => experiments::e2_chain::table(),
        "e3" => experiments::e3_arithmetic::table(),
        "e4" => experiments::e4_accuracy::table(),
        "e5" => experiments::e5_cascade::table(),
        "e6" => experiments::e6_timewarp::table(),
        "e7" => experiments::e7_replication::table(),
        "e8" => experiments::e8_ablation::table(),
        "e10" => experiments::e10_recovery::table(),
        "e11" => experiments::e11_numeric::table(),
        "e12" => experiments::e12_tms::table(),
        "e13" => experiments::e13_coedit::table(),
        "e14" => experiments::e14_costmodel::table(),
        "e15" => experiments::e15_depset::table(),
        "e16" => experiments::e16_chaos::table(),
        "e17" => experiments::e17_mc::table(),
        "e18" => experiments::e18_sharding::table(),
        "e19" => experiments::e19_memory::table(),
        "e20" => experiments::e20_dpor::table(),
        "e21" => experiments::e21_governor::table(),
        other => panic!("unknown experiment id {other:?} (known: {EXPERIMENT_IDS:?})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_produces_a_table() {
        // e3 is instant; the others are exercised by their own tests. Here
        // we only check the dispatch covers the cheap one and rejects junk.
        let t = table_for("e3");
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown experiment id")]
    fn unknown_id_panics() {
        table_for("e99");
    }
}
