//! **E11 — optimistic numerical computation (§7 future work, ref \[7\])**:
//! domain-decomposed Jacobi iteration with speculative halo exchange.
//!
//! Sweeps the halo-prediction tolerance: at `0` the optimistic solver
//! reproduces the synchronous solution exactly (every misprediction is
//! rolled back and repaired), paying rollbacks while the solution is
//! still moving; loosening the tolerance converts rollbacks into bounded
//! numerical error and latency wins.

use hope_numeric::{reference_sums, run, Problem};
use hope_sim::{LatencyModel, Topology, VirtualDuration};

use crate::table::{fmt_ms, Table};

/// One measured point.
#[derive(Debug, Clone)]
pub struct E11Row {
    /// Halo-prediction tolerance.
    pub tolerance: f64,
    /// Synchronous solver completion (virtual ms).
    pub sync_ms: f64,
    /// Optimistic solver completion (virtual ms).
    pub optimistic_ms: f64,
    /// Rollbacks in the optimistic run.
    pub rollbacks: u64,
    /// Max |committed − reference| over chunk sums.
    pub max_error: f64,
}

fn topo(link_ms: u64) -> Topology {
    Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(link_ms)))
}

/// Measure one tolerance point.
pub fn measure(tolerance: f64, link_ms: u64, seed: u64) -> E11Row {
    let problem = Problem {
        tolerance,
        ..Problem::default()
    };
    let sync = run(&problem, topo(link_ms), seed, false);
    let opt = run(&problem, topo(link_ms), seed, true);
    assert!(opt.report.errors().is_empty(), "{}", opt.report);
    let reference = reference_sums(&problem);
    let max_error = opt
        .sums
        .iter()
        .zip(&reference)
        .map(|(got, want)| (got.expect("chunk committed") - want).abs())
        .fold(0.0f64, f64::max);
    E11Row {
        tolerance,
        sync_ms: sync.report.end_time().as_millis_f64(),
        optimistic_ms: opt.report.end_time().as_millis_f64(),
        rollbacks: opt.report.stats().rollback_events,
        max_error,
    }
}

/// The default E11 table: tolerance sweep on 5 ms links.
pub fn table() -> Table {
    let mut t = Table::new(
        "E11: optimistic Jacobi halo exchange vs synchronous (4 chunks × 8 cells, 20 iters, 5ms links)",
        &["tolerance", "synchronous", "optimistic", "rollbacks", "max error"],
    );
    for tol in [0.0, 0.001, 0.01, 0.05, 0.25] {
        let r = measure(tol, 5, 11);
        t.push(vec![
            format!("{:.3}", r.tolerance),
            fmt_ms(r.sync_ms),
            fmt_ms(r.optimistic_ms),
            r.rollbacks.to_string(),
            format!("{:.2e}", r.max_error),
        ]);
    }
    t.note("tolerance 0 reproduces the synchronous solution exactly; loosening trades rollbacks for bounded error");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_tolerance_is_exact() {
        let r = measure(0.0, 2, 3);
        // Up to the 12-decimal text round-trip of the committed output.
        assert!(r.max_error < 1e-9, "{r:?}");
        assert!(r.rollbacks > 0, "{r:?}");
    }

    #[test]
    fn loose_tolerance_reduces_rollbacks_and_time() {
        let tight = measure(0.0, 5, 3);
        let loose = measure(0.25, 5, 3);
        assert!(loose.rollbacks < tight.rollbacks, "{tight:?} vs {loose:?}");
        assert!(
            loose.optimistic_ms <= tight.optimistic_ms,
            "{tight:?} vs {loose:?}"
        );
        assert!(loose.optimistic_ms < loose.sync_ms, "{loose:?}");
    }
}
