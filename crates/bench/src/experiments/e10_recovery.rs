//! **E10 — optimistic recovery (§1, §2, \[24\])**: output-commit latency of
//! optimistic vs synchronous logging under failures.
//!
//! The application must persist a log entry per step before its output may
//! escape. Synchronous logging waits out every flush; optimistic logging
//! assumes the flush will succeed and lets HOPE's output commit hold the
//! line — a lost entry (crash) denies the assumption and the application
//! transparently re-logs. The sweep shows the optimistic win shrinking as
//! the crash rate grows.

use hope_recovery::{run_app_optimistic, run_app_sync, run_stable_store};
use hope_runtime::{ProcessId, SimConfig, Simulation};
use hope_sim::{LatencyModel, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E10Row {
    /// Per-entry crash probability.
    pub crash_rate: f64,
    /// Synchronous-logging completion (virtual ms).
    pub sync_ms: f64,
    /// Optimistic-logging completion (virtual ms).
    pub optimistic_ms: f64,
    /// Rollbacks (recoveries) in the optimistic run.
    pub recoveries: u64,
}

fn run(optimistic: bool, crash_rate: f64, steps: u64, seed: u64) -> (f64, u64, usize) {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topo));
    let store = ProcessId(1);
    let app = sim.spawn("app", move |ctx| {
        if optimistic {
            run_app_optimistic(ctx, store, steps, us(200))
        } else {
            run_app_sync(ctx, store, steps, us(200))
        }
    });
    sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5), crash_rate));
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    (
        completion_ms(&report, app),
        report.stats().rollback_events,
        report.outputs().len(),
    )
}

/// Measure one crash-rate point with `steps` application steps.
pub fn measure(crash_rate: f64, steps: u64, seed: u64) -> E10Row {
    let (sync_ms, _, sync_outputs) = run(false, crash_rate, steps, seed);
    let (optimistic_ms, recoveries, opt_outputs) = run(true, crash_rate, steps, seed);
    assert_eq!(sync_outputs as u64, steps, "baseline commits every step");
    assert_eq!(opt_outputs as u64, steps, "optimism commits every step");
    E10Row {
        crash_rate,
        sync_ms,
        optimistic_ms,
        recoveries,
    }
}

/// The default E10 table: crash rate ∈ {0, 5, 10, 20, 40}% over 30 steps.
pub fn table() -> Table {
    let mut t = Table::new(
        "E10: optimistic vs synchronous logging (30 steps, 5ms flush, 4ms RTT)",
        &["crash rate", "synchronous", "optimistic", "recoveries"],
    );
    for rate in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let r = measure(rate, 30, 19);
        t.push(vec![
            format!("{:.0}%", r.crash_rate * 100.0),
            fmt_ms(r.sync_ms),
            fmt_ms(r.optimistic_ms),
            r.recoveries.to_string(),
        ]);
    }
    t.note(
        "every step's output still commits exactly once, in order — rollback is invisible outside",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_wins_without_failures() {
        let r = measure(0.0, 10, 3);
        assert_eq!(r.recoveries, 0);
        assert!(
            r.optimistic_ms < r.sync_ms,
            "flush latency must be hidden: {r:?}"
        );
    }

    #[test]
    fn failures_cost_recoveries_but_preserve_output() {
        let r = measure(0.3, 10, 3);
        assert!(r.recoveries > 0, "{r:?}");
        // measure() itself asserts all outputs commit.
    }
}
