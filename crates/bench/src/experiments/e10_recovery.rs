//! **E10 — optimistic recovery (§1, §2, \[24\])**: output-commit latency of
//! optimistic vs synchronous logging under injected failures.
//!
//! The application must persist a log entry per step before its output may
//! escape. Synchronous logging waits out every flush; optimistic logging
//! assumes the flush will succeed and lets HOPE's output commit hold the
//! line. Crashes are injected by a seeded [`FaultPlan`]: killing the
//! application denies its open stability assumptions (it recovers by
//! journal-prefix replay and re-logs), killing the store is pure downtime
//! ridden out by the reliable-send retry layer. The synchronous baseline
//! has no retry machinery, so its column is only meaningful in the
//! fault-free row.

use hope_recovery::{run_app_optimistic, run_app_sync, run_stable_store};
use hope_runtime::{FaultPlan, ProcessId, SimConfig, Simulation};
use hope_sim::{LatencyModel, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, Table};

/// One measured point.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Human-readable fault scenario.
    pub scenario: &'static str,
    /// Synchronous-logging completion (virtual ms); `None` when the
    /// scenario injects faults the baseline cannot survive.
    pub sync_ms: Option<f64>,
    /// Optimistic-logging completion (virtual ms).
    pub optimistic_ms: f64,
    /// Rollbacks (recoveries) in the optimistic run.
    pub recoveries: u64,
    /// Reliable-send retransmissions in the optimistic run.
    pub retries: u64,
}

fn run(optimistic: bool, plan: Option<FaultPlan>, steps: u64, seed: u64) -> (f64, u64, u64, usize) {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
    let mut config = SimConfig::with_seed(seed).with_topology(topo);
    if let Some(plan) = plan {
        config = config.with_faults(plan);
    }
    let mut sim = Simulation::new(config);
    let store = ProcessId(1);
    let app = sim.spawn("app", move |ctx| {
        if optimistic {
            run_app_optimistic(ctx, store, steps, us(200))
        } else {
            run_app_sync(ctx, store, steps, us(200))
        }
    });
    sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    (
        completion_ms(&report, app),
        report.stats().rollback_events,
        report.stats().faults.retries,
        report.outputs().len(),
    )
}

/// Measure one fault scenario with `steps` application steps. The
/// synchronous baseline only runs when `plan` is `None` (it deadlocks on a
/// lost flush acknowledgment — exactly the gap the optimistic retry layer
/// closes).
pub fn measure(scenario: &'static str, plan: Option<FaultPlan>, steps: u64, seed: u64) -> E10Row {
    let sync_ms = if plan.is_none() {
        let (t, _, _, sync_outputs) = run(false, None, steps, seed);
        assert_eq!(sync_outputs as u64, steps, "baseline commits every step");
        Some(t)
    } else {
        None
    };
    let (optimistic_ms, recoveries, retries, opt_outputs) = run(true, plan, steps, seed);
    assert_eq!(opt_outputs as u64, steps, "optimism commits every step");
    E10Row {
        scenario,
        sync_ms,
        optimistic_ms,
        recoveries,
        retries,
    }
}

/// The default E10 table: fault-free, app crashes, a store outage, and a
/// lossy link, over 30 steps.
pub fn table() -> Table {
    let mut t = Table::new(
        "E10: optimistic vs synchronous logging (30 steps, 5ms flush, 4ms RTT)",
        &[
            "faults",
            "synchronous",
            "optimistic",
            "recoveries",
            "retries",
        ],
    );
    let scenarios: Vec<(&'static str, Option<FaultPlan>)> = vec![
        ("none", None),
        (
            "1 app crash",
            Some(FaultPlan::new(19).kill(0, 25, Some(ms(3)))),
        ),
        (
            "2 app crashes",
            Some(
                FaultPlan::new(19)
                    .kill(0, 25, Some(ms(3)))
                    .kill(0, 80, Some(ms(3))),
            ),
        ),
        (
            "store outage (25ms)",
            Some(FaultPlan::new(19).kill(1, 20, Some(ms(25)))),
        ),
        ("lossy link (10%)", Some(FaultPlan::new(19).drop_rate(0.1))),
    ];
    for (scenario, plan) in scenarios {
        let r = measure(scenario, plan, 30, 19);
        t.push(vec![
            r.scenario.to_string(),
            r.sync_ms.map_or_else(|| "—".to_string(), fmt_ms),
            fmt_ms(r.optimistic_ms),
            r.recoveries.to_string(),
            r.retries.to_string(),
        ]);
    }
    t.note(
        "every step's output still commits exactly once, in order — recovery is invisible outside",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimistic_wins_without_failures() {
        let r = measure("none", None, 10, 3);
        assert_eq!(r.recoveries, 0);
        assert!(
            r.optimistic_ms < r.sync_ms.unwrap(),
            "flush latency must be hidden: {r:?}"
        );
    }

    #[test]
    fn app_crashes_cost_recoveries_but_preserve_output() {
        let plan = FaultPlan::new(3).kill(0, 15, Some(ms(3)));
        let r = measure("1 app crash", Some(plan), 10, 3);
        assert!(r.recoveries > 0, "{r:?}");
        // measure() itself asserts all outputs commit.
    }

    #[test]
    fn store_outage_costs_retries_but_preserves_output() {
        let plan = FaultPlan::new(5).kill(1, 12, Some(ms(25)));
        let r = measure("store outage", Some(plan), 10, 5);
        assert!(r.retries > 0, "{r:?}");
    }
}
