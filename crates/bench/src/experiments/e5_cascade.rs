//! **E5 — cascading rollback (Theorem 5.1, §5.6)**: cost and reach of a
//! deny as the dependency chain deepens.
//!
//! A speculative token rings through `n` processes, making each of them a
//! causal descendant of the origin's assumption. A single deny at the end
//! of the chain must roll back every process (the paper's global
//! consistency guarantee); we measure how much state that discards and
//! confirm the re-executed run converges.

use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology};

use super::{ms, us};
use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E5Row {
    /// Chain length (number of dependent processes).
    pub n: usize,
    /// Intervals discarded by the cascade.
    pub rolled_back_intervals: u64,
    /// Rollback events (per-process truncations).
    pub rollback_events: u64,
    /// Ghost messages dropped during recovery.
    pub ghosts: u64,
    /// Virtual completion time (ms).
    pub end_ms: f64,
}

/// Run one chain of length `n` and deny at the tail.
pub fn run_chain(n: usize) -> RunReport {
    assert!(n >= 1);
    let topo = Topology::uniform(LatencyModel::Fixed(ms(1)));
    let mut sim = Simulation::new(SimConfig::with_seed(3).topology(topo));
    // P0: origin — guesses, then sends the token (speculatively) to P1.
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        let flag = ctx.guess(x)?;
        ctx.compute(us(50))?;
        ctx.send(
            ProcessId(1),
            Value::List(vec![Value::Int(x.index() as i64), Value::Bool(flag)]),
        )?;
        ctx.output(format!("origin flag={flag}"))?;
        Ok(())
    });
    // P1..Pn-1: relays — receive (becoming dependent), compute, forward.
    for i in 1..n {
        let next = ProcessId((i + 1) as u32);
        sim.spawn(format!("relay{i}"), move |ctx| {
            let m = ctx.recv()?;
            ctx.compute(us(50))?;
            ctx.send(next, m.payload.clone())?;
            Ok(())
        });
    }
    // Pn: judge — denies the origin's assumption on first sight.
    sim.spawn("judge", move |ctx| {
        let m = ctx.recv()?;
        let items = m.payload.expect_list();
        let aid = hope_core::AidId::from_index(items[0].expect_int() as u64);
        let flag = items[1].as_bool().unwrap_or(false);
        ctx.compute(us(50))?;
        if flag {
            // First (speculative) token: refute the assumption. We are
            // dependent on it ourselves, so this also unwinds us.
            ctx.deny(aid)?;
        }
        ctx.output("judge done")?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    report
}

/// Measure one chain length.
pub fn measure(n: usize) -> E5Row {
    let report = run_chain(n);
    // Every process in the chain (plus origin and judge) must have rolled
    // back exactly once, and the re-executed (flag=false) token must have
    // reached the judge.
    let lines = report.output_lines();
    assert!(lines.contains(&"origin flag=false"), "{lines:?}");
    assert!(lines.contains(&"judge done"), "{lines:?}");
    E5Row {
        n,
        rolled_back_intervals: report.stats().engine.rolled_back_intervals,
        rollback_events: report.stats().rollback_events,
        ghosts: report.stats().ghosts_dropped,
        end_ms: report.end_time().as_millis_f64(),
    }
}

/// The default E5 table: n ∈ {1, 2, 4, 8, 16, 32, 64}.
pub fn table() -> Table {
    let mut t = Table::new(
        "E5: cascading rollback reach vs dependency chain length",
        &[
            "n",
            "rollback events",
            "intervals discarded",
            "ghosts",
            "completion",
        ],
    );
    for n in [1, 2, 4, 8, 16, 32, 64] {
        let r = measure(n);
        t.push(vec![
            r.n.to_string(),
            r.rollback_events.to_string(),
            r.rolled_back_intervals.to_string(),
            r.ghosts.to_string(),
            format!("{:.2}ms", r.end_ms),
        ]);
    }
    t.note("one deny at the tail unwinds the whole chain (Theorem 5.1); recovery re-runs it pessimistically");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cascade_reaches_every_process() {
        let r = measure(8);
        // origin + 7 relays + judge are all dependent: 9+ truncations.
        assert!(r.rollback_events >= 9, "{r:?}");
        assert!(r.rolled_back_intervals >= 9, "{r:?}");
        assert!(r.ghosts >= 1, "stale tokens must be ghost-filtered: {r:?}");
    }

    #[test]
    fn reach_scales_linearly() {
        let small = measure(4);
        let large = measure(16);
        assert!(large.rollback_events > small.rollback_events);
        assert!(large.end_ms > small.end_ms);
    }
}
