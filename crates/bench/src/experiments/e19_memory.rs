//! **E19 — memory vs commit horizon**: bounded-memory open-loop runs
//! under GVT-style fossil collection.
//!
//! A guesser iterates `aid_init → send → guess → compute`, checkpointing
//! its loop counter every iteration; a definite verifier affirms each
//! announced assumption. The affirm stream drags the engine's commit
//! horizon a short, latency-bound distance behind the guesser, so with
//! [`SimConfig::with_fossil_collection`] everything at or below the
//! horizon — interval records, AID records, journal prefixes — is
//! reclaimed as the run proceeds. The table sweeps run length over an
//! order of magnitude (plus a collection-off baseline at the smallest
//! size): live counts must stay flat while the horizon and the reclaimed
//! totals grow linearly. This is Time Warp's fossil collection recast on
//! the paper's semantics: the horizon is exactly the prefix Theorem 5.2
//! puts beyond any rollback's reach, so reclaiming it is transparent.

use hope_core::AidId;
use hope_runtime::{MemoryStats, ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology};

use super::us;
use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E19Row {
    /// Total guesses issued (iterations of the open loop).
    pub guesses: u64,
    /// Whether fossil collection ran.
    pub collect: bool,
    /// End-of-run memory footprint.
    pub memory: MemoryStats,
    /// Scheduler events processed.
    pub events: u64,
}

/// Run the open loop for `guesses` iterations and report the footprint.
///
/// # Panics
///
/// Panics if the run does not complete (both bodies finished, outputs
/// committed, no limits hit).
pub fn run(guesses: u64, collect: bool, seed: u64) -> E19Row {
    let n = guesses as i64;
    let cfg = SimConfig::with_seed(seed)
        .with_topology(Topology::uniform(LatencyModel::Fixed(us(50))))
        .with_max_events(8 * guesses.max(1_000))
        .with_fossil_collection(collect);
    let mut sim = Simulation::new(cfg);
    let verifier = ProcessId(1);
    sim.spawn("guesser", move |ctx| {
        let mut i = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while i < n {
            ctx.checkpoint(Value::Int(i))?;
            let aid = ctx.aid_init()?;
            ctx.send(verifier, Value::Int(aid.index() as i64))?;
            let _ = ctx.guess(aid)?;
            ctx.compute(us(100))?;
            i += 1;
        }
        ctx.output(format!("guessed {n}"))?;
        Ok(())
    });
    sim.spawn("verifier", move |ctx| {
        let mut seen = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while seen < n {
            ctx.checkpoint(Value::Int(seen))?;
            let m = ctx.recv()?;
            ctx.affirm(AidId::from_index(m.payload.expect_int() as u64))?;
            seen += 1;
        }
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "E19 run must complete: {report}");
    assert_eq!(report.output_lines(), vec![format!("guessed {n}")]);
    E19Row {
        guesses,
        collect,
        memory: report.stats().memory,
        events: report.events(),
    }
}

/// Build the E19 table for the given run lengths (collection on), prefixed
/// by a collection-off baseline at the smallest length.
pub fn table_with_sizes(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E19: live memory vs commit horizon (open loop, fossil collection, 100µs/step, 50µs link)",
        &[
            "guesses",
            "collection",
            "live intervals",
            "live aids",
            "live journal",
            "interval horizon",
            "reclaimed journal",
        ],
    );
    let smallest = *sizes.iter().min().expect("at least one size");
    let mut push = |r: E19Row| {
        t.push(vec![
            r.guesses.to_string(),
            if r.collect { "on" } else { "off" }.to_string(),
            r.memory.live_intervals.to_string(),
            r.memory.live_aids.to_string(),
            r.memory.live_journal_entries.to_string(),
            r.memory.interval_horizon.to_string(),
            r.memory.reclaimed_journal_entries.to_string(),
        ]);
    };
    push(run(smallest, false, 19));
    for &g in sizes {
        push(run(g, true, 19));
    }
    t.note(
        "live counts stay flat while the horizon tracks run length: memory is \
         O(speculation window), not O(run)",
    );
    t
}

/// The default E19 table: 100k → 1M guesses (the acceptance-criterion
/// sustained run), collection on, with a 100k collection-off baseline.
pub fn table() -> Table {
    table_with_sizes(&[100_000, 250_000, 500_000, 1_000_000])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_footprint_is_flat_while_horizon_grows() {
        let a = run(4_000, true, 19);
        let b = run(16_000, true, 19);
        // 4× the work: the horizon and reclaimed totals scale…
        assert!(b.memory.interval_horizon > 3 * a.memory.interval_horizon);
        assert!(
            b.memory.reclaimed_journal_entries > 3 * a.memory.reclaimed_journal_entries,
            "{a:?}\n{b:?}"
        );
        // …while live state does not (flat within a small factor).
        assert!(
            b.memory.live_intervals < 2 * a.memory.live_intervals.max(512),
            "{a:?}\n{b:?}"
        );
        assert!(
            b.memory.live_journal_entries < 2 * a.memory.live_journal_entries.max(2048),
            "{a:?}\n{b:?}"
        );
    }

    #[test]
    fn collection_off_keeps_everything() {
        let r = run(4_000, false, 19);
        assert_eq!(r.memory.reclaimed_intervals, 0);
        assert_eq!(r.memory.interval_horizon, 0);
        assert!(r.memory.live_intervals >= 4_000, "{r:?}");
    }
}
