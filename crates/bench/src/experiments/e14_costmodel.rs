//! **E14 — cost-model calibration**: the static cascade cost model
//! (`hope_analysis::cost`) against measured rollback work.
//!
//! The cost model assigns every guess site a *damage* score from the
//! may-IDO fixpoint alone: statements that may re-execute, checkpointed
//! statements preceding the speculation, and in-flight tagged messages a
//! deny would condemn. This experiment runs the same cascade chains the
//! model scores on the abstract machine, where a far-end deny actually
//! lands, and compares the prediction with what the rollback destroyed
//! (intervals discarded plus ghost messages dropped). Calibration means
//! the two columns *rank* the programs identically and track each other's
//! growth; the damage unit is abstract, so only ratios are meaningful.

use hope_analysis::cost::{self, SpeculationCost};
use hope_core::machine::Machine;
use hope_core::program::{Program, Stmt};

use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E14Row {
    /// Relay count (total processes = `relays + 2`).
    pub relays: usize,
    /// The cost model's damage score for the origin's guess.
    pub predicted: SpeculationCost,
    /// Intervals the deny's rollback discarded.
    pub rolled_back_intervals: u64,
    /// Ghost messages dropped during recovery.
    pub ghosts: u64,
}

impl E14Row {
    /// Measured rollback work: discarded intervals plus condemned
    /// messages, the dynamic counterpart of the damage score.
    pub fn measured(&self) -> u64 {
        self.rolled_back_intervals + self.ghosts
    }
}

/// The scored program: an origin guesses and forwards its tagged
/// dependence hop by hop through `relays` relays; the far end denies.
pub fn cascade_chain(relays: usize) -> Program {
    let mut code = vec![vec![Stmt::Guess(0), Stmt::Send { to: 1 }]];
    for r in 0..relays {
        code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Send { to: r + 2 }]);
    }
    code.push(vec![Stmt::Recv, Stmt::Compute, Stmt::Deny(0)]);
    Program::new(code)
}

/// Score and run one chain.
///
/// # Panics
///
/// Panics if the machine fails to finish or the deny triggers no rollback
/// — either would make the comparison meaningless.
pub fn measure(relays: usize) -> E14Row {
    let program = cascade_chain(relays);
    let costs = cost::rank(&program);
    assert_eq!(costs.len(), 1, "the chain has exactly one guess site");
    let mut m = Machine::new(program);
    let report = m.run(10_000);
    assert!(report.completed, "chain with {relays} relays must finish");
    let stats = m.engine().stats();
    assert!(stats.rollback_events > 0, "the deny must land");
    E14Row {
        relays,
        predicted: costs[0],
        rolled_back_intervals: stats.rolled_back_intervals,
        ghosts: stats.ghosts,
    }
}

/// The default E14 table: relays ∈ {0, 2, 4, 6, 8}.
pub fn table() -> Table {
    let mut t = Table::new(
        "E14: static damage score vs measured rollback work",
        &[
            "relays",
            "damage",
            "reexec",
            "checkpoint",
            "messages",
            "intervals discarded",
            "ghosts",
            "measured",
        ],
    );
    for relays in [0, 2, 4, 6, 8] {
        let r = measure(relays);
        t.push(vec![
            r.relays.to_string(),
            r.predicted.damage.to_string(),
            r.predicted.reexec.to_string(),
            r.predicted.checkpoint.to_string(),
            r.predicted.messages.to_string(),
            r.rolled_back_intervals.to_string(),
            r.ghosts.to_string(),
            r.measured().to_string(),
        ]);
    }
    t.note(
        "damage = checkpoint + reexec + 3*messages over the may-IDO fixpoint; \
         measured = intervals discarded + ghosts when the far-end deny lands",
    );
    t.note("both columns must rank the chains identically — the units differ, the order must not");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_and_measurement_rank_identically() {
        let rows: Vec<E14Row> = [0usize, 2, 4, 6, 8].into_iter().map(measure).collect();
        assert!(rows
            .windows(2)
            .all(|w| w[0].predicted.damage < w[1].predicted.damage));
        assert!(rows.windows(2).all(|w| w[0].measured() < w[1].measured()));
    }

    #[test]
    fn prediction_tracks_measurement_within_a_small_constant() {
        // The damage unit is abstract; calibration bounds the ratio. With
        // the default weights the chains sit near damage ≈ 2.6× measured,
        // and the ratio must stay in one small band across sizes rather
        // than drifting with n.
        for relays in [2usize, 4, 8] {
            let r = measure(relays);
            let ratio = r.predicted.damage as f64 / r.measured() as f64;
            assert!(
                (1.5..=4.0).contains(&ratio),
                "relays={relays}: damage {} vs measured {} (ratio {ratio:.2})",
                r.predicted.damage,
                r.measured()
            );
        }
    }
}
