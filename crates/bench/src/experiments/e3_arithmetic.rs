//! **E3 — §3.1's latency arithmetic**: how many instructions a blocked RPC
//! wastes.
//!
//! The paper: "the time required to send a photon from New York to Los
//! Angeles and back again is 30 milliseconds … A 100 MIPS CPU can execute
//! over 3 million instructions while waiting for a response from the
//! opposite coast." This table regenerates that arithmetic across link
//! classes and CPU speeds — the motivation every other experiment builds
//! on.

use hope_sim::{CpuModel, LatencyModel, VirtualDuration};

use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E3Row {
    /// One-way link latency.
    pub one_way: VirtualDuration,
    /// CPU speed in MIPS.
    pub mips: u64,
    /// Instructions executable during one blocked round trip.
    pub wasted_instructions: u64,
}

/// Compute the wasted instructions for one link/CPU pair.
pub fn measure(link: &LatencyModel, mips: u64) -> E3Row {
    let cpu = CpuModel::mips(mips);
    let one_way = link.mean();
    E3Row {
        one_way,
        mips,
        wasted_instructions: cpu.instructions_in(one_way * 2),
    }
}

/// The default E3 table.
pub fn table() -> Table {
    let mut t = Table::new(
        "E3: instructions wasted per synchronous RPC (§3.1)",
        &["link", "one-way", "cpu", "instructions / RPC"],
    );
    let links = [
        (
            "local pipe",
            LatencyModel::Fixed(VirtualDuration::from_micros(5)),
        ),
        ("LAN", LatencyModel::lan()),
        (
            "metro",
            LatencyModel::Fixed(VirtualDuration::from_millis(1)),
        ),
        ("coast-to-coast", LatencyModel::coast_to_coast()),
    ];
    for (name, link) in &links {
        for mips in [100, 1000] {
            let r = measure(link, mips);
            t.push(vec![
                name.to_string(),
                r.one_way.to_string(),
                format!("{} MIPS", r.mips),
                group_digits(r.wasted_instructions),
            ]);
        }
    }
    t.note("paper: 30ms RTT × 100 MIPS ⇒ over 3 million instructions");
    t
}

fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_number_reproduced() {
        let r = measure(&LatencyModel::coast_to_coast(), 100);
        assert_eq!(r.wasted_instructions, 3_000_000);
    }

    #[test]
    fn digit_grouping() {
        assert_eq!(group_digits(3_000_000), "3,000,000");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1_000), "1,000");
    }

    #[test]
    fn table_covers_all_links() {
        let t = table();
        assert_eq!(t.len(), 8);
    }
}
