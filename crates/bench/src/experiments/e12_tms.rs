//! **E12 — distributed truth maintenance (§7 future work, ref \[12\])**:
//! belief-revision cost vs contradiction density.
//!
//! Reasoners assume atoms from pools with an increasing number of nogood
//! pairs; each violation costs one judged `deny` plus a system-wide
//! retraction cascade. The table shows revisions and retraction traffic
//! growing with the contradiction density while the committed world stays
//! consistent.

use hope_sim::{LatencyModel, Topology, VirtualDuration};
use hope_tms::{run_tms, KnowledgeBase};

use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E12Row {
    /// Number of nogood pairs among the assumed atoms.
    pub nogoods: usize,
    /// Assumptions that survived.
    pub live: usize,
    /// Rollback events (judge + reasoners).
    pub rollbacks: u64,
    /// Ghost (retracted-in-flight) messages dropped.
    pub ghosts: u64,
    /// Virtual completion time (ms).
    pub end_ms: f64,
}

/// Build a world where two reasoners assume 2·`pairs_per_reasoner` atoms
/// and `nogoods` of the cross-reasoner pairs conflict.
pub fn measure(nogoods: usize, seed: u64) -> E12Row {
    let per = 4usize; // assumptions per reasoner
                      // Reasoner 0 assumes 1..=4, reasoner 1 assumes 11..=14; nogood pairs
                      // couple (1,11), (2,12), … up to the requested density.
    let a0: Vec<u32> = (1..=per as u32).collect();
    let a1: Vec<u32> = (11..=10 + per as u32).collect();
    let pairs: Vec<Vec<u32>> = (0..nogoods.min(per)).map(|i| vec![a0[i], a1[i]]).collect();
    let pair_refs: Vec<&[u32]> = pairs.iter().map(Vec::as_slice).collect();
    let kb = KnowledgeBase::new(&[], &pair_refs);
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(1)));
    let out = run_tms(&kb, &[a0, a1], topo, seed);
    assert!(out.report.errors().is_empty(), "{}", out.report);
    // The committed world must be consistent regardless of density.
    assert!(kb.violated(&kb.close(&out.live)).is_none());
    E12Row {
        nogoods: nogoods.min(per),
        live: out.live.len(),
        rollbacks: out.report.stats().rollback_events,
        ghosts: out.report.stats().ghosts_dropped,
        end_ms: out.report.end_time().as_millis_f64(),
    }
}

/// The default E12 table: 0–4 conflicting pairs between two reasoners.
pub fn table() -> Table {
    let mut t = Table::new(
        "E12: distributed TMS — belief revision vs contradiction density (2 reasoners × 4 assumptions)",
        &["nogood pairs", "surviving", "rollbacks", "ghosts", "completion"],
    );
    for nogoods in [0usize, 1, 2, 3, 4] {
        let r = measure(nogoods, 13);
        t.push(vec![
            r.nogoods.to_string(),
            r.live.to_string(),
            r.rollbacks.to_string(),
            r.ghosts.to_string(),
            format!("{:.1}ms", r.end_ms),
        ]);
    }
    t.note("each revision is one judged deny; HOPE's cascade retracts the consequences everywhere");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_conflicts_no_revisions() {
        let r = measure(0, 3);
        assert_eq!(r.rollbacks, 0, "{r:?}");
        assert_eq!(r.live, 8, "{r:?}");
    }

    #[test]
    fn density_drives_revisions() {
        let low = measure(1, 3);
        let high = measure(4, 3);
        assert!(high.rollbacks > low.rollbacks, "{low:?} vs {high:?}");
        assert!(high.live < low.live, "{low:?} vs {high:?}");
        // One of each conflicting pair survives.
        assert_eq!(high.live, 4, "{high:?}");
    }
}
