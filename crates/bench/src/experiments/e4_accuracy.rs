//! **E4 — optimism under imperfect assumptions**: gain vs prediction
//! accuracy.
//!
//! The paper's machinery is only worthwhile if mispredictions are rare
//! enough that latency saved exceeds work rolled back. This experiment
//! sweeps the probability `p` that a streamed call's prediction is
//! correct and locates the crossover where Call Streaming stops paying.

use hope_callstream::{serve_verified, stream_call, sync_call};
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, SimRng, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, fmt_pct, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E4Row {
    /// Probability a prediction is correct.
    pub accuracy: f64,
    /// Mean pessimistic completion (virtual ms).
    pub pessimistic_ms: f64,
    /// Mean optimistic completion (virtual ms).
    pub optimistic_ms: f64,
    /// Mean rollbacks per run.
    pub rollbacks: f64,
    /// Relative gain (negative once rollback cost dominates).
    pub gain: f64,
}

/// Run one chain of `k` calls where each prediction is correct iff the
/// pre-drawn pattern says so. Returns (completion, rollbacks).
fn run_once(k: usize, rtt_ms: u64, pattern: Vec<bool>, optimistic: bool) -> (f64, u64) {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(rtt_ms) / 2));
    let mut sim = Simulation::new(SimConfig::with_seed(13).topology(topo));
    let server = ProcessId(1);
    let client = sim.spawn("client", move |ctx| {
        let mut x: i64 = 1;
        for &correct in pattern.iter().take(k) {
            let truth = x * 2;
            let result = if optimistic {
                let predicted = if correct { truth } else { truth + 1 };
                stream_call(ctx, server, Value::Int(x), Value::Int(predicted))?
            } else {
                sync_call(ctx, server, Value::Int(x))?
            };
            x = result.expect_int();
        }
        ctx.output(format!("x={x}"))?;
        Ok(())
    });
    sim.spawn("server", |ctx| {
        serve_verified(ctx, us(100), |v| Value::Int(v.expect_int() * 2), |_| {})
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    assert_eq!(
        report.output_lines(),
        vec![format!("x={}", 1i64 << k)],
        "mispredictions must not change the answer"
    );
    (
        completion_ms(&report, client),
        report.stats().rollback_events,
    )
}

/// Measure one accuracy point, averaged over `trials` pre-drawn patterns.
pub fn measure(accuracy: f64, k: usize, rtt_ms: u64, trials: u64) -> E4Row {
    let mut rng = SimRng::new(1000 + (accuracy * 1000.0) as u64);
    let mut tot_p = 0.0;
    let mut tot_o = 0.0;
    let mut tot_rb = 0u64;
    for _ in 0..trials {
        let pattern: Vec<bool> = (0..k).map(|_| rng.chance(accuracy)).collect();
        let (tp, _) = run_once(k, rtt_ms, pattern.clone(), false);
        let (to, rb) = run_once(k, rtt_ms, pattern, true);
        tot_p += tp;
        tot_o += to;
        tot_rb += rb;
    }
    let p = tot_p / trials as f64;
    let o = tot_o / trials as f64;
    E4Row {
        accuracy,
        pessimistic_ms: p,
        optimistic_ms: o,
        rollbacks: tot_rb as f64 / trials as f64,
        gain: (p - o) / p,
    }
}

/// The default E4 table: accuracy ∈ {1.0 … 0.0}, k = 6 calls, 30 ms RTT.
pub fn table() -> Table {
    let mut t = Table::new(
        "E4: Call Streaming gain vs prediction accuracy (k=6, 30ms RTT)",
        &["accuracy", "pessimistic", "optimistic", "rollbacks", "gain"],
    );
    for acc in [1.0, 0.9, 0.75, 0.5, 0.25, 0.0] {
        let r = measure(acc, 6, 30, 5);
        t.push(vec![
            format!("{:.0}%", r.accuracy * 100.0),
            fmt_ms(r.pessimistic_ms),
            fmt_ms(r.optimistic_ms),
            format!("{:.1}", r.rollbacks),
            fmt_pct(r.gain),
        ]);
    }
    t.note(
        "gain shrinks with accuracy; even at 0% the deny ships the true answer, bounding the loss",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_accuracy_matches_e2_shape() {
        let r = measure(1.0, 6, 30, 2);
        assert!(r.gain > 0.6, "{r:?}");
        assert_eq!(r.rollbacks, 0.0);
    }

    #[test]
    fn gain_degrades_with_accuracy() {
        let hi = measure(1.0, 4, 30, 3);
        let lo = measure(0.0, 4, 30, 3);
        assert!(lo.gain < hi.gain, "hi={hi:?} lo={lo:?}");
        assert!(lo.rollbacks >= 1.0);
    }
}
