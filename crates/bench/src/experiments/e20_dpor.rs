//! **E20 — full Flanagan–Godefroid DPOR with symmetry reduction, and
//! exhaustive schedule checking at the `Simulation`/`Ctx` layer.**
//!
//! Two measurements in one table:
//!
//! 1. **Machine-program reduction ladder.** Every program in each corpus
//!    is explored under four modes — `Naive` (no cache, no reduction),
//!    `SleepSet` (the PR-5 baseline: canonical-state cache + sleep sets +
//!    persistent singletons), `Dpor` (per-state dynamic backtracking sets
//!    with vector-clock happens-before filtering), and `DporSym` (DPOR
//!    plus symmetry reduction over process renamings, the default every
//!    consumer uses). Per mode: total transitions and wall time. All four
//!    modes must agree on every program's observable verdict (pristine
//!    witness existence and distinct committed outcomes) — disagreement
//!    panics. DPOR+symmetry must reduce strictly harder than the sleep-set
//!    baseline on the generated corpus, i.e. beat the 18.8× recorded in
//!    `BENCH_e17.json`.
//!
//! 2. **Simulation-layer exhaustion.** Three closure-bodied scenarios —
//!    real [`hope_runtime::Ctx`] bodies under the event-driven scheduler,
//!    including `send_reliable` retransmission timers — are exhaustively
//!    schedule-checked with [`hope_runtime::mc::check_scenario`]. Each row
//!    must come back [`Exhausted`](hope_runtime::SimCompleteness): the
//!    outcome set is proven complete, not sampled.

use std::time::Instant;

use hope_core::program::Program;
use hope_mc::{check, McConfig, McReport, Mode};
use hope_runtime::mc::{check_scenario, SimMcConfig, SimMcReport};
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::VirtualTime;

use crate::table::Table;

use super::e17_mc::{corpus_7_4, corpus_generated};
use super::ms;

/// One mode's aggregate over a corpus.
#[derive(Debug, Clone)]
pub struct ModeTotals {
    /// Mode measured.
    pub mode: Mode,
    /// Transitions summed over the corpus.
    pub transitions: u64,
    /// Canonical states summed over the corpus.
    pub states: u64,
    /// Wall time for the whole corpus under this mode.
    pub wall_ms: f64,
}

/// The reduction ladder for one corpus: totals for each mode, in the
/// order naive, sleep-set, DPOR, DPOR+symmetry.
#[derive(Debug, Clone)]
pub struct E20Row {
    /// Corpus label.
    pub corpus: String,
    /// Programs explored.
    pub programs: usize,
    /// Per-mode totals, index-aligned with [`LADDER`].
    pub totals: Vec<ModeTotals>,
}

/// The four modes of the ladder, weakest reduction first.
pub const LADDER: [Mode; 4] = [Mode::Naive, Mode::SleepSet, Mode::Dpor, Mode::DporSym];

impl E20Row {
    /// naive transitions / `mode` transitions.
    pub fn prune_ratio(&self, mode: Mode) -> f64 {
        let naive = self.totals[0].transitions;
        let m = self
            .totals
            .iter()
            .find(|t| t.mode == mode)
            .expect("mode in ladder");
        naive as f64 / m.transitions.max(1) as f64
    }
}

/// The facts every mode must agree on for one program.
fn verdict_digest(report: &McReport, program: &Program, mode: Mode) -> (bool, usize) {
    assert!(
        report.completeness.is_exhausted(),
        "E20 corpus program exceeded the budget under {mode:?}:\n{program}"
    );
    (report.pristine_witness.is_some(), report.distinct_outputs())
}

/// Explore `programs` under the whole ladder, asserting verdict agreement
/// between all four modes on every program.
///
/// # Panics
///
/// Panics if any mode's verdict digest (pristine-witness existence,
/// distinct committed outcomes) differs from `Naive`'s on any program, or
/// if any exploration exceeds its budget.
pub fn measure_ladder(corpus: &str, programs: &[Program]) -> E20Row {
    let mut totals = Vec::with_capacity(LADDER.len());
    let mut digests: Vec<Vec<(bool, usize)>> = Vec::with_capacity(LADDER.len());
    for mode in LADDER {
        let cfg = McConfig {
            mode,
            ..McConfig::default()
        };
        let start = Instant::now();
        let mut transitions = 0u64;
        let mut states = 0u64;
        let mut digest = Vec::with_capacity(programs.len());
        for program in programs {
            let report = check(program, &cfg);
            transitions += report.transitions as u64;
            states += report.states as u64;
            digest.push(verdict_digest(&report, program, mode));
        }
        totals.push(ModeTotals {
            mode,
            transitions,
            states,
            wall_ms: start.elapsed().as_secs_f64() * 1e3,
        });
        digests.push(digest);
    }
    for (i, program) in programs.iter().enumerate() {
        for (mode, digest) in LADDER.iter().zip(&digests).skip(1) {
            assert_eq!(
                digests[0][i], digest[i],
                "{mode:?} verdict disagrees with Naive on:\n{program}"
            );
        }
    }
    E20Row {
        corpus: corpus.to_string(),
        programs: programs.len(),
        totals,
    }
}

/// Scenario 1: two senders racing into one receiver — the canonical
/// cross-link delivery nondeterminism; exactly two committed outcomes.
pub fn sim_two_sender_race() -> Simulation {
    let mut sim = Simulation::new(SimConfig::with_seed(7));
    sim.spawn("receiver", |ctx| {
        let a = ctx.recv()?;
        let b = ctx.recv()?;
        ctx.output(format!(
            "got {} then {}",
            a.payload.expect_int(),
            b.payload.expect_int()
        ))?;
        Ok(())
    });
    let receiver = ProcessId(0);
    sim.spawn("alice", move |ctx| {
        ctx.send(receiver, Value::Int(1))?;
        Ok(())
    });
    sim.spawn("bob", move |ctx| {
        ctx.send(receiver, Value::Int(2))?;
        Ok(())
    });
    sim
}

/// Scenario 2: the paper's Figure-2 skeleton — a worker that guesses and
/// speculatively outputs, and a worrywart that affirms. Schedule-invariant
/// by the HOPE semantics: every interleaving must commit the same line.
pub fn sim_guess_affirm() -> Simulation {
    let mut sim = Simulation::new(SimConfig::with_seed(1));
    let worrywart = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let aid = ctx.aid_init()?;
        ctx.send(worrywart, Value::Int(i64::from(aid.index() as u32)))?;
        if ctx.guess(aid)? {
            ctx.output("summary printed on current page")?;
        } else {
            ctx.output("new page forced")?;
        }
        Ok(())
    });
    sim.spawn("worrywart", |ctx| {
        let msg = ctx.recv()?;
        let aid = hope_core::AidId::from_index(msg.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.affirm(aid)?;
        Ok(())
    });
    sim
}

/// Scenario 3: `send_reliable` under its retransmission timers — the
/// ack/deadline race branches, and a virtual-time horizon bounds the
/// otherwise-infinite retry tree so exhaustion is reachable.
pub fn sim_reliable_retransmit() -> Simulation {
    let mut sim = Simulation::new(
        SimConfig::with_seed(11)
            .with_ack_timeout(ms(10))
            .with_max_virtual_time(VirtualTime::from_nanos(ms(35).as_nanos())),
    );
    sim.spawn("receiver", |ctx| {
        let m = ctx.recv()?;
        ctx.output(format!("received {}", m.payload.expect_int()))?;
        Ok(())
    });
    let receiver = ProcessId(0);
    sim.spawn("sender", move |ctx| {
        ctx.send_reliable(receiver, Value::Int(9))?;
        Ok(())
    });
    sim
}

/// Exhaustively check one simulation scenario, panicking unless the whole
/// reduced schedule space was covered.
pub fn exhaust_scenario(name: &str, build: impl Fn() -> Simulation) -> (SimMcReport, f64) {
    let start = Instant::now();
    let report = check_scenario(&SimMcConfig::default(), build);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.completeness.is_exhausted(),
        "scenario {name:?} not exhausted: {report:?}"
    );
    (report, wall_ms)
}

fn mode_cell(t: &ModeTotals) -> String {
    format!("{} ({:.0}ms)", t.transitions, t.wall_ms)
}

fn push_ladder_row(t: &mut Table, r: &E20Row) {
    t.push(vec![
        r.corpus.clone(),
        r.programs.to_string(),
        mode_cell(&r.totals[0]),
        mode_cell(&r.totals[1]),
        mode_cell(&r.totals[2]),
        mode_cell(&r.totals[3]),
        format!("{:.1}x", r.prune_ratio(Mode::SleepSet)),
        format!("{:.1}x", r.prune_ratio(Mode::DporSym)),
        "agree (4 modes)".to_string(),
    ]);
}

fn push_sim_row(t: &mut Table, name: &str, report: &SimMcReport, wall_ms: f64) {
    t.push(vec![
        format!("sim: {name}"),
        format!("{} schedules", report.schedules),
        "—".to_string(),
        "—".to_string(),
        "—".to_string(),
        format!("{} choice pts ({wall_ms:.0}ms)", report.choice_points),
        "—".to_string(),
        "—".to_string(),
        format!(
            "exhausted, {} outcome(s){}",
            report.outcomes.len(),
            if report.limit_runs > 0 {
                format!(" [{} hit horizon]", report.limit_runs)
            } else {
                String::new()
            }
        ),
    ]);
}

/// The default E20 table: the reduction ladder on the 7⁴ envelope and two
/// generated corpora, plus the three exhausted simulation scenarios.
pub fn table() -> Table {
    let mut t = Table::new(
        "E20: DPOR + symmetry reduction ladder, and exhaustive Simulation-layer schedule checking",
        &[
            "corpus",
            "items",
            "naive tr",
            "sleepset tr",
            "dpor tr",
            "dpor+sym tr",
            "sleep prune",
            "sym prune",
            "verdicts",
        ],
    );
    let r4 = measure_ladder("7^4 two-proc", &corpus_7_4());
    let rg40 = measure_ladder("generated 2x4x2 (40 seeds)", &corpus_generated(40));
    let rg_big = measure_ladder("generated 2x4x2 (2750 seeds)", &corpus_generated(2750));

    // The acceptance bar: full DPOR + symmetry must reduce strictly harder
    // than the PR-5 sleep-set baseline on the generated corpus — the
    // baseline's 18.8x is recorded in BENCH_e17.json.
    assert!(
        rg40.prune_ratio(Mode::DporSym) > rg40.prune_ratio(Mode::SleepSet),
        "DPOR+symmetry must beat the sleep-set baseline: {:.2}x vs {:.2}x",
        rg40.prune_ratio(Mode::DporSym),
        rg40.prune_ratio(Mode::SleepSet),
    );
    assert!(
        rg40.prune_ratio(Mode::DporSym) > 18.8,
        "DPOR+symmetry must beat the recorded 18.8x baseline: {:.2}x",
        rg40.prune_ratio(Mode::DporSym),
    );
    assert!(
        rg_big.prune_ratio(Mode::DporSym) > rg_big.prune_ratio(Mode::SleepSet),
        "the win must survive scale: {:.2}x vs {:.2}x on 2750 seeds",
        rg_big.prune_ratio(Mode::DporSym),
        rg_big.prune_ratio(Mode::SleepSet),
    );

    push_ladder_row(&mut t, &r4);
    push_ladder_row(&mut t, &rg40);
    push_ladder_row(&mut t, &rg_big);

    let (race, race_ms) = exhaust_scenario("two-sender race", sim_two_sender_race);
    assert_eq!(race.outcomes.len(), 2, "both receive orders: {race:?}");
    let (fig2, fig2_ms) = exhaust_scenario("guess/affirm (Fig. 2)", sim_guess_affirm);
    assert!(fig2.agreed(), "Fig. 2 must be schedule-invariant: {fig2:?}");
    let (rel, rel_ms) = exhaust_scenario("send_reliable retransmit", sim_reliable_retransmit);
    assert!(rel.schedules >= 2, "ack/deadline race must branch: {rel:?}");
    push_sim_row(&mut t, "two-sender race", &race, race_ms);
    push_sim_row(&mut t, "guess/affirm (Fig. 2)", &fig2, fig2_ms);
    push_sim_row(&mut t, "send_reliable retransmit", &rel, rel_ms);

    t.note(
        "ladder rows: per-mode total transitions (wall ms); prune = naive transitions / mode \
         transitions. All four modes are asserted to agree on every program's pristine-witness \
         existence and distinct committed outcomes",
    );
    t.note(format!(
        "acceptance: DPOR+symmetry {:.1}x > sleep-set baseline {:.1}x (BENCH_e17 recorded 18.8x) \
         on the 40-seed generated corpus; {:.1}x vs {:.1}x on 2750 seeds",
        rg40.prune_ratio(Mode::DporSym),
        rg40.prune_ratio(Mode::SleepSet),
        rg_big.prune_ratio(Mode::DporSym),
        rg_big.prune_ratio(Mode::SleepSet),
    ));
    t.note(
        "sim rows: closure-bodied scenarios exhaustively schedule-checked at the Ctx layer via \
         hope_runtime::mc (CHESS-style stateless replay over the scheduler's reduced ready \
         sets); 'exhausted' means the outcome set is proven complete, not sampled. The \
         retransmit scenario bounds its unbounded retry tree with a 35ms virtual-time horizon",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_agrees_and_orders_on_a_small_generated_corpus() {
        let r = measure_ladder("gen smoke", &corpus_generated(8));
        assert_eq!(r.programs, 8);
        let tr: Vec<u64> = r.totals.iter().map(|t| t.transitions).collect();
        // Naive dominates everything; the reductions only remove work.
        assert!(tr[1] <= tr[0] && tr[2] <= tr[0] && tr[3] <= tr[0], "{tr:?}");
    }

    #[test]
    fn dpor_sym_beats_sleepset_on_the_40_seed_corpus() {
        // The E20 acceptance bar, cheap enough for the test suite: the
        // corpus behind BENCH_e17's 18.8x row.
        let r = measure_ladder("gen 40", &corpus_generated(40));
        assert!(
            r.prune_ratio(Mode::DporSym) > r.prune_ratio(Mode::SleepSet),
            "{:.2}x vs {:.2}x",
            r.prune_ratio(Mode::DporSym),
            r.prune_ratio(Mode::SleepSet),
        );
        assert!(r.prune_ratio(Mode::DporSym) > 18.8);
    }

    #[test]
    fn all_three_sim_scenarios_exhaust() {
        let (race, _) = exhaust_scenario("race", sim_two_sender_race);
        assert_eq!(race.outcomes.len(), 2);
        let (fig2, _) = exhaust_scenario("fig2", sim_guess_affirm);
        assert!(fig2.agreed());
        let (rel, _) = exhaust_scenario("rel", sim_reliable_retransmit);
        assert!(rel.schedules >= 2);
    }
}
