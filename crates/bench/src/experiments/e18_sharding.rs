//! **E18 — multi-core scaling of the sharded engine**: steps/s vs worker
//! count on an E15-class deep-inheritance workload.
//!
//! Four shards each host one process running a depth-`D` nested guess
//! chain (interval *k* inherits an IDO of size *k*, Equations 4–5) inside
//! one [`Engine::run_phase`] phase. The first guess of every chain names a
//! *foreign* shard's pre-phase AID, so every later interval of that chain
//! registers a cross-shard `DOM` edge — batched through the per-shard-pair
//! queues rather than locking the remote shard inline — and each shard
//! ends its script by affirming its own pre-phase AID, which defers to the
//! quiescent drain and cascades across the ownership boundary there.
//!
//! **Method (single-core container).** The benchmark host exposes one CPU,
//! so wall-clock time cannot show parallel speedup even though
//! `run_phase` really does spawn one thread per worker — worse, threads
//! timed while time-slicing one CPU inflate each other's `busy_ns`.
//! Instead the speedup is computed from *uncontended* components: the
//! workers-1 run (shards executed serially on one thread) yields each
//! shard's script time `busy_ns[si]` and the quiescent drain `drain_ns`.
//! Workers own shards round-robin (`shard % workers`), so the critical
//! path at `c` cores is `max over workers of (sum of its shards'
//! busy_ns) + drain_ns`, and `speedup(c) = serial / critical(c)` with
//! `serial = busy_total + drain_ns`. This is exact for the phase model —
//! a shard's execution is a pure function of (shard state, snapshot,
//! script), so its time does not depend on which thread runs it; the
//! threaded runs still execute for real and are asserted to perform
//! identical work. Best-of-five sampling defends against host noise, as
//! in E15.
//!
//! Before any timing, the phase run is checked against the sequential
//! (1-shard) engine driving the same logical ops: both must agree on
//! guesses, affirms, and intervals created, so the curve compares equal
//! work. The committed numbers live in `BENCH_e18.json`, regenerated with
//! `cargo run -p hope-bench --release --bin tables -- --json BENCH_e18.json e18`.

use hope_core::{AidId, Checkpoint, DrainOrder, Engine, OpAid, ProcessId, ShardOp};

use crate::table::Table;

const NSHARDS: usize = 4;

/// Best (minimum) over this many samples per configuration, as in E15.
const SAMPLES: u32 = 5;

// ---------------------------------------------------------------------
// Workload.
// ---------------------------------------------------------------------

/// Fresh 4-shard engine with one process and one pre-phase AID per shard.
fn build() -> (Engine, Vec<ProcessId>, Vec<AidId>) {
    let mut e = Engine::with_shards(NSHARDS);
    let procs: Vec<ProcessId> = (0..NSHARDS).map(|s| e.register_process_on(s)).collect();
    let pre: Vec<AidId> = procs.iter().map(|&p| e.aid_init(p)).collect();
    (e, procs, pre)
}

/// Shard `s`'s script: a depth-`depth` nested guess chain whose first
/// interval also guesses the *next* shard's pre-phase AID (every later
/// interval inherits it, so the chain emits `depth` cross-shard DOM
/// registrations), closed by a deferred affirm of shard `s`'s own
/// pre-phase AID.
fn script(s: usize, procs: &[ProcessId], pre: &[AidId], depth: usize) -> Vec<ShardOp> {
    let pid = procs[s];
    let mut ops = Vec::with_capacity(2 * depth + 1);
    for k in 0..depth {
        ops.push(ShardOp::AidInit { pid });
        let mut aids = vec![OpAid::New(k)];
        if k == 0 {
            aids.push(OpAid::Id(pre[(s + 1) % NSHARDS]));
        }
        ops.push(ShardOp::Guess {
            pid,
            aids,
            ps: Checkpoint(k as u64),
        });
    }
    ops.push(ShardOp::Affirm {
        pid,
        aid: OpAid::Id(pre[s]),
    });
    ops
}

/// One phase run: returns `(ops, busy_ns per shard, drain_ns, engine)`.
fn run_once(depth: usize, workers: usize) -> (u64, Vec<u64>, u64, Engine) {
    let (mut e, procs, pre) = build();
    let scripts: Vec<Vec<ShardOp>> = (0..NSHARDS)
        .map(|s| script(s, &procs, &pre, depth))
        .collect();
    let report = e
        .run_phase(scripts, workers, &DrainOrder::identity(NSHARDS))
        .expect("well-formed phase");
    (report.ops, report.busy_ns, report.drain_ns, e)
}

/// The same logical ops on the sequential 1-shard engine, shard-major —
/// the work-agreement oracle.
fn sequential_oracle(depth: usize) -> Engine {
    let (mut e, procs, pre) = {
        let mut e = Engine::new();
        let procs: Vec<ProcessId> = (0..NSHARDS).map(|_| e.register_process()).collect();
        let pre: Vec<AidId> = procs.iter().map(|&p| e.aid_init(p)).collect();
        (e, procs, pre)
    };
    for s in 0..NSHARDS {
        let p = procs[s];
        for k in 0..depth {
            let a = e.aid_init(p);
            let mut aids = vec![a];
            if k == 0 {
                aids.push(pre[(s + 1) % NSHARDS]);
            }
            e.guess(p, &aids, Checkpoint(k as u64))
                .expect("oracle guess");
        }
    }
    for s in 0..NSHARDS {
        e.affirm(procs[s], pre[s]).expect("oracle affirm");
    }
    e
}

/// Assert the phase engine performed exactly the oracle's work.
///
/// # Panics
///
/// Panics on any disagreement — the timing below would then compare
/// different computations.
pub fn assert_work_agreement(depth: usize) {
    let (_ops, _busy, _drain, phase) = run_once(depth, NSHARDS);
    let oracle = sequential_oracle(depth);
    assert_eq!(
        phase.stats().guesses,
        oracle.stats().guesses,
        "depth {depth}: phase and sequential engines disagree on guesses"
    );
    assert_eq!(
        phase.stats().definite_affirms,
        oracle.stats().definite_affirms,
        "depth {depth}: phase and sequential engines disagree on affirms"
    );
    assert_eq!(
        phase.interval_count(),
        oracle.interval_count(),
        "depth {depth}: phase and sequential engines disagree on intervals"
    );
}

// ---------------------------------------------------------------------
// Critical-path arithmetic.
// ---------------------------------------------------------------------

/// Critical path of a phase at `cores` workers: shards are bucketed
/// `shard % cores` (the `run_phase` assignment), workers run their
/// buckets serially, and the drain runs after all workers join.
pub fn critical_ns(busy_ns: &[u64], drain_ns: u64, cores: usize) -> u64 {
    let mut per_worker = vec![0u64; cores.max(1)];
    for (si, &b) in busy_ns.iter().enumerate() {
        per_worker[si % cores.max(1)] += b;
    }
    per_worker.iter().copied().max().unwrap_or(0) + drain_ns
}

/// One measured point of the scaling curve.
#[derive(Debug, Clone)]
pub struct E18Row {
    /// Chain depth per shard.
    pub depth: usize,
    /// Worker threads the phase ran with.
    pub cores: usize,
    /// Script ops executed across all shards.
    pub ops: u64,
    /// Sum of all shards' script nanoseconds (best sample).
    pub busy_total_ns: u64,
    /// Critical-path nanoseconds at this core count (best sample).
    pub critical_ns: u64,
    /// `ops / critical_ns`, in operations per second.
    pub steps_per_s: f64,
    /// Serial time over this core count's critical path.
    pub speedup: f64,
}

/// Measure the full curve for one depth: worker counts 1, 2, 4.
///
/// Per-shard busy times come from the **workers = 1** run (best of
/// `SAMPLES`): with one worker the shards run serially, so each
/// `busy_ns[si]` is an uncontended measurement. Timing the threaded runs
/// directly would double-count the single host CPU — concurrent workers
/// time-slice and inflate each other's wall-clock. The share-nothing
/// phase model is exactly what licenses this: a shard's script time is a
/// function of (shard state, snapshot, script), independent of which
/// thread runs it — so the threaded runs are kept as *validation* (they
/// must perform identical work) while the curve is the model applied to
/// uncontended components.
pub fn measure(depth: usize) -> Vec<E18Row> {
    assert_work_agreement(depth);
    // Uncontended components, best (minimum serial total) of SAMPLES.
    let mut best: Option<(u64, Vec<u64>, u64)> = None;
    for _ in 0..SAMPLES {
        let (ops, busy, drain, _e) = run_once(depth, 1);
        let total = busy.iter().sum::<u64>() + drain;
        let better = match &best {
            None => true,
            Some((_, b, d)) => total < b.iter().sum::<u64>() + d,
        };
        if better {
            best = Some((ops, busy, drain));
        }
    }
    let (ops, busy, drain_ns) = best.expect("SAMPLES > 0");
    let busy_total: u64 = busy.iter().sum();
    let serial_ns = busy_total + drain_ns;
    [1usize, 2, 4]
        .into_iter()
        .map(|cores| {
            // Really spawn `cores` worker threads and check the phase
            // performs byte-identical work before trusting the model.
            let (threaded_ops, _b, _d, e) = run_once(depth, cores);
            assert_eq!(threaded_ops, ops, "worker count changed the work");
            assert_eq!(e.tracking_stats().phases, 1);
            let critical = critical_ns(&busy, drain_ns, cores);
            E18Row {
                depth,
                cores,
                ops,
                busy_total_ns: busy_total,
                critical_ns: critical,
                steps_per_s: ops as f64 / (critical.max(1) as f64 / 1e9),
                speedup: serial_ns as f64 / critical.max(1) as f64,
            }
        })
        .collect()
}

/// All measured rows at the default sizes.
pub fn rows() -> Vec<E18Row> {
    let mut out = Vec::new();
    for depth in [256usize, 1024] {
        out.extend(measure(depth));
    }
    out
}

/// The default E18 table.
pub fn table() -> Table {
    let mut t = Table::new(
        "E18: sharded-engine scaling — steps/s vs cores (phase critical path)",
        &[
            "depth",
            "cores",
            "ops",
            "busy_total_ns",
            "critical_ns",
            "steps_per_s",
            "speedup",
        ],
    );
    for r in rows() {
        t.push(vec![
            r.depth.to_string(),
            r.cores.to_string(),
            r.ops.to_string(),
            r.busy_total_ns.to_string(),
            r.critical_ns.to_string(),
            format!("{:.0}", r.steps_per_s),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note(
        "4 shards, one deep-inheritance guess chain per shard (E15-class); \
         first guess of each chain names a foreign pre-phase AID, so every \
         chain interval ships one batched cross-shard DOM registration, and \
         the closing affirm cascades across shards at the quiescent drain",
    );
    t.note(
        "single-CPU container: speedup = serial / (max per-worker busy + \
         drain), the exact critical path of the share-nothing phase model, \
         computed from uncontended workers-1 components (threads timed \
         while time-slicing one CPU would inflate each other); the \
         threaded runs still execute and must perform identical work",
    );
    t.note(
        "work agreement with the sequential 1-shard engine (guesses, \
         affirms, intervals) is asserted before timing; times are \
         meaningful in --release only — see BENCH_e18.json",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_and_sequential_engines_agree_on_work() {
        assert_work_agreement(8);
    }

    #[test]
    fn phase_emits_cross_shard_traffic() {
        let depth = 8;
        let (_ops, _busy, _drain, e) = run_once(depth, NSHARDS);
        let tr = e.tracking_stats();
        // Each chain interval carries the foreign pre-AID in its IDO, so
        // each shard ships `depth` DOM registrations across the boundary,
        // plus the deferred affirm's cross-shard cascade notifications.
        assert!(
            tr.cross_shard_messages >= (NSHARDS * depth) as u64,
            "expected >= {} cross-shard messages, tracked {:?}",
            NSHARDS * depth,
            tr
        );
        assert!(tr.batch_flushes > 0);
        assert_eq!(tr.phases, 1);
    }

    #[test]
    fn critical_path_buckets_match_run_phase_assignment() {
        // Shards 0..4 with busy 10,20,30,40: one core sums to 100; two
        // cores bucket {0,2} and {1,3} -> max 60; four cores -> max 40.
        let busy = [10u64, 20, 30, 40];
        assert_eq!(critical_ns(&busy, 5, 1), 105);
        assert_eq!(critical_ns(&busy, 5, 2), 65);
        assert_eq!(critical_ns(&busy, 5, 4), 45);
    }

    #[test]
    fn small_curve_has_sane_shape() {
        // Debug-build times are meaningless for magnitude, but the model
        // quantities must be internally consistent.
        let rows = measure(16);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.ops, (NSHARDS * (2 * 16) + NSHARDS) as u64);
            assert!(r.critical_ns > 0);
            assert!(r.speedup > 0.0);
            assert!(r.steps_per_s > 0.0);
        }
    }
}
