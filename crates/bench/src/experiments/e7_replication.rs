//! **E7 — optimistic replication (§7 future work)**: update latency of
//! optimistic cached replicas vs a pessimistic primary-copy baseline,
//! swept over contention.
//!
//! Each client performs a sequence of writes against a primary-certified
//! store. With a large key pool writes rarely collide and the optimistic
//! replica hides the certification round trip; shrinking the pool raises
//! the conflict (and hence rollback) rate until the pessimistic discipline
//! catches up.

use hope_replication::{run_primary, Replica};
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E7Row {
    /// Number of concurrent client replicas.
    pub clients: usize,
    /// Number of distinct keys (smaller ⇒ more conflicts).
    pub keys: usize,
    /// Mean client completion, pessimistic (virtual ms).
    pub pessimistic_ms: f64,
    /// Mean client completion, optimistic (virtual ms).
    pub optimistic_ms: f64,
    /// Conflicts observed in the optimistic run.
    pub conflicts: u64,
    /// Rollback events in the optimistic run.
    pub rollbacks: u64,
}

fn run(clients: usize, keys: usize, writes: u64, optimistic: bool, seed: u64) -> (f64, u64, u64) {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(5)));
    let mut sim = Simulation::new(SimConfig::with_seed(seed).topology(topo));
    let primary = ProcessId(clients as u32);
    for c in 0..clients {
        sim.spawn(format!("client{c}"), move |ctx| {
            let mut rep = Replica::new(primary);
            for w in 0..writes {
                let key = format!("k{}", ctx.random_u64()? % keys as u64);
                let value = Value::Int((c as i64) * 1000 + w as i64);
                if optimistic {
                    rep.write_optimistic(ctx, &key, value)?;
                } else {
                    rep.write_pessimistic(ctx, &key, value)?;
                }
                ctx.compute(us(200))?;
            }
            ctx.output(format!("client{c} conflicts={}", rep.conflicts))?;
            Ok(())
        });
    }
    let replicas: Vec<ProcessId> = (0..clients as u32).map(ProcessId).collect();
    sim.spawn("primary", move |ctx| {
        run_primary(ctx, replicas.clone(), us(50), |_| {})
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    let mean_ms = (0..clients as u32)
        .map(|c| completion_ms(&report, ProcessId(c)))
        .sum::<f64>()
        / clients as f64;
    let conflicts: u64 = report
        .output_lines()
        .iter()
        .map(|l| {
            l.split("conflicts=")
                .nth(1)
                .unwrap()
                .parse::<u64>()
                .unwrap()
        })
        .sum();
    (mean_ms, conflicts, report.stats().rollback_events)
}

/// Measure one contention point.
pub fn measure(clients: usize, keys: usize, writes: u64, seed: u64) -> E7Row {
    let (p, _, _) = run(clients, keys, writes, false, seed);
    let (o, conflicts, rollbacks) = run(clients, keys, writes, true, seed);
    E7Row {
        clients,
        keys,
        pessimistic_ms: p,
        optimistic_ms: o,
        conflicts,
        rollbacks,
    }
}

/// The default E7 table: 4 clients × 8 writes, key pool ∈ {64, 8, 2, 1}.
pub fn table() -> Table {
    let mut t = Table::new(
        "E7: optimistic replication vs pessimistic primary copy (4 clients × 8 writes)",
        &[
            "keys",
            "pessimistic",
            "optimistic",
            "conflicts",
            "rollbacks",
        ],
    );
    for keys in [64, 8, 2, 1] {
        let r = measure(4, keys, 8, 31);
        t.push(vec![
            r.keys.to_string(),
            fmt_ms(r.pessimistic_ms),
            fmt_ms(r.optimistic_ms),
            r.conflicts.to_string(),
            r.rollbacks.to_string(),
        ]);
    }
    t.note("send-then-guess keeps the primary definite; conflicts roll the loser back and repair its cache");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_contention_favors_optimism() {
        let r = measure(3, 64, 5, 8);
        assert!(
            r.optimistic_ms < r.pessimistic_ms,
            "uncontended optimistic updates must win: {r:?}"
        );
    }

    #[test]
    fn contention_raises_conflicts() {
        let low = measure(3, 64, 5, 8);
        let high = measure(3, 1, 5, 8);
        assert!(high.conflicts > low.conflicts, "low={low:?} high={high:?}");
        assert!(high.rollbacks >= high.conflicts);
    }
}
