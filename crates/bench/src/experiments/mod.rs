//! The experiment suite: one module per table/figure/claim reproduced.
//!
//! Each module exposes a `table()` function producing the default
//! [`Table`](crate::Table) printed by the `tables` binary, plus
//! parameterized `run` helpers the Criterion benches and tests reuse. The
//! experiment ids (E1…E10) are indexed in `DESIGN.md` and their outcomes
//! recorded in `EXPERIMENTS.md`.

pub mod e10_recovery;
pub mod e11_numeric;
pub mod e12_tms;
pub mod e13_coedit;
pub mod e14_costmodel;
pub mod e15_depset;
pub mod e16_chaos;
pub mod e17_mc;
pub mod e18_sharding;
pub mod e19_memory;
pub mod e1_callstream;
pub mod e20_dpor;
pub mod e21_governor;
pub mod e2_chain;
pub mod e3_arithmetic;
pub mod e4_accuracy;
pub mod e5_cascade;
pub mod e6_timewarp;
pub mod e7_replication;
pub mod e8_ablation;

use hope_runtime::{ProcessId, RunReport};
use hope_sim::VirtualDuration;

/// Convenience: milliseconds.
pub fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

/// Convenience: microseconds.
pub fn us(v: u64) -> VirtualDuration {
    VirtualDuration::from_micros(v)
}

/// Completion of `pid` in virtual milliseconds: the later of its body
/// finishing and its last output committing. Optimistic bodies return
/// almost immediately; what matters is when their results become definite.
///
/// # Panics
///
/// Panics if the process neither finished nor committed any output.
pub fn completion_ms(report: &RunReport, pid: ProcessId) -> f64 {
    report
        .completion_time(pid)
        .unwrap_or_else(|| panic!("{pid} produced no results: {report}"))
        .as_millis_f64()
}
