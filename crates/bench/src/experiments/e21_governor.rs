//! **E21 — the optimism governor under deny storms**: goodput and tail
//! commit latency with admission control on vs off.
//!
//! The recovery application (optimistic logging over
//! [`Ctx::send_reliable`](hope_runtime::Ctx::send_reliable)) runs against
//! a stable store across a faulty link: E16-style drop sweeps plus a
//! *deny storm* — a blackout partition spanning most of the run during
//! which every retransmission times out, denying the "delivered"
//! assumption again and again. Rollback is given a real price
//! ([`SimConfig::rollback_overhead`]) so cascades cost virtual time, as
//! they cost real work on hardware.
//!
//! Each configuration runs twice: governor off (speculate always, roll
//! back on every timeout deny) and governor on (the deny-rate/damage
//! window throttles and then breaks the reliable-send site, converting
//! guesses into definite waits until calm returns). Three claims are
//! measured:
//!
//! * **fault-free parity** — with nothing to deny the governor never
//!   leaves Optimistic and the paired runs match within noise;
//! * **graceful degradation** — under storms, goodput improves and the
//!   p99 commit latency drops, because work stops being done twice;
//! * **transparency** — every paired run commits bit-identical outputs
//!   (asserted per row, not assumed).

use hope_recovery::{run_app_optimistic, run_stable_store};
use hope_runtime::{FaultPlan, GovernorConfig, ProcessId, SimConfig, Simulation};
use hope_sim::{LatencyModel, Topology, VirtualTime};

use super::{completion_ms, ms};
use crate::table::{fmt_ms, Table};

/// One fault configuration measured governor-off and governor-on.
#[derive(Debug, Clone)]
pub struct E21Row {
    /// Human label for the fault configuration.
    pub label: String,
    /// Completion (virtual ms), governor off / on.
    pub completion_ms: (f64, f64),
    /// Committed steps per virtual second, governor off / on.
    pub goodput: (f64, f64),
    /// p99 of per-line commit latency (committed_at − produced), ms.
    pub p99_commit_ms: (f64, f64),
    /// Rollback events, governor off / on.
    pub rollbacks: (u64, u64),
    /// Governor-on admission actions: guesses held (Throttled) and
    /// converted to waits (Conservative).
    pub held: u64,
    /// Guesses converted into definite waits by the breaker.
    pub converted: u64,
    /// Mode transitions recorded by the governor.
    pub transitions: u64,
}

/// The fault shape of one measured configuration.
#[derive(Debug, Clone, Copy)]
pub enum Storm {
    /// No faults at all: the parity row.
    None,
    /// Uniform per-delivery drop probability (the E16 sweep shape).
    Drops(f64),
    /// A blackout partition app↔store over `[from_ms, to_ms)` on top of a
    /// small background drop rate: every in-flight send times out until
    /// the link heals — a deny storm.
    Blackout(u64, u64),
}

impl Storm {
    fn plan(self, seed: u64) -> Option<FaultPlan> {
        match self {
            Storm::None => None,
            Storm::Drops(p) => Some(FaultPlan::new(seed ^ 0xC4A0).drop_rate(p)),
            Storm::Blackout(from, to) => Some(
                FaultPlan::new(seed ^ 0xC4A0)
                    .drop_rate(0.05)
                    .partition_between(
                        0,
                        1,
                        VirtualTime::ZERO + ms(from),
                        VirtualTime::ZERO + ms(to),
                    ),
            ),
        }
    }

    fn label(self) -> String {
        match self {
            Storm::None => "fault-free".into(),
            Storm::Drops(p) => format!("{:.0}% drops", p * 100.0),
            Storm::Blackout(from, to) => format!("blackout {from}–{to}ms + 5% drops"),
        }
    }
}

/// The governor tuning used throughout E21: evaluate early, throttle on
/// moderate deny pressure, break under sustained storms, probe back.
fn governor() -> GovernorConfig {
    GovernorConfig::default()
        .with_window(8)
        .with_min_samples(2)
        .with_thresholds(100, 500)
        .with_hold(ms(1))
        .with_probe_after(6)
}

struct RunOut {
    completion: f64,
    goodput: f64,
    p99: f64,
    rollbacks: u64,
    held: u64,
    converted: u64,
    transitions: u64,
    lines: Vec<String>,
}

fn run(storm: Storm, governed: bool, steps: u64, seed: u64) -> RunOut {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
    // A tight ack timeout makes deny storms dense (every blackout send
    // times out after 10ms, not 50), and a real rollback overhead makes
    // each cascade cost virtual time, as it costs real work on hardware.
    let mut config = SimConfig::with_seed(seed)
        .with_topology(topo)
        .with_ack_timeout(ms(10))
        .with_ack_backoff_cap(ms(40))
        .with_rollback_overhead(ms(10));
    if let Some(plan) = storm.plan(seed) {
        config = config.with_faults(plan);
    }
    if governed {
        config = config.with_governor(governor());
    }
    let mut sim = Simulation::new(config);
    let store = ProcessId(1);
    // 1ms per step spreads the app's sends across the storm window
    // instead of firing them all before the first fault lands.
    let app = sim.spawn("app", move |ctx| {
        run_app_optimistic(ctx, store, steps, ms(1))
    });
    sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    let completion = completion_ms(&report, app);
    let mut latencies: Vec<f64> = report
        .outputs()
        .iter()
        .map(|l| (l.committed_at - l.time).as_millis_f64())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let p99 = latencies
        .get(((latencies.len() as f64 * 0.99).ceil() as usize).saturating_sub(1))
        .copied()
        .unwrap_or(0.0);
    let g = report.stats().governor;
    RunOut {
        completion,
        goodput: steps as f64 / completion * 1000.0,
        p99,
        rollbacks: report.stats().rollback_events,
        held: g.held,
        converted: g.converted,
        transitions: g.transitions,
        lines: report
            .output_lines()
            .iter()
            .map(|s| s.to_string())
            .collect(),
    }
}

/// Measure one fault configuration governor-off and governor-on,
/// asserting the committed outputs of the pair are bit-identical (the
/// transparency claim, measured per row).
pub fn measure(storm: Storm, steps: u64, seed: u64) -> E21Row {
    let off = run(storm, false, steps, seed);
    let on = run(storm, true, steps, seed);
    assert_eq!(
        off.lines, on.lines,
        "governor changed committed outputs under {:?}",
        storm
    );
    E21Row {
        label: storm.label(),
        completion_ms: (off.completion, on.completion),
        goodput: (off.goodput, on.goodput),
        p99_commit_ms: (off.p99, on.p99),
        rollbacks: (off.rollbacks, on.rollbacks),
        held: on.held,
        converted: on.converted,
        transitions: on.transitions,
    }
}

/// The default E21 table: parity, drop sweeps, and a deny-storm blackout,
/// 40 steps each.
pub fn table() -> Table {
    let mut t = Table::new(
        "E21: goodput and p99 commit latency, governor off vs on (40 steps, 10ms rollback overhead, 4ms RTT)",
        &[
            "faults",
            "completion off/on",
            "steps/s off/on",
            "p99 commit off/on",
            "rollbacks off/on",
            "held",
            "converted",
            "transitions",
        ],
    );
    for storm in [
        Storm::None,
        Storm::Drops(0.1),
        Storm::Drops(0.3),
        Storm::Blackout(5, 120),
    ] {
        let r = measure(storm, 40, 23);
        t.push(vec![
            r.label.clone(),
            format!(
                "{} / {}",
                fmt_ms(r.completion_ms.0),
                fmt_ms(r.completion_ms.1)
            ),
            format!("{:.0} / {:.0}", r.goodput.0, r.goodput.1),
            format!(
                "{} / {}",
                fmt_ms(r.p99_commit_ms.0),
                fmt_ms(r.p99_commit_ms.1)
            ),
            format!("{} / {}", r.rollbacks.0, r.rollbacks.1),
            r.held.to_string(),
            r.converted.to_string(),
            r.transitions.to_string(),
        ]);
    }
    t.note("each row's committed outputs verified bit-identical governor-off vs governor-on");
    t.note(
        "fault-free row: governor never leaves Optimistic (zero held/converted), matching baseline",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_pair_matches_and_governor_stays_inert() {
        let r = measure(Storm::None, 10, 3);
        assert_eq!(r.held, 0, "{r:?}");
        assert_eq!(r.converted, 0, "{r:?}");
        assert_eq!(r.transitions, 0, "{r:?}");
        assert_eq!(r.rollbacks, (0, 0), "{r:?}");
        assert!(
            (r.completion_ms.0 - r.completion_ms.1).abs() < 1e-9,
            "an inert governor must not perturb virtual time: {r:?}"
        );
    }

    #[test]
    fn deny_storm_engages_governor_and_reduces_rollbacks() {
        let r = measure(Storm::Blackout(5, 120), 20, 3);
        assert!(
            r.held + r.converted > 0,
            "storm must engage the governor: {r:?}"
        );
        assert!(r.transitions > 0, "{r:?}");
        assert!(
            r.rollbacks.1 < r.rollbacks.0,
            "degradation must avoid rollback work: {r:?}"
        );
        // measure() itself asserts output equivalence.
    }
}
