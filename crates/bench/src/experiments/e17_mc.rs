//! **E17 — model checking: DPOR reduction and schedule-complete
//! verdicts**: what exhaustive exploration costs and what sampling missed.
//!
//! Three explorations of the same schedule spaces, per corpus:
//!
//! * **naive** — every interleaving, no canonical-state cache, no
//!   reduction: the raw size of the space;
//! * **stateful** — canonical-state memoization only;
//! * **dpor** — the full reduction (cache + sleep sets + persistent
//!   singletons), the configuration every consumer uses.
//!
//! Each corpus row also compares the *schedule-complete* pristine verdict
//! (does any schedule run to full finalization?) against the sampled
//! verdict the agreement suite used before `hope-mc` existed — a
//! round-robin schedule plus 12 seeded random schedules. Sampling may
//! *miss* pristine schedules (counted per corpus); it must never find one
//! the full space lacks (asserted zero — that would be a model-checker
//! soundness bug, not a sampling artefact).
//!
//! The two-process 7⁴ corpus is the honest place to measure reduction:
//! its programs actually interleave. The 7³ corpus is single-process —
//! exactly one schedule per program — so its naive/dpor ratio is 1 by
//! construction and is reported only as a baseline.

use hope_core::machine::{Event, Machine};
use hope_core::program::{Program, Stmt};
use hope_mc::{check, McConfig, McReport, Mode};

use crate::table::Table;

/// Seeded random schedules per program for the sampled verdict (matches
/// the pre-`hope-mc` agreement suite).
const SCHEDULE_SEEDS: u64 = 12;
/// Fuel per sampled run.
const FUEL: u64 = 500;

/// Aggregates for one corpus.
#[derive(Debug, Clone)]
pub struct E17Row {
    /// Corpus label.
    pub corpus: String,
    /// Programs explored.
    pub programs: usize,
    /// Transitions over all programs, naive exploration.
    pub naive_transitions: u64,
    /// Transitions, canonical-state cache only.
    pub stateful_transitions: u64,
    /// Transitions, full DPOR.
    pub dpor_transitions: u64,
    /// Canonical states, full DPOR.
    pub dpor_states: u64,
    /// naive / dpor transition ratio.
    pub prune_ratio: f64,
    /// Programs with a pristine schedule (schedule-complete verdict).
    pub pristine_full: usize,
    /// Programs the 13-schedule sample calls pristine.
    pub pristine_sampled: usize,
    /// Pristine programs whose witnesses all lie outside the sample.
    pub sampling_missed: usize,
}

/// Did this run reach full finalization? (Mirrors the agreement suite.)
fn pristine_under(program: &Program, seed: Option<u64>) -> bool {
    let mut m = Machine::new(program.clone());
    let report = match seed {
        None => m.run(FUEL),
        Some(s) => m.run_seeded(FUEL, s),
    };
    if !report.completed {
        return false;
    }
    let stats = m.engine().stats();
    stats.rollback_events == 0
        && stats.ghosts == 0
        && (0..program.process_count()).all(|p| {
            !m.engine().is_speculative(m.pid(p)).expect("registered pid")
                && m.history(p)
                    .states()
                    .iter()
                    .all(|s| !matches!(s.event, Event::Skipped { .. }))
        })
}

fn sampled_pristine(program: &Program) -> bool {
    pristine_under(program, None) || (0..SCHEDULE_SEEDS).any(|s| pristine_under(program, Some(s)))
}

fn explore(program: &Program, mode: Mode) -> McReport {
    let cfg = McConfig {
        mode,
        ..McConfig::default()
    };
    let report = check(program, &cfg);
    assert!(
        report.completeness.is_exhausted(),
        "E17 corpus program exceeded the budget under {mode:?}:\n{program}"
    );
    report
}

/// Explore every program in `programs` under all three modes and compare
/// full-space verdicts against sampled ones.
///
/// # Panics
///
/// Panics if any mode disagrees with another on a verdict, if sampling
/// finds a pristine schedule the full space lacks, or if any program
/// exceeds the exploration budget.
pub fn measure_corpus(corpus: &str, programs: &[Program]) -> E17Row {
    let mut row = E17Row {
        corpus: corpus.to_string(),
        programs: programs.len(),
        naive_transitions: 0,
        stateful_transitions: 0,
        dpor_transitions: 0,
        dpor_states: 0,
        prune_ratio: 0.0,
        pristine_full: 0,
        pristine_sampled: 0,
        sampling_missed: 0,
    };
    for program in programs {
        let naive = explore(program, Mode::Naive);
        let stateful = explore(program, Mode::Stateful);
        let dpor = explore(program, Mode::Dpor);
        // The three modes are three traversals of one space: they must
        // agree on everything observable.
        let full_pristine = dpor.pristine_witness.is_some();
        assert_eq!(naive.pristine_witness.is_some(), full_pristine, "{program}");
        assert_eq!(
            stateful.pristine_witness.is_some(),
            full_pristine,
            "{program}"
        );
        assert_eq!(
            naive.distinct_outputs(),
            dpor.distinct_outputs(),
            "{program}"
        );
        row.naive_transitions += naive.transitions as u64;
        row.stateful_transitions += stateful.transitions as u64;
        row.dpor_transitions += dpor.transitions as u64;
        row.dpor_states += dpor.states as u64;
        let sampled = sampled_pristine(program);
        assert!(
            full_pristine || !sampled,
            "sampling found a pristine schedule the full space lacks:\n{program}"
        );
        row.pristine_full += usize::from(full_pristine);
        row.pristine_sampled += usize::from(sampled);
        row.sampling_missed += usize::from(full_pristine && !sampled);
    }
    row.prune_ratio = row.naive_transitions as f64 / row.dpor_transitions.max(1) as f64;
    row
}

/// The 7-statement alphabet over one AID, `send` targeting `peer`.
fn alphabet(peer: usize) -> [Stmt; 7] {
    [
        Stmt::Guess(0),
        Stmt::Affirm(0),
        Stmt::Deny(0),
        Stmt::FreeOf(0),
        Stmt::Compute,
        Stmt::Send { to: peer },
        Stmt::Recv,
    ]
}

/// All 7³ single-process length-3 programs (one schedule each).
pub fn corpus_7_3() -> Vec<Program> {
    let mut v = Vec::new();
    for a in alphabet(0) {
        for b in alphabet(0) {
            for c in alphabet(0) {
                v.push(Program {
                    code: vec![vec![a, b, c]],
                    aid_count: 1,
                });
            }
        }
    }
    v
}

/// All 7⁴ two-process length-2 programs — the agreement envelope whose
/// interleavings the reduction is measured on.
pub fn corpus_7_4() -> Vec<Program> {
    let mut v = Vec::new();
    for a in alphabet(1) {
        for b in alphabet(1) {
            for c in alphabet(0) {
                for d in alphabet(0) {
                    v.push(Program {
                        code: vec![vec![a, b], vec![c, d]],
                        aid_count: 1,
                    });
                }
            }
        }
    }
    v
}

/// Seeded generated programs with genuinely large interleaving spaces.
pub fn corpus_generated(count: u64) -> Vec<Program> {
    (0..count).map(|s| Program::generate(s, 2, 4, 2)).collect()
}

fn push_row(t: &mut Table, r: &E17Row) {
    t.push(vec![
        r.corpus.clone(),
        r.programs.to_string(),
        r.naive_transitions.to_string(),
        r.stateful_transitions.to_string(),
        r.dpor_transitions.to_string(),
        format!("{:.1}x", r.prune_ratio),
        r.pristine_full.to_string(),
        r.pristine_sampled.to_string(),
        r.sampling_missed.to_string(),
    ]);
}

/// The default E17 table over the two exhaustive envelopes plus a
/// generated corpus.
pub fn table() -> Table {
    let mut t = Table::new(
        "E17: schedule-space exploration (naive vs stateful vs DPOR) and full-vs-sampled verdicts",
        &[
            "corpus",
            "programs",
            "naive trans",
            "stateful trans",
            "dpor trans",
            "prune",
            "pristine (full)",
            "pristine (13 scheds)",
            "missed by sampling",
        ],
    );
    let r3 = measure_corpus("7^3 single-proc", &corpus_7_3());
    let r4 = measure_corpus("7^4 two-proc", &corpus_7_4());
    let rg = measure_corpus("generated 2x4x2 (40 seeds)", &corpus_generated(40));
    assert!(
        r4.prune_ratio >= 2.0,
        "DPOR must prune the two-process envelope at least 2x: {:.2}",
        r4.prune_ratio
    );
    push_row(&mut t, &r3);
    push_row(&mut t, &r4);
    push_row(&mut t, &rg);
    t.note("prune = naive transitions / DPOR transitions; asserted >= 2x on the 7^4 corpus");
    t.note(
        "7^3 programs are single-process (exactly one schedule), so their ratio is 1x by \
         construction — the row is the no-concurrency baseline",
    );
    t.note(
        "verdicts: all three modes agree per program; sampling (round-robin + 12 seeded \
         schedules, the pre-hope-mc agreement suite) never finds a pristine schedule the \
         full space lacks (asserted). On these small envelopes sampling happens to find \
         every pristine program too — the last column counts where it would not have, \
         and only the full exploration *proves* the zero",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_corpus_modes_agree_and_reduce() {
        let r = measure_corpus("gen smoke", &corpus_generated(8));
        assert_eq!(r.programs, 8);
        assert!(r.dpor_transitions <= r.stateful_transitions);
        assert!(r.stateful_transitions <= r.naive_transitions);
    }

    #[test]
    fn two_proc_sample_prunes_at_least_2x() {
        // A slice of the 7^4 envelope (all programs with a leading guess
        // in P0) is enough to see the reduction working.
        let programs: Vec<Program> = corpus_7_4()
            .into_iter()
            .filter(|p| p.code[0][0] == Stmt::Guess(0))
            .collect();
        let r = measure_corpus("7^4 guess-slice", &programs);
        assert_eq!(r.programs, 343);
        assert!(
            r.prune_ratio >= 2.0,
            "expected >=2x reduction, got {:.2}",
            r.prune_ratio
        );
        assert_eq!(
            r.pristine_sampled + r.sampling_missed,
            r.pristine_full,
            "sampled + missed must partition the pristine programs"
        );
    }
}
