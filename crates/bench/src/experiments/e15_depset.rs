//! **E15 — DepSet hot-path microbenchmark**: the copy-on-write dependence
//! sets (`hope_core::depset`) against the `BTreeSet` representation the
//! engine used before them.
//!
//! The engine's hot paths are set-shaped: a nested guess inherits its
//! parent's IDO (Equations 4–5), an implicit guess materializes a tag,
//! an affirm removes one AID from every dominated interval, and a deny
//! walks the IDO of every discarded interval. With `BTreeSet` each
//! inheritance was a full O(n log n) copy — twice, in fact, because the
//! old `Engine::guess` cloned the set once for dependence bookkeeping and
//! once more for the interval record. `DepSet` makes inheritance an
//! `Arc` refcount bump, unions word-parallel, and membership O(1).
//!
//! The baseline here is a deliberately minimal in-module engine that
//! transcribes the *old* hot paths verbatim (including the double clone)
//! over `BTreeSet`, stripped of everything that is representation-neutral.
//! Both sides run the same three scenarios and must agree on the work
//! performed (intervals finalized or discarded) before their times are
//! compared; only the hot section is timed (`std::time::Instant`,
//! best-of-five batches), with scaffolding excluded on both sides.
//!
//! The committed numbers live in `BENCH_e15.json`, regenerated with
//! `cargo run -p hope-bench --release --bin tables -- --json BENCH_e15.json e15`.
//! Debug or test builds (where the shadow oracle is compiled in) are not
//! meaningful for timing; the unit tests below therefore check structure
//! and agreement only.

use std::collections::BTreeSet;
use std::time::Instant;

use hope_core::{AidId, Checkpoint, Effect, Engine, ProcessId};

use crate::table::Table;

// ---------------------------------------------------------------------
// Baseline: the pre-DepSet hot paths, transcribed over BTreeSet.
// ---------------------------------------------------------------------

struct OldInterval {
    owner: usize,
    ido: BTreeSet<u64>,
    live: bool,
}

/// A minimal engine keeping exactly the state the measured hot paths
/// touch: per-interval IDO sets, per-AID DOM sets, per-process interval
/// stacks. Decisions are definite (an external judge), as in the
/// scenarios driven on the real engine.
struct OldEngine {
    intervals: Vec<OldInterval>,
    doms: Vec<BTreeSet<usize>>,
    history: Vec<Vec<usize>>,
    finalized: u64,
    discarded: u64,
}

impl OldEngine {
    fn new(procs: usize, aids: usize) -> Self {
        OldEngine {
            intervals: Vec::new(),
            doms: vec![BTreeSet::new(); aids],
            history: vec![Vec::new(); procs],
            finalized: 0,
            discarded: 0,
        }
    }

    /// The old `Engine::guess` hot path: clone the parent's IDO, insert
    /// the guessed AID, register DOM edges, then clone the set *again*
    /// for the interval record (the double materialization the refactor
    /// removed).
    fn guess(&mut self, p: usize, x: u64) {
        let mut guessed = BTreeSet::new();
        guessed.insert(x);
        let mut ido = match self.history[p].last() {
            Some(&a) => self.intervals[a].ido.clone(),
            None => BTreeSet::new(),
        };
        ido.extend(guessed.iter().copied());
        let id = self.intervals.len();
        for &y in &ido {
            self.doms[y as usize].insert(id);
        }
        self.intervals.push(OldInterval {
            owner: p,
            ido: ido.clone(),
            live: true,
        });
        let _still_used_after_push = ido;
        self.history[p].push(id);
    }

    /// The old `Engine::implicit_guess` hot path: materialize the tag as
    /// the new interval's IDO — again with the literal's extra clone.
    fn implicit_guess(&mut self, p: usize, tag: &BTreeSet<u64>) {
        let ido = tag.clone();
        let id = self.intervals.len();
        for &y in &ido {
            self.doms[y as usize].insert(id);
        }
        self.intervals.push(OldInterval {
            owner: p,
            ido: ido.clone(),
            live: true,
        });
        let _still_used_after_push = ido;
        self.history[p].push(id);
    }

    /// The old definite-affirm path: take the AID's DOM, remove the AID
    /// from every dominated interval's IDO, finalize those that empty.
    fn affirm(&mut self, x: u64) {
        let dom = std::mem::take(&mut self.doms[x as usize]);
        for &b in &dom {
            let iv = &mut self.intervals[b];
            if !iv.live {
                continue;
            }
            iv.ido.remove(&x);
            if iv.ido.is_empty() {
                iv.live = false;
                self.finalized += 1;
                let owner = iv.owner;
                self.history[owner].retain(|&c| c != b);
            }
        }
    }

    /// The old definite-deny path with the `do_rollback` sweep: every
    /// dominated interval rolls its process back, discarding it and all
    /// later intervals of that process and unhooking each discarded
    /// IDO from the DOM sets — a clone plus a walk per interval.
    fn deny(&mut self, x: u64) {
        let dom = std::mem::take(&mut self.doms[x as usize]);
        for &b in &dom {
            if !self.intervals[b].live {
                continue;
            }
            let owner = self.intervals[b].owner;
            let pos = self.history[owner]
                .iter()
                .position(|&c| c == b)
                .expect("live interval is on its owner's stack");
            let doomed: Vec<usize> = self.history[owner].split_off(pos);
            for c in doomed {
                self.intervals[c].live = false;
                self.discarded += 1;
                let ido = self.intervals[c].ido.clone();
                for &y in &ido {
                    self.doms[y as usize].remove(&c);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Scenarios, driven identically on both engines.
// ---------------------------------------------------------------------

fn count_finalized(effects: &[Effect]) -> u64 {
    effects
        .iter()
        .filter(|e| matches!(e, Effect::Finalized { .. }))
        .count() as u64
}

/// Each scenario times only its hot section — engine construction,
/// process registration and `aid_init` are representation-neutral
/// scaffolding and are excluded on both sides.
type Sample = (u64, u64); // (work performed, hot-section nanoseconds)

fn new_chain(depth: usize) -> (Engine, ProcessId, ProcessId, Vec<AidId>) {
    let mut e = Engine::new();
    let p = e.register_process();
    let judge = e.register_process();
    let aids: Vec<AidId> = (0..depth).map(|_| e.aid_init(p)).collect();
    (e, p, judge, aids)
}

fn build_chain(e: &mut Engine, p: ProcessId, aids: &[AidId]) {
    for (i, &x) in aids.iter().enumerate() {
        e.guess(p, &[x], Checkpoint(i as u64)).unwrap();
    }
}

/// Deep inheritance, the tentpole scenario: one process nests `depth`
/// guesses, so interval *k* inherits an IDO of size *k* (Equations 4–5).
/// The old representation cloned that set twice per guess; DepSet bumps
/// a refcount and copy-on-writes once. Work = intervals created.
fn deep_old(depth: usize) -> Sample {
    let mut e = OldEngine::new(1, depth);
    let t0 = Instant::now();
    for x in 0..depth as u64 {
        e.guess(0, x);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    (e.intervals.len() as u64, ns)
}

fn deep_new(depth: usize) -> Sample {
    let (mut e, p, _judge, aids) = new_chain(depth);
    let t0 = Instant::now();
    build_chain(&mut e, p, &aids);
    let ns = t0.elapsed().as_nanos() as u64;
    (e.interval_count() as u64, ns)
}

/// Affirm drain: a definite judge affirms the chain's AIDs oldest-first
/// — O(depth^2) element removals on both representations. Work =
/// intervals finalized; only the affirm loop is timed.
fn drain_old(depth: usize) -> Sample {
    let mut e = OldEngine::new(1, depth);
    for x in 0..depth as u64 {
        e.guess(0, x);
    }
    let t0 = Instant::now();
    for x in 0..depth as u64 {
        e.affirm(x);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    (e.finalized, ns)
}

fn drain_new(depth: usize) -> Sample {
    let (mut e, p, judge, aids) = new_chain(depth);
    build_chain(&mut e, p, &aids);
    let t0 = Instant::now();
    let mut finalized = 0;
    for &x in &aids {
        finalized += count_finalized(&e.affirm(judge, x).unwrap());
    }
    let ns = t0.elapsed().as_nanos() as u64;
    (finalized, ns)
}

/// Fan-out: a depth-`depth` chain's dependence tag is inherited by
/// `width` fresh processes via implicit guess — `width` tag
/// materializations of a `depth`-element set. Work = intervals created;
/// only the implicit-guess loop is timed.
fn fanout_old(depth: usize, width: usize) -> Sample {
    let mut e = OldEngine::new(1 + width, depth);
    for x in 0..depth as u64 {
        e.guess(0, x);
    }
    let tag = e.intervals[depth - 1].ido.clone();
    let t0 = Instant::now();
    for q in 0..width {
        e.implicit_guess(1 + q, &tag);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    (e.intervals.len() as u64, ns)
}

fn fanout_new(depth: usize, width: usize) -> Sample {
    let (mut e, p, _judge, aids) = new_chain(depth);
    let receivers: Vec<ProcessId> = (0..width).map(|_| e.register_process()).collect();
    build_chain(&mut e, p, &aids);
    let tag = e.dependence_tag(p).unwrap();
    let t0 = Instant::now();
    for &q in &receivers {
        e.implicit_guess(q, &tag, Checkpoint(0)).unwrap();
    }
    let ns = t0.elapsed().as_nanos() as u64;
    (e.interval_count() as u64, ns)
}

/// Deny cascade: a depth-`depth` chain whose root assumption the judge
/// refutes, rolling the whole chain back. Work = intervals discarded;
/// only the deny is timed.
fn deny_old(depth: usize) -> Sample {
    let mut e = OldEngine::new(1, depth);
    for x in 0..depth as u64 {
        e.guess(0, x);
    }
    let t0 = Instant::now();
    e.deny(0);
    let ns = t0.elapsed().as_nanos() as u64;
    (e.discarded, ns)
}

fn deny_new(depth: usize) -> Sample {
    let (mut e, p, judge, aids) = new_chain(depth);
    build_chain(&mut e, p, &aids);
    let t0 = Instant::now();
    e.deny(judge, aids[0]).unwrap();
    let ns = t0.elapsed().as_nanos() as u64;
    (e.stats().rolled_back_intervals, ns)
}

// ---------------------------------------------------------------------
// Measurement.
// ---------------------------------------------------------------------

/// One measured point: the same scenario on both representations.
#[derive(Debug, Clone)]
pub struct E15Row {
    /// Scenario name (`deep-inheritance`, `fan-out`, `deny-cascade`).
    pub scenario: &'static str,
    /// Human-readable size (`depth=32`, `depth=32 width=256`, …).
    pub size: String,
    /// Intervals finalized or discarded — must agree across engines.
    pub work: u64,
    /// Mean host nanoseconds per run, `BTreeSet` baseline.
    pub baseline_ns: f64,
    /// Mean host nanoseconds per run, `DepSet` engine.
    pub depset_ns: f64,
}

impl E15Row {
    /// Baseline time over DepSet time; > 1 means DepSet is faster.
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.depset_ns
    }
}

/// Best (minimum) mean over `SAMPLES` batches of `iters` runs each —
/// the standard defense against scheduler and frequency-scaling noise.
const SAMPLES: u32 = 5;

fn time<F: FnMut() -> Sample>(mut f: F, iters: u32) -> (f64, u64) {
    let (work, _) = f(); // warm-up, and the agreed work count
    let mut best = u64::MAX;
    for _ in 0..SAMPLES {
        let mut total = 0u64;
        for _ in 0..iters {
            let (w, ns) = f();
            assert_eq!(w, work, "scenario must be deterministic");
            total += ns;
        }
        best = best.min(total);
    }
    (best as f64 / f64::from(iters), work)
}

/// Measure one scenario at one size.
///
/// # Panics
///
/// Panics if the two engines disagree on the work performed — the times
/// would then compare different computations.
pub fn measure(
    scenario: &'static str,
    size: String,
    iters: u32,
    mut old: impl FnMut() -> Sample,
    mut new: impl FnMut() -> Sample,
) -> E15Row {
    let (baseline_ns, old_work) = time(&mut old, iters);
    let (depset_ns, new_work) = time(&mut new, iters);
    assert_eq!(
        old_work, new_work,
        "{scenario} {size}: baseline and DepSet engines must agree on the work"
    );
    E15Row {
        scenario,
        size,
        work: new_work,
        baseline_ns,
        depset_ns,
    }
}

fn iters_for(depth: usize) -> u32 {
    (4096 / depth).clamp(8, 256) as u32
}

/// All measured rows at the default sizes.
pub fn rows() -> Vec<E15Row> {
    let mut out = Vec::new();
    for depth in [8usize, 32, 64, 128] {
        out.push(measure(
            "deep-inheritance",
            format!("depth={depth}"),
            iters_for(depth),
            move || deep_old(depth),
            move || deep_new(depth),
        ));
    }
    for depth in [32usize, 128] {
        out.push(measure(
            "affirm-drain",
            format!("depth={depth}"),
            iters_for(depth),
            move || drain_old(depth),
            move || drain_new(depth),
        ));
    }
    for (depth, width) in [(32usize, 64usize), (32, 256)] {
        out.push(measure(
            "fan-out",
            format!("depth={depth} width={width}"),
            iters_for(depth + width),
            move || fanout_old(depth, width),
            move || fanout_new(depth, width),
        ));
    }
    for depth in [32usize, 128] {
        out.push(measure(
            "deny-cascade",
            format!("depth={depth}"),
            iters_for(depth),
            move || deny_old(depth),
            move || deny_new(depth),
        ));
    }
    out
}

/// The default E15 table.
pub fn table() -> Table {
    let mut t = Table::new(
        "E15: DepSet vs BTreeSet on the engine hot paths (host time)",
        &[
            "scenario",
            "size",
            "work",
            "btreeset_ns",
            "depset_ns",
            "speedup",
        ],
    );
    for r in rows() {
        t.push(vec![
            r.scenario.to_string(),
            r.size.clone(),
            r.work.to_string(),
            format!("{:.0}", r.baseline_ns),
            format!("{:.0}", r.depset_ns),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t.note(
        "baseline transcribes the pre-DepSet hot paths (BTreeSet IDO/DOM, \
         double clone in guess) on a minimal in-module engine; depset runs \
         the real hope_core::Engine",
    );
    t.note(
        "work = intervals created (deep/fan-out), finalized (drain) or \
         discarded (deny) — asserted equal across both engines before \
         times are compared",
    );
    t.note("times are meaningful in --release only; see BENCH_e15.json for the recorded run");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timing assertions are deliberately absent: under `cargo test` the
    // DepSet shadow oracle is compiled in and skews the comparison. The
    // recorded numbers come from the release-mode tables binary.

    #[test]
    fn engines_agree_on_tiny_scenarios() {
        let r = measure(
            "deep-inheritance",
            "depth=4".into(),
            2,
            || deep_old(4),
            || deep_new(4),
        );
        assert_eq!(r.work, 4, "four nested guesses create four intervals");
        assert!(r.speedup() > 0.0);

        let r = measure(
            "affirm-drain",
            "depth=4".into(),
            2,
            || drain_old(4),
            || drain_new(4),
        );
        assert_eq!(r.work, 4, "draining the chain finalizes every interval");

        let r = measure(
            "fan-out",
            "depth=3 width=5".into(),
            2,
            || fanout_old(3, 5),
            || fanout_new(3, 5),
        );
        assert_eq!(r.work, 8, "three chain intervals plus five inheritors");

        let r = measure(
            "deny-cascade",
            "depth=6".into(),
            2,
            || deny_old(6),
            || deny_new(6),
        );
        assert_eq!(r.work, 6, "the root deny discards the whole chain");
    }

    #[test]
    #[should_panic(expected = "must agree")]
    fn disagreeing_engines_panic() {
        measure("bogus", "n=1".into(), 1, || (1, 0), || (2, 0));
    }
}
