//! **E13 — co-operative work (§7 future work, ref \[5\])**: lock-free
//! collaborative editing, conflict traffic vs concurrency.
//!
//! Cormack's conference-editing formalism, on HOPE: editors never wait to
//! type; stale proposals are denied, rolled back, positionally rebased and
//! retried. The sweep raises the number of concurrent editors over a
//! fixed per-editor workload and reports conflicts (rollbacks) and the
//! convergence invariant.

use hope_coedit::run_session;
use hope_sim::{LatencyModel, Topology, VirtualDuration};

use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E13Row {
    /// Concurrent editors.
    pub editors: usize,
    /// Total committed edits.
    pub commits: u64,
    /// Conflict rollbacks (denied proposals).
    pub rollbacks: u64,
    /// Session completion (virtual ms).
    pub end_ms: f64,
    /// Whether every replica converged to the authoritative text.
    pub converged: bool,
}

/// Measure one editor count (5 edits each, 3 ms links, 80% inserts).
pub fn measure(editors: usize, seed: u64) -> E13Row {
    let topo = Topology::uniform(LatencyModel::Fixed(VirtualDuration::from_millis(3)));
    let out = run_session(editors, 5, topo, seed, 0.8);
    assert!(out.report.errors().is_empty(), "{}", out.report);
    E13Row {
        editors,
        commits: editors as u64 * 5,
        rollbacks: out.report.stats().rollback_events,
        end_ms: out.report.end_time().as_millis_f64(),
        converged: out.converged(),
    }
}

/// The default E13 table: editors ∈ {1, 2, 4, 8}.
pub fn table() -> Table {
    let mut t = Table::new(
        "E13: lock-free co-operative editing — conflicts vs concurrency (5 edits/editor)",
        &[
            "editors",
            "commits",
            "conflict rollbacks",
            "completion",
            "converged",
        ],
    );
    for editors in [1, 2, 4, 8] {
        let r = measure(editors, 23);
        t.push(vec![
            r.editors.to_string(),
            r.commits.to_string(),
            r.rollbacks.to_string(),
            format!("{:.1}ms", r.end_ms),
            r.converged.to_string(),
        ]);
    }
    t.note("nobody ever waits to type; conflicts cost a rollback + positional rebase, and every replica converges");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solo_editor_has_no_conflicts() {
        let r = measure(1, 3);
        assert_eq!(r.rollbacks, 0, "{r:?}");
        assert!(r.converged);
    }

    #[test]
    fn concurrency_costs_conflicts_not_convergence() {
        let lo = measure(2, 3);
        let hi = measure(6, 3);
        assert!(hi.rollbacks > lo.rollbacks, "{lo:?} vs {hi:?}");
        assert!(lo.converged && hi.converged);
    }
}
