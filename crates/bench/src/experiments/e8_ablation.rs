//! **E8 — ablations on the paper's §7 future-work knobs**: checkpoint
//! (rollback) cost and dependency-tracking overhead.
//!
//! The prototype's checkpoint mechanism was "simple and fairly portable,
//! but not particularly efficient", and §7 proposes optimizing both the
//! tracking algorithms and the checkpoint/rollback machinery. Our runtime
//! exposes both costs as configuration:
//!
//! * `rollback_overhead` — virtual time charged per re-execution (the
//!   restoration cost a snapshot- or journal-based implementation pays);
//! * `tracking_overhead` — extra per-message latency for carrying and
//!   recording tags.
//!
//! The ablation shows where each knob erodes the Call Streaming gain.

use hope_callstream::{serve_verified, stream_call};
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology, VirtualDuration};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, Table};

/// Completion time of a k-call chain with the given overheads, where every
/// prediction is wrong (worst case: one rollback per call). Links are fast
/// (1 ms one-way) so restoration cost dominates rather than hiding under
/// the propagation delay.
pub fn worst_case_chain(
    k: u64,
    rollback_overhead: VirtualDuration,
    tracking_overhead: VirtualDuration,
) -> f64 {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(1)));
    let mut sim = Simulation::new(
        SimConfig::with_seed(17)
            .topology(topo)
            .rollback_overhead(rollback_overhead)
            .tracking_overhead(tracking_overhead),
    );
    let server = ProcessId(1);
    let client = sim.spawn("client", move |ctx| {
        let mut x: i64 = 1;
        for _ in 0..k {
            // Deliberately wrong prediction: always rolls back.
            let r = stream_call(ctx, server, Value::Int(x), Value::Int(-1))?;
            x = r.expect_int();
        }
        ctx.output(format!("x={x}"))?;
        Ok(())
    });
    sim.spawn("server", |ctx| {
        serve_verified(ctx, us(100), |v| Value::Int(v.expect_int() * 2), |_| {})
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    assert_eq!(report.output_lines(), vec![format!("x={}", 1i64 << k)]);
    completion_ms(&report, client)
}

/// Completion time of a k-call chain with correct predictions under the
/// given tracking overhead.
pub fn best_case_chain(k: u64, tracking_overhead: VirtualDuration) -> f64 {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(15)));
    let mut sim = Simulation::new(
        SimConfig::with_seed(17)
            .topology(topo)
            .tracking_overhead(tracking_overhead),
    );
    let server = ProcessId(1);
    let client = sim.spawn("client", move |ctx| {
        let mut x: i64 = 1;
        for _ in 0..k {
            let r = stream_call(ctx, server, Value::Int(x), Value::Int(x * 2))?;
            x = r.expect_int();
        }
        ctx.output(format!("x={x}"))?;
        Ok(())
    });
    sim.spawn("server", |ctx| {
        serve_verified(ctx, us(100), |v| Value::Int(v.expect_int() * 2), |_| {})
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    completion_ms(&report, client)
}

/// The default E8 tables (rendered as one table with a `knob` column).
pub fn table() -> Table {
    let mut t = Table::new(
        "E8: ablation — rollback overhead (2ms RTT) and tracking overhead (30ms RTT), k=4 chain",
        &["knob", "setting", "completion"],
    );
    for ovh in [0u64, 1, 5, 20] {
        let ms_val = worst_case_chain(4, ms(ovh), VirtualDuration::ZERO);
        t.push(vec![
            "rollback overhead (all predictions wrong)".into(),
            format!("{ovh}ms"),
            fmt_ms(ms_val),
        ]);
    }
    for ovh in [0u64, 100, 1000, 5000] {
        let ms_val = best_case_chain(4, VirtualDuration::from_micros(ovh));
        t.push(vec![
            "tracking overhead per message (all correct)".into(),
            format!("{}µs", ovh),
            fmt_ms(ms_val),
        ]);
    }
    t.note("§7: \"the present checkpoint mechanism is simple and fairly portable, but not particularly efficient\"");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollback_overhead_slows_worst_case() {
        let cheap = worst_case_chain(3, VirtualDuration::ZERO, VirtualDuration::ZERO);
        let costly = worst_case_chain(3, ms(10), VirtualDuration::ZERO);
        assert!(costly > cheap, "cheap={cheap} costly={costly}");
        // Three rollbacks at 10ms each; a little of each hold overlaps the
        // reply's propagation, so allow that slack.
        assert!(costly - cheap >= 24.0, "{}", costly - cheap);
    }

    #[test]
    fn tracking_overhead_slows_best_case() {
        let cheap = best_case_chain(3, VirtualDuration::ZERO);
        let costly = best_case_chain(3, ms(2));
        assert!(costly > cheap, "cheap={cheap} costly={costly}");
    }
}
