//! **E6 — HOPE subsumes Time Warp (§2)**: PHOLD on `hope-timewarp` vs a
//! sequential baseline.
//!
//! Time Warp's entire mechanism — optimistic event processing, rollback on
//! stragglers, anti-messages — is expressed here with `guess`/`deny` and
//! tagged messages. The experiment sweeps the LP count and reports the
//! speedup over single-CPU event processing together with the rollback
//! traffic, plus the reproduction's E6 *finding*: in the fully symmetric
//! setting no definite affirmer exists, so pure HOPE semantics never
//! commit (Lemma 6.3) — commitment needs an external GVT-like observer.

use hope_sim::Topology;
use hope_timewarp::phold::{run_phold_with, run_sequential};

use super::us;
use crate::table::Table;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E6Row {
    /// Number of logical processes.
    pub n_lps: usize,
    /// Sequential completion (virtual ms).
    pub sequential_ms: f64,
    /// Time Warp completion (virtual ms).
    pub timewarp_ms: f64,
    /// Speedup (sequential / Time Warp).
    pub speedup: f64,
    /// Events handled (including speculative work).
    pub handled: u64,
    /// Events committed once the quiescence (GVT) oracle settles the run.
    pub committed: u64,
    /// Straggler rollbacks.
    pub rollbacks: u64,
}

/// Measure one LP count.
pub fn measure(n_lps: usize, horizon: u64, seed: u64) -> E6Row {
    let service = us(500);
    let tw = run_phold_with(n_lps, Topology::local(), service, 10, horizon, seed, true);
    assert!(tw.report.errors().is_empty(), "{:?}", tw.report.errors());
    let seq = run_sequential(n_lps, service, 10, horizon, seed);
    let tw_ms = tw.report.end_time().as_millis_f64();
    let seq_ms = seq.total_time.as_millis_f64();
    E6Row {
        n_lps,
        sequential_ms: seq_ms,
        timewarp_ms: tw_ms,
        speedup: seq_ms / tw_ms,
        handled: tw.handled,
        committed: tw.committed,
        rollbacks: tw.rollbacks,
    }
}

/// The default E6 table: LPs ∈ {2, 4, 8, 16}.
pub fn table() -> Table {
    let mut t = Table::new(
        "E6: Time Warp (on HOPE) vs sequential event processing — PHOLD",
        &[
            "LPs",
            "sequential",
            "Time Warp",
            "speedup",
            "handled",
            "committed",
            "rollbacks",
        ],
    );
    for n in [2, 4, 8, 16] {
        let r = measure(n, 100, 21);
        t.push(vec![
            r.n_lps.to_string(),
            format!("{:.2}ms", r.sequential_ms),
            format!("{:.2}ms", r.timewarp_ms),
            format!("{:.2}x", r.speedup),
            r.handled.to_string(),
            r.committed.to_string(),
            r.rollbacks.to_string(),
        ]);
    }
    t.note("finding: with every LP perpetually speculative, nothing finalizes from within (Lemma 6.3); the committed column uses the runtime's quiescence oracle — the external definite observer that implements GVT");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timewarp_outpaces_sequential() {
        let r = measure(8, 80, 5);
        assert!(r.speedup > 1.0, "{r:?}");
        assert!(r.handled > 8, "{r:?}");
        assert!(r.committed > 0 && r.committed <= r.handled, "{r:?}");
    }

    #[test]
    fn more_lps_more_parallelism() {
        let a = measure(2, 80, 5);
        let b = measure(8, 80, 5);
        assert!(
            b.speedup > a.speedup * 0.9,
            "speedup should not collapse with scale: {a:?} vs {b:?}"
        );
    }
}
