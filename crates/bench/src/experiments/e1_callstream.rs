//! **E1 — Figures 1 vs 2**: the Call Streaming transformation on the
//! paper's page-printer program, swept over link latency.
//!
//! Reproduces the paper's central example: the pessimistic Worker pays two
//! serialized round trips (S1, S3); the optimistic Worker hides S1 behind
//! the WorryWart and proceeds straight to S3. The measured saving should
//! grow with the round-trip time and approach the one-of-two-RPCs bound.

use hope_callstream::page::{
    self, paper_topology, print_server, worker_optimistic, worker_pessimistic, PAGE_SIZE,
};
use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, fmt_pct, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E1Row {
    /// Round-trip time of the worker→printer link.
    pub rtt_ms: u64,
    /// Figure 1 completion (virtual ms).
    pub pessimistic_ms: f64,
    /// Figure 2 completion (virtual ms).
    pub optimistic_ms: f64,
    /// Relative saving.
    pub saving: f64,
}

/// Run Figure 1 once; returns the Worker's completion in virtual ms.
pub fn run_pessimistic(rtt_ms: u64, start_line: i64) -> (RunReport, f64) {
    let topo = paper_topology(ms(rtt_ms) / 2);
    let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
    let printer = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        worker_pessimistic(ctx, printer, 1234, PAGE_SIZE)
    });
    sim.spawn("printer", move |ctx| print_server(ctx, start_line, us(100)));
    let report = sim.run();
    let t = completion_ms(&report, ProcessId(0));
    (report, t)
}

/// Run Figure 2 once; returns the Worker's completion in virtual ms.
pub fn run_optimistic(rtt_ms: u64, start_line: i64) -> (RunReport, f64) {
    let topo = paper_topology(ms(rtt_ms) / 2);
    let mut sim = Simulation::new(SimConfig::with_seed(1).topology(topo));
    let printer = ProcessId(1);
    let wart = ProcessId(2);
    sim.spawn("worker", move |ctx| {
        worker_optimistic(ctx, printer, wart, 1234)
    });
    sim.spawn("printer", move |ctx| print_server(ctx, start_line, us(100)));
    sim.spawn("worrywart", move |ctx| {
        page::worrywart(ctx, printer, PAGE_SIZE)
    });
    let report = sim.run();
    let t = completion_ms(&report, ProcessId(0));
    (report, t)
}

/// Measure one latency point (assumption holds: the page does not
/// overflow).
pub fn measure(rtt_ms: u64) -> E1Row {
    let (_, tp) = run_pessimistic(rtt_ms, 10);
    let (opt_report, to) = run_optimistic(rtt_ms, 10);
    assert_eq!(
        opt_report.stats().rollback_events,
        0,
        "E1 measures the assumption-holds regime"
    );
    let (p, o) = (tp, to);
    E1Row {
        rtt_ms,
        pessimistic_ms: p,
        optimistic_ms: o,
        saving: (p - o) / p,
    }
}

/// The default E1 table: RTT ∈ {1, 3, 10, 30, 100} ms.
pub fn table() -> Table {
    let mut t = Table::new(
        "E1: Call Streaming on the page printer (Figure 1 vs Figure 2)",
        &["rtt", "pessimistic", "optimistic", "saving"],
    );
    for rtt in [1, 3, 10, 30, 100] {
        let r = measure(rtt);
        t.push(vec![
            format!("{}ms", r.rtt_ms),
            fmt_ms(r.pessimistic_ms),
            fmt_ms(r.optimistic_ms),
            fmt_pct(r.saving),
        ]);
    }
    t.note("assumption holds (line < PageSize); paper topology: WorryWart co-located with Worker");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saving_grows_with_latency() {
        let low = measure(3);
        let high = measure(30);
        assert!(low.saving > 0.0, "{low:?}");
        assert!(high.saving >= low.saving, "{low:?} vs {high:?}");
        // With two serialized RPCs collapsed to ~one, the bound is ~50%
        // for this program; the measurement must approach it from below.
        assert!(high.saving < 0.6, "{high:?}");
    }

    #[test]
    fn table_has_five_rows() {
        let t = table();
        assert_eq!(t.len(), 5);
    }
}
