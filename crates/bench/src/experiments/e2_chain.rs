//! **E2 — the "up to 80%" claim (§7)**: Call Streaming gain vs chain
//! length.
//!
//! A client issues `k` *dependent* calls (each input is the previous
//! output). Pessimistically that is `k` serialized round trips; with Call
//! Streaming all requests are in flight immediately and the chain costs
//! roughly one round trip plus `k` service times. The relative gain is
//! `≈ (k−1)/k` in the latency-dominated limit — crossing 80% at `k = 5` —
//! which is exactly the shape behind the paper's "performance gains of up
//! to 80% using the Call Streaming protocol".

use hope_callstream::{serve_verified, stream_call, sync_call};
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, fmt_pct, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E2Row {
    /// Number of chained dependent calls.
    pub k: u64,
    /// Pessimistic completion (virtual ms).
    pub pessimistic_ms: f64,
    /// Optimistic completion (virtual ms).
    pub optimistic_ms: f64,
    /// Relative gain.
    pub gain: f64,
}

fn run_chain(k: u64, rtt_ms: u64, optimistic: bool) -> f64 {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(rtt_ms) / 2));
    let mut sim = Simulation::new(SimConfig::with_seed(7).topology(topo));
    let server = ProcessId(1);
    let client = sim.spawn("client", move |ctx| {
        let mut x: i64 = 1;
        for _ in 0..k {
            let result = if optimistic {
                // The client can predict the server's function (doubling).
                stream_call(ctx, server, Value::Int(x), Value::Int(x * 2))?
            } else {
                sync_call(ctx, server, Value::Int(x))?
            };
            x = result.expect_int();
        }
        ctx.output(format!("chain result={x}"))?;
        Ok(())
    });
    sim.spawn("server", |ctx| {
        serve_verified(ctx, us(100), |v| Value::Int(v.expect_int() * 2), |_| {})
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    assert_eq!(
        report.output_lines(),
        vec![format!("chain result={}", 1i64 << k)],
        "both disciplines must compute the same answer"
    );
    completion_ms(&report, client)
}

/// Measure one chain length at the given round-trip time.
pub fn measure(k: u64, rtt_ms: u64) -> E2Row {
    let p = run_chain(k, rtt_ms, false);
    let o = run_chain(k, rtt_ms, true);
    E2Row {
        k,
        pessimistic_ms: p,
        optimistic_ms: o,
        gain: (p - o) / p,
    }
}

/// The default E2 table: k ∈ {1, 2, 3, 5, 8, 12} at the paper's 30 ms RTT.
pub fn table() -> Table {
    let mut t = Table::new(
        "E2: Call Streaming gain vs dependent-call chain length (30ms RTT)",
        &["k", "pessimistic", "optimistic", "gain"],
    );
    for k in [1, 2, 3, 5, 8, 12] {
        let r = measure(k, 30);
        t.push(vec![
            r.k.to_string(),
            fmt_ms(r.pessimistic_ms),
            fmt_ms(r.optimistic_ms),
            fmt_pct(r.gain),
        ]);
    }
    t.note("§7 reports \"performance gains of up to 80%\"; the gain approaches (k−1)/k");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gain_crosses_80_percent_by_k5() {
        let r = measure(5, 30);
        assert!(
            r.gain >= 0.75,
            "paper's 80% regime should be reached near k=5: {r:?}"
        );
        let r12 = measure(12, 30);
        assert!(r12.gain > r.gain, "gain grows with k");
        assert!(r12.gain < 1.0);
    }

    #[test]
    fn single_call_still_benefits() {
        // Even k=1 saves the reply leg: the client never waits for it.
        let r = measure(1, 30);
        assert!(r.gain > 0.3, "{r:?}");
    }
}
