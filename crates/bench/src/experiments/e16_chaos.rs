//! **E16 — chaos: throughput degradation vs fault rate**: the cost of
//! riding out an unreliable network with HOPE's own primitives.
//!
//! The recovery application (optimistic logging over
//! [`Ctx::send_reliable`](hope_runtime::Ctx::send_reliable)) runs against
//! a stable store over a link whose deliveries are dropped with
//! probability `p` by a seeded [`FaultPlan`]. Every dropped entry costs a
//! retransmission timeout (which *denies* the "delivered" assumption,
//! rolling the sender back to retry) — so throughput degrades smoothly
//! with the fault rate while the committed output stays bit-identical to
//! the fault-free run. Each row re-checks that equivalence: this is the
//! chaos oracle's claim, measured instead of merely asserted.
//!
//! Completion is measured from finish/commit times, not the scheduler's
//! end time (stale retransmission timers for already-acked sends fire
//! after the last commit and would inflate the clock).

use hope_recovery::{run_app_optimistic, run_stable_store};
use hope_runtime::{FaultPlan, ProcessId, SimConfig, Simulation};
use hope_sim::{LatencyModel, Topology};

use super::{completion_ms, ms, us};
use crate::table::{fmt_ms, Table};

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct E16Row {
    /// Per-delivery drop probability.
    pub drop_rate: f64,
    /// Completion (virtual ms): app finish or last output commit.
    pub completion_ms: f64,
    /// Committed steps per virtual second.
    pub throughput: f64,
    /// Reliable-send retransmissions.
    pub retries: u64,
    /// "Delivered" assumptions denied by retransmission timeouts.
    pub timeout_denies: u64,
    /// Rollback events (each timeout deny rolls the sender back).
    pub rollbacks: u64,
}

fn run(drop_rate: f64, steps: u64, seed: u64) -> (f64, Vec<String>, E16Row) {
    let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
    let mut config = SimConfig::with_seed(seed).with_topology(topo);
    if drop_rate > 0.0 {
        config = config.with_faults(FaultPlan::new(seed ^ 0xC4A0).drop_rate(drop_rate));
    }
    let mut sim = Simulation::new(config);
    let store = ProcessId(1);
    let app = sim.spawn("app", move |ctx| {
        run_app_optimistic(ctx, store, steps, us(200))
    });
    sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    let completion = completion_ms(&report, app);
    let lines: Vec<String> = report
        .output_lines()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let row = E16Row {
        drop_rate,
        completion_ms: completion,
        throughput: steps as f64 / completion * 1000.0,
        retries: report.stats().faults.retries,
        timeout_denies: report.stats().faults.timeout_denies,
        rollbacks: report.stats().rollback_events,
    };
    (completion, lines, row)
}

/// Measure one drop-rate point with `steps` application steps, asserting
/// the committed output equals the fault-free run's (the chaos oracle).
pub fn measure(drop_rate: f64, steps: u64, seed: u64) -> E16Row {
    let (_, baseline, _) = run(0.0, steps, seed);
    let (_, faulty, row) = run(drop_rate, steps, seed);
    assert_eq!(
        baseline, faulty,
        "committed outputs must be fault-independent"
    );
    row
}

/// The default E16 table: drop rate ∈ {0, 5, 10, 20, 30}% over 40 steps.
pub fn table() -> Table {
    let mut t = Table::new(
        "E16: throughput vs link drop rate (40 steps, reliable logging, 4ms RTT, 50ms ack timeout)",
        &[
            "drop rate",
            "completion",
            "steps/s",
            "retries",
            "timeout denies",
            "rollbacks",
        ],
    );
    for rate in [0.0, 0.05, 0.1, 0.2, 0.3] {
        let r = measure(rate, 40, 23);
        t.push(vec![
            format!("{:.0}%", r.drop_rate * 100.0),
            fmt_ms(r.completion_ms),
            format!("{:.0}", r.throughput),
            r.retries.to_string(),
            r.timeout_denies.to_string(),
            r.rollbacks.to_string(),
        ]);
    }
    t.note("each row's committed output verified bit-identical to the fault-free run");
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_point_needs_no_retries() {
        let r = measure(0.0, 10, 3);
        assert_eq!(r.retries, 0, "{r:?}");
        assert_eq!(r.rollbacks, 0, "{r:?}");
    }

    #[test]
    fn lossy_link_costs_retries_and_throughput_not_outputs() {
        let clean = measure(0.0, 10, 3);
        let lossy = measure(0.25, 10, 3);
        assert!(lossy.retries > 0, "{lossy:?}");
        assert!(
            lossy.throughput < clean.throughput,
            "drops must cost throughput: {clean:?} vs {lossy:?}"
        );
        // measure() itself asserts output equivalence.
    }
}
