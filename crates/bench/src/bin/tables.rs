//! Print the experiment tables.
//!
//! ```text
//! cargo run -p hope-bench --release --bin tables            # all
//! cargo run -p hope-bench --release --bin tables -- e1 e6   # selected
//! cargo run -p hope-bench --release --bin tables -- --json out.json e15
//! ```
//!
//! `--json <path>` additionally writes the selected tables as a JSON
//! array of experiment objects (see [`hope_bench::tables_to_json`]) —
//! the format of the checked-in `BENCH_e15.json`.

use hope_bench::{table_for, tables_to_json, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json_path: Option<String> = None;
    let mut ids: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--json" {
            match it.next() {
                Some(p) => json_path = Some(p.clone()),
                None => {
                    eprintln!("--json requires a path argument");
                    std::process::exit(2);
                }
            }
        } else {
            ids.push(arg.as_str());
        }
    }
    if ids.is_empty() {
        ids = EXPERIMENT_IDS.to_vec();
    }
    for id in &ids {
        if !EXPERIMENT_IDS.contains(id) {
            eprintln!("unknown experiment {id:?}; known: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
    }
    println!("# HOPE reproduction — experiment tables\n");
    let mut computed = Vec::new();
    for id in ids {
        let table = table_for(id);
        println!("{table}");
        computed.push((id, table));
    }
    if let Some(path) = json_path {
        let json = tables_to_json(&computed);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }
}
