//! Print the experiment tables.
//!
//! ```text
//! cargo run -p hope-bench --release --bin tables            # all
//! cargo run -p hope-bench --release --bin tables -- e1 e6   # selected
//! ```

use hope_bench::{table_for, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() {
        EXPERIMENT_IDS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !EXPERIMENT_IDS.contains(id) {
            eprintln!("unknown experiment {id:?}; known: {EXPERIMENT_IDS:?}");
            std::process::exit(2);
        }
    }
    println!("# HOPE reproduction — experiment tables\n");
    for id in ids {
        let table = table_for(id);
        println!("{table}");
    }
}
