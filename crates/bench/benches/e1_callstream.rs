//! E1 (host-time view): cost of simulating Figure 1 vs Figure 2.
//!
//! The `tables` binary reports *virtual* times (the paper's result); this
//! bench reports how much host CPU the simulator itself spends per run —
//! the reproduction's own overhead, useful for sizing larger experiments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e1_callstream::{run_optimistic, run_pessimistic};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_page_printer");
    g.sample_size(20);
    for rtt in [10u64, 30] {
        g.bench_with_input(
            BenchmarkId::new("figure1_pessimistic", rtt),
            &rtt,
            |b, &rtt| {
                b.iter(|| run_pessimistic(rtt, 10));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("figure2_optimistic", rtt),
            &rtt,
            |b, &rtt| {
                b.iter(|| run_optimistic(rtt, 10));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("figure2_with_rollback", rtt),
            &rtt,
            |b, &rtt| {
                b.iter(|| run_optimistic(rtt, 70));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
