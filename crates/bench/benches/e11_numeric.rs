//! E11 (host-time view): simulator cost of the optimistic Jacobi solver
//! at tight vs loose tolerance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e11_numeric::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_numeric");
    g.sample_size(10);
    for tol_millis in [0u64, 50] {
        g.bench_with_input(
            BenchmarkId::new("jacobi_4x8", tol_millis),
            &tol_millis,
            |b, &tm| {
                b.iter(|| measure(tm as f64 / 1000.0, 2, 3));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
