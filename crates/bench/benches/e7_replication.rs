//! E7 (host-time view): replication runs, uncontended vs contended.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e7_replication::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_replication");
    g.sample_size(10);
    for keys in [64usize, 2] {
        g.bench_with_input(
            BenchmarkId::new("three_clients", keys),
            &keys,
            |b, &keys| {
                b.iter(|| measure(3, keys, 4, 9));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
