//! E4 (host-time view): simulator cost as prediction accuracy falls and
//! rollback work grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e4_accuracy::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_accuracy");
    g.sample_size(10);
    for acc in [100u64, 50, 0] {
        g.bench_with_input(BenchmarkId::new("chain_k4", acc), &acc, |b, &acc| {
            b.iter(|| measure(acc as f64 / 100.0, 4, 10, 1));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
