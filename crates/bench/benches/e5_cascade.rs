//! E5 (host-time view): cost of a full rollback cascade vs chain length.
//!
//! Complements the `tables` output (which reports cascade *reach* in
//! intervals and virtual time) with the host cost of dependency tracking
//! plus journal-replay recovery across the whole chain.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e5_cascade::run_chain;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_cascade");
    g.sample_size(10);
    for n in [2usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("deny_chain", n), &n, |b, &n| {
            b.iter(|| run_chain(n));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
