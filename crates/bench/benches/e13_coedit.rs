//! E13 (host-time view): co-editing sessions at low and high concurrency.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e13_coedit::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_coedit");
    g.sample_size(10);
    for editors in [2usize, 6] {
        g.bench_with_input(BenchmarkId::new("session", editors), &editors, |b, &n| {
            b.iter(|| measure(n, 23));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
