//! E8 (host-time view): raw semantics-engine primitive costs.
//!
//! §7 proposes optimizing "both the HOPE dependency tracking algorithms,
//! and the checkpoint and rollback mechanism". These microbenchmarks give
//! the baseline: cost of a guess/affirm cycle, of a deny cascading over N
//! dependent intervals, and of a whole random abstract-machine program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_core::machine::Machine;
use hope_core::program::Program;
use hope_core::{Checkpoint, Engine};

fn guess_affirm_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_engine");
    g.bench_function("guess_affirm_cycle", |b| {
        let mut engine = Engine::new();
        engine.set_invariant_checking(false);
        let p = engine.register_process();
        let q = engine.register_process();
        b.iter(|| {
            let x = engine.aid_init(p);
            let (_, _) = engine.guess(p, &[x], Checkpoint(0)).unwrap();
            engine.affirm(q, x).unwrap()
        });
    });

    g.bench_function("guess_deny_rollback_cycle", |b| {
        let mut engine = Engine::new();
        engine.set_invariant_checking(false);
        let p = engine.register_process();
        let q = engine.register_process();
        b.iter(|| {
            let x = engine.aid_init(p);
            let (_, _) = engine.guess(p, &[x], Checkpoint(0)).unwrap();
            engine.deny(q, x).unwrap()
        });
    });

    for depth in [4usize, 16, 64] {
        g.bench_with_input(
            BenchmarkId::new("deny_cascade_depth", depth),
            &depth,
            |b, &depth| {
                b.iter_batched(
                    || {
                        let mut engine = Engine::new();
                        engine.set_invariant_checking(false);
                        let p = engine.register_process();
                        let x = engine.aid_init(p);
                        // Build a chain of nested intervals all dependent
                        // on x.
                        engine.guess(p, &[x], Checkpoint(0)).unwrap();
                        for i in 1..depth {
                            let y = engine.aid_init(p);
                            engine.guess(p, &[y], Checkpoint(i as u64)).unwrap();
                        }
                        let judge = engine.register_process();
                        (engine, judge, x)
                    },
                    |(mut engine, judge, x)| engine.deny(judge, x).unwrap(),
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }

    g.bench_function("random_machine_program_4x40", |b| {
        b.iter_batched(
            || Machine::new(Program::generate(11, 4, 40, 6)),
            |mut m| m.run_seeded(50_000, 3),
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, guess_affirm_cycle);
criterion_main!(benches);
