//! E2 (host-time view): simulator cost of dependent-call chains,
//! optimistic vs pessimistic.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e2_chain::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_chain");
    g.sample_size(10);
    for k in [2u64, 8] {
        g.bench_with_input(BenchmarkId::new("both_disciplines", k), &k, |b, &k| {
            b.iter(|| measure(k, 30));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
