//! E6 (host-time view): simulating PHOLD on HOPE Time Warp vs the
//! sequential baseline, as LP count scales.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_sim::{Topology, VirtualDuration};
use hope_timewarp::phold::{run_phold, run_sequential};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_phold");
    g.sample_size(10);
    let service = VirtualDuration::from_micros(500);
    for n in [2usize, 4, 8] {
        g.bench_with_input(BenchmarkId::new("timewarp", n), &n, |b, &n| {
            b.iter(|| run_phold(n, Topology::local(), service, 10, 80, 5));
        });
        g.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| run_sequential(n, service, 10, 80, 5));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
