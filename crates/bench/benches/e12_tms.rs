//! E12 (host-time view): distributed TMS runs at low and high
//! contradiction density.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e12_tms::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_tms");
    g.sample_size(10);
    for nogoods in [0usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("two_reasoners", nogoods),
            &nogoods,
            |b, &n| {
                b.iter(|| measure(n, 13));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
