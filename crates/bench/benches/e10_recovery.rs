//! E10 (host-time view): optimistic-logging runs under fault injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e10_recovery::measure;
use hope_runtime::FaultPlan;
use hope_sim::VirtualDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_recovery");
    g.sample_size(10);
    g.bench_function("fault_free", |b| {
        b.iter(|| measure("none", None, 15, 3));
    });
    for drop_pct in [10u64, 30] {
        g.bench_with_input(
            BenchmarkId::new("lossy_link", drop_pct),
            &drop_pct,
            |b, &drop_pct| {
                b.iter(|| {
                    let plan = FaultPlan::new(3).drop_rate(drop_pct as f64 / 100.0);
                    measure("lossy", Some(plan), 15, 3)
                });
            },
        );
    }
    g.bench_function("app_crash", |b| {
        b.iter(|| {
            let plan = FaultPlan::new(3).kill(0, 15, Some(VirtualDuration::from_millis(3)));
            measure("crash", Some(plan), 15, 3)
        });
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
