//! E10 (host-time view): optimistic-logging runs under failure injection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hope_bench::experiments::e10_recovery::measure;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_recovery");
    g.sample_size(10);
    for pct in [0u64, 30] {
        g.bench_with_input(BenchmarkId::new("both_protocols", pct), &pct, |b, &pct| {
            b.iter(|| measure(pct as f64 / 100.0, 15, 3));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
