//! The fault-tolerant application: optimistic vs synchronous logging.
//!
//! The application performs a sequence of steps, each of which must be
//! recorded on stable storage before its output may escape (the classical
//! *output commit* problem). Two disciplines:
//!
//! * [`run_app_optimistic`] logs asynchronously and `guess`es the entry
//!   will persist, releasing output under the assumption; the runtime's
//!   output-commit buffering holds the line until the store's affirm
//!   arrives, and a lost entry (denied assumption) rolls the application
//!   back to re-log and re-execute — recovery, for free, by HOPE.
//! * [`run_app_sync`] waits for each flush acknowledgment — the
//!   pessimistic baseline whose latency the optimistic version hides.

use hope_core::ProcessId;
use hope_runtime::{Ctx, Hope};
use hope_sim::VirtualDuration;

use crate::stable::log_entry;

/// Run `steps` application steps with optimistic logging.
///
/// Each step: create the stability assumption, send the log entry over
/// [`Ctx::send_reliable`] (so an entry addressed to a crashed or lossy
/// store is retransmitted rather than silently lost; send-then-guess keeps
/// the store definite), guess, emit the step's output under the
/// assumption, and compute for `step_cost`. A denied entry — the
/// application itself was killed with the assumption still open —
/// re-executes the step's logging on restart until it sticks.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_app_optimistic(
    ctx: &mut Ctx,
    store: ProcessId,
    steps: u64,
    step_cost: VirtualDuration,
) -> Hope<()> {
    for seq in 0..steps {
        loop {
            let aid = ctx.aid_init()?;
            ctx.send_reliable(store, log_entry(aid, seq))?;
            if ctx.guess(aid)? {
                break; // proceed under "the entry will persist"
            }
            // The entry was lost in a crash: re-log (recovery).
        }
        ctx.output(format!("step {seq} committed"))?;
        ctx.compute(step_cost)?;
    }
    Ok(())
}

/// Run `steps` application steps with synchronous logging: each step waits
/// for the flush acknowledgment (retrying on crash) before emitting output.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_app_sync(
    ctx: &mut Ctx,
    store: ProcessId,
    steps: u64,
    step_cost: VirtualDuration,
) -> Hope<()> {
    for seq in 0..steps {
        loop {
            let aid = ctx.aid_init()?; // carried for wire-format symmetry
            let ack = ctx.rpc(store, log_entry(aid, seq))?;
            if ack.as_bool() == Some(true) {
                break;
            }
        }
        ctx.output(format!("step {seq} committed"))?;
        ctx.compute(step_cost)?;
    }
    Ok(())
}

/// Run `steps` application steps with **batched** optimistic logging
/// (group commit): one stability assumption covers `batch` consecutive
/// entries, sent together. Fewer assumptions and messages than
/// [`run_app_optimistic`], but a lost batch re-executes `batch` steps.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
///
/// # Panics
///
/// Panics if `batch` is zero.
pub fn run_app_batched(
    ctx: &mut Ctx,
    store: ProcessId,
    steps: u64,
    step_cost: VirtualDuration,
    batch: u64,
) -> Hope<()> {
    assert!(batch > 0, "batch size must be positive");
    let mut seq = 0;
    while seq < steps {
        let n = batch.min(steps - seq);
        loop {
            let aid = ctx.aid_init()?;
            // One assumption guards the whole batch; the store treats the
            // group as a unit (one flush, one affirm-or-deny).
            ctx.send(store, log_entry(aid, seq))?;
            if ctx.guess(aid)? {
                break;
            }
            // The batch was lost: re-log it whole.
        }
        for i in 0..n {
            ctx.output(format!("step {} committed", seq + i))?;
            ctx.compute(step_cost)?;
        }
        seq += n;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stable::run_stable_store;
    use hope_runtime::{FaultPlan, SimConfig, Simulation};
    use hope_sim::{LatencyModel, Topology, VirtualTime};

    fn ms(v: u64) -> VirtualDuration {
        VirtualDuration::from_millis(v)
    }

    fn run(
        optimistic: bool,
        faults: Option<FaultPlan>,
        steps: u64,
    ) -> (hope_runtime::RunReport, VirtualTime) {
        let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
        let mut config = SimConfig::with_seed(11).with_topology(topo);
        if let Some(plan) = faults {
            config = config.with_faults(plan);
        }
        let mut sim = Simulation::new(config);
        let store = ProcessId(1);
        let app = sim.spawn("app", move |ctx| {
            if optimistic {
                run_app_optimistic(ctx, store, steps, VirtualDuration::from_micros(200))
            } else {
                run_app_sync(ctx, store, steps, VirtualDuration::from_micros(200))
            }
        });
        sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
        let report = sim.run();
        let t = report.finish_time(app).expect("app finishes");
        (report, t)
    }

    #[test]
    fn both_protocols_commit_all_steps() {
        for optimistic in [true, false] {
            let (report, _) = run(optimistic, None, 10);
            assert_eq!(report.outputs().len(), 10, "optimistic={optimistic}");
            for (i, line) in report.output_lines().iter().enumerate() {
                assert_eq!(*line, format!("step {i} committed"));
            }
        }
    }

    #[test]
    fn batched_logging_commits_everything_and_messages_less() {
        let run = |batch: u64| {
            let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
            let mut sim = Simulation::new(SimConfig::with_seed(11).with_topology(topo));
            let store = ProcessId(1);
            sim.spawn("app", move |ctx| {
                run_app_batched(ctx, store, 12, VirtualDuration::from_micros(200), batch)
            });
            sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
            sim.run()
        };
        let per_entry = run(1);
        let grouped = run(4);
        assert_eq!(per_entry.outputs().len(), 12);
        assert_eq!(grouped.outputs().len(), 12);
        assert!(
            grouped.stats().messages_sent < per_entry.stats().messages_sent,
            "group commit must send fewer log messages: {} vs {}",
            grouped.stats().messages_sent,
            per_entry.stats().messages_sent
        );
        for (i, line) in grouped.output_lines().iter().enumerate() {
            assert_eq!(*line, format!("step {i} committed"));
        }
    }

    #[test]
    fn batched_logging_survives_crashes() {
        let topo = Topology::uniform(LatencyModel::Fixed(ms(2)));
        // Kill the *application* mid-run: its open batch assumptions are
        // denied, and on restart the journal prefix replays while the lost
        // batches are re-logged under fresh assumptions.
        let plan = FaultPlan::new(13).kill(0, 10, Some(ms(3)));
        let mut sim = Simulation::new(
            SimConfig::with_seed(13)
                .with_topology(topo)
                .with_faults(plan),
        );
        let store = ProcessId(1);
        sim.spawn("app", move |ctx| {
            run_app_batched(ctx, store, 12, VirtualDuration::from_micros(200), 3)
        });
        sim.spawn("store", move |ctx| run_stable_store(ctx, ms(5)));
        let report = sim.run();
        assert_eq!(report.outputs().len(), 12, "{report}");
        assert_eq!(report.stats().faults.kills, 1, "{report}");
        assert_eq!(report.stats().faults.restarts, 1, "{report}");
        assert!(report.stats().rollback_events > 0, "{report}");
        for (i, line) in report.output_lines().iter().enumerate() {
            assert_eq!(*line, format!("step {i} committed"));
        }
    }

    #[test]
    fn optimistic_logging_hides_flush_latency() {
        let (opt_report, opt) = run(true, None, 20);
        let (_, sync) = run(false, None, 20);
        assert!(opt < sync, "optimistic {opt} !< synchronous {sync}");
        assert_eq!(opt_report.stats().rollback_events, 0);
    }

    #[test]
    fn crashes_roll_back_and_recover() {
        // The app dies with stability assumptions still open; the kill
        // denies them, restart replays the surviving journal prefix, and
        // the lost steps re-log — recovery end to end.
        let plan = FaultPlan::new(7).kill(0, 30, Some(ms(4)));
        let (report, _) = run(true, Some(plan), 15);
        assert_eq!(
            report.outputs().len(),
            15,
            "all steps eventually commit despite the crash: {report}"
        );
        assert_eq!(report.stats().faults.kills, 1, "{report}");
        assert!(
            report.stats().faults.crash_denies > 0,
            "the kill must catch open assumptions: {report}"
        );
        assert!(
            report.stats().rollback_events > 0,
            "denied entries must roll the app back: {report}"
        );
        // No speculative output escaped: committed lines are exactly the
        // 15 step lines in order.
        for (i, line) in report.output_lines().iter().enumerate() {
            assert_eq!(*line, format!("step {i} committed"));
        }
    }

    #[test]
    fn store_outage_is_pure_downtime_under_reliable_logging() {
        // Kill the *store*: it owns no assumptions, so nothing is denied —
        // entries in flight during the outage are simply lost links, and
        // the app's reliable sends retransmit them after the restart.
        let plan = FaultPlan::new(5).kill(1, 20, Some(ms(25)));
        let (report, _) = run(true, Some(plan), 15);
        assert_eq!(report.outputs().len(), 15, "{report}");
        assert_eq!(report.stats().faults.kills, 1, "{report}");
        assert_eq!(report.stats().faults.restarts, 1, "{report}");
        assert!(
            report.stats().faults.retries > 0,
            "entries lost to the outage must be retransmitted: {report}"
        );
        for (i, line) in report.output_lines().iter().enumerate() {
            assert_eq!(*line, format!("step {i} committed"));
        }
    }

    #[test]
    fn reliable_logging_rides_out_a_lossy_link() {
        // No crashes — just a very lossy network. Reliable sends retry
        // until every entry lands; all steps still commit in order.
        let plan = FaultPlan::new(21).drop_rate(0.3);
        let (report, _) = run(true, Some(plan), 10);
        assert_eq!(report.outputs().len(), 10, "{report}");
        assert!(report.stats().faults.drops > 0, "{report}");
        assert!(report.stats().faults.retries > 0, "{report}");
        for (i, line) in report.output_lines().iter().enumerate() {
            assert_eq!(*line, format!("step {i} committed"));
        }
    }

    #[test]
    fn sync_baseline_commits_without_faults() {
        let (report, _) = run(false, None, 15);
        assert_eq!(report.outputs().len(), 15, "{report}");
        assert_eq!(report.stats().rollback_events, 0, "no speculation used");
    }
}
