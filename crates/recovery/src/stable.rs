//! The stable-storage process: flushes log entries and verifies the
//! paper's canonical fault-tolerance assumption.
//!
//! §1 of the paper lists, among the subtler forms of optimism, "the
//! concurrency introduced between the volatile and stable-storage
//! components of a fault-tolerant application"; §2 describes optimistic
//! recovery protocols \[24\] whose basic mechanism "is to optimistically
//! assume that the sender of a message will checkpoint its state to stable
//! storage before failure at that node occurs". Here the assumption is
//! explicit: every log entry carries an AID meaning *"this entry will
//! reach stable storage"*. A successful flush affirms it; a (simulated)
//! crash that loses the entry denies it, rolling the application back to
//! its last stable point — which is precisely recovery.

use hope_core::AidId;
use hope_runtime::{Ctx, Hope, MsgKind, Value};
use hope_sim::VirtualDuration;

/// Encode a log-entry message: `["log", aid, seq]`.
pub fn log_entry(aid: AidId, seq: u64) -> Value {
    Value::List(vec![
        Value::Str("log".into()),
        Value::Int(aid.index() as i64),
        Value::Int(seq as i64),
    ])
}

/// Decode a log-entry message.
pub fn decode_log_entry(v: &Value) -> Option<(AidId, u64)> {
    let items = v.as_list()?;
    if items.len() != 3 || items[0].as_str()? != "log" {
        return None;
    }
    Some((
        AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
        u64::try_from(items[2].as_int()?).ok()?,
    ))
}

/// Run the stable store until simulation shutdown.
///
/// Each entry costs `flush_time` to persist. With probability
/// `crash_rate`, the node "crashes" while holding the entry: the entry is
/// lost and its assumption denied (the application re-executes from its
/// last stable point and re-logs). Synchronous (request-kind) entries are
/// acknowledged with the flushed sequence number instead of using AIDs —
/// the pessimistic baseline path.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_stable_store(ctx: &mut Ctx, flush_time: VirtualDuration, crash_rate: f64) -> Hope<()> {
    loop {
        let msg = ctx.recv()?;
        let Some((aid, seq)) = decode_log_entry(&msg.payload) else {
            continue;
        };
        let crashed = ctx.chance(crash_rate)?;
        if crashed {
            // The entry never reached the platter. For the optimistic
            // protocol, deny the assumption; for the synchronous baseline,
            // reply with a failure so the caller retries.
            if matches!(msg.kind, MsgKind::Request(_)) {
                ctx.reply(&msg, Value::Bool(false))?;
            } else {
                ctx.deny(aid)?;
            }
            continue;
        }
        ctx.compute(flush_time)?;
        if matches!(msg.kind, MsgKind::Request(_)) {
            ctx.reply(&msg, Value::Bool(true))?;
        } else {
            ctx.affirm(aid)?;
        }
        let _ = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_entry_roundtrip() {
        let aid = AidId::from_index(4);
        let v = log_entry(aid, 9);
        assert_eq!(decode_log_entry(&v), Some((aid, 9)));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode_log_entry(&Value::Unit), None);
        assert_eq!(
            decode_log_entry(&Value::List(vec![Value::Str("log".into())])),
            None
        );
        assert_eq!(
            decode_log_entry(&Value::List(vec![
                Value::Str("nope".into()),
                Value::Int(0),
                Value::Int(0),
            ])),
            None
        );
    }
}
