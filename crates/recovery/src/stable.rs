//! The stable-storage process: flushes log entries and verifies the
//! paper's canonical fault-tolerance assumption.
//!
//! §1 of the paper lists, among the subtler forms of optimism, "the
//! concurrency introduced between the volatile and stable-storage
//! components of a fault-tolerant application"; §2 describes optimistic
//! recovery protocols \[24\] whose basic mechanism "is to optimistically
//! assume that the sender of a message will checkpoint its state to stable
//! storage before failure at that node occurs". Here the assumption is
//! explicit: every log entry carries an AID meaning *"this entry will
//! reach stable storage"*. A successful flush affirms it.
//!
//! Crashes are no longer simulated by hand inside the store (early
//! versions drew a `chance(crash_rate)` and denied the entry themselves):
//! they are injected by a [`FaultPlan`](hope_runtime::FaultPlan) kill, and
//! the HOPE semantics do the rest. Killing the *application* denies its
//! own stability assumptions, rolling it back to its last stable point on
//! restart — which is precisely recovery. Killing the *store* is pure
//! downtime (it owns no assumptions; its journal doubles as the stable
//! medium), and [`run_app_optimistic`](crate::run_app_optimistic)'s
//! reliable sends retry entries the dead store never saw.

use hope_core::AidId;
use hope_runtime::{Ctx, Hope, MsgKind, Value};
use hope_sim::VirtualDuration;

/// Encode a log-entry message: `["log", aid, seq]`.
pub fn log_entry(aid: AidId, seq: u64) -> Value {
    Value::List(vec![
        Value::Str("log".into()),
        Value::Int(aid.index() as i64),
        Value::Int(seq as i64),
    ])
}

/// Decode a log-entry message.
pub fn decode_log_entry(v: &Value) -> Option<(AidId, u64)> {
    let items = v.as_list()?;
    if items.len() != 3 || items[0].as_str()? != "log" {
        return None;
    }
    Some((
        AidId::from_index(u64::try_from(items[1].as_int()?).ok()?),
        u64::try_from(items[2].as_int()?).ok()?,
    ))
}

/// Run the stable store until simulation shutdown.
///
/// Each entry costs `flush_time` to persist, after which its stability
/// assumption is affirmed. Synchronous (request-kind) entries are
/// acknowledged with a reply instead — the pessimistic baseline path.
///
/// The store deliberately has no failure logic of its own: crash it with a
/// [`FaultPlan`](hope_runtime::FaultPlan) kill and the runtime's recovery
/// machinery (journal-prefix replay on restart, reliable-send retries for
/// entries lost in the outage) does the rest.
///
/// # Errors
///
/// Propagates runtime [`Signal`](hope_runtime::Signal)s.
pub fn run_stable_store(ctx: &mut Ctx, flush_time: VirtualDuration) -> Hope<()> {
    loop {
        let msg = ctx.recv()?;
        let Some((aid, seq)) = decode_log_entry(&msg.payload) else {
            continue;
        };
        ctx.compute(flush_time)?;
        if matches!(msg.kind, MsgKind::Request(_)) {
            ctx.reply(&msg, Value::Bool(true))?;
        } else {
            // The affirm may be a recorded no-op when a kill already denied
            // the application's assumption mid-flight; the application is
            // re-logging under a fresh AID by then.
            ctx.affirm(aid)?;
        }
        let _ = seq;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_entry_roundtrip() {
        let aid = AidId::from_index(4);
        let v = log_entry(aid, 9);
        assert_eq!(decode_log_entry(&v), Some((aid, 9)));
    }

    #[test]
    fn rejects_malformed() {
        assert_eq!(decode_log_entry(&Value::Unit), None);
        assert_eq!(
            decode_log_entry(&Value::List(vec![Value::Str("log".into())])),
            None
        );
        assert_eq!(
            decode_log_entry(&Value::List(vec![
                Value::Str("nope".into()),
                Value::Int(0),
                Value::Int(0),
            ])),
            None
        );
    }
}
