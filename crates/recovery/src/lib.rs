//! # hope-recovery — optimistic recovery, the paper's canonical example
//!
//! Optimistic recovery protocols (Strom & Yemini \[24\], discussed in §2 of
//! the paper) let distributed components checkpoint asynchronously by
//! "optimistically assum\[ing\] that the sender of a message will checkpoint
//! its state to stable storage before failure at that node occurs". HOPE
//! subsumes them "because HOPE allows any optimistic assumption to be
//! made, rather than the single non-failure assumption" — this crate is
//! that subsumption, executed:
//!
//! * [`run_stable_store`] flushes log entries, affirming each entry's
//!   stability assumption (crashes are injected by a fault plan, not
//!   simulated by hand — a kill denies the application's open
//!   assumptions for it);
//! * [`run_app_optimistic`] releases output under the assumption and logs
//!   over reliable sends, recovering automatically — via HOPE rollback and
//!   journal-prefix replay — when a crash loses an entry;
//! * [`run_app_sync`] is the synchronous write-ahead baseline for
//!   experiment E10;
//! * [`run_app_batched`] is the group-commit variant: one assumption per
//!   batch of entries — fewer messages, coarser rollback.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod stable;

pub use app::{run_app_batched, run_app_optimistic, run_app_sync};
pub use stable::{decode_log_entry, log_entry, run_stable_store};
