//! Identifier newtypes for the three kinds of entities the HOPE semantics
//! talk about: processes, assumption identifiers (AIDs), and intervals.
//!
//! The paper (§4) ranges over processes `P, Q, …`, assumption identifiers
//! `X, Y, Z` and intervals `A, B, C`. We mirror that notation in the
//! [`Display`](std::fmt::Display) impls (`P0`, `X3`, `A17`) so traces read
//! like the paper.

use std::fmt;

/// Identifier of a HOPE process (the paper's `P`, `Q`, …).
///
/// A process is a communicating sequential entity; the engine tracks one
/// history of intervals per process. Process ids are assigned by the caller
/// (the runtime assigns them densely at spawn time).
///
/// # Examples
///
/// ```
/// use hope_core::ProcessId;
/// let p = ProcessId(3);
/// assert_eq!(p.to_string(), "P3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// Identifier of an optimistic assumption (the paper's *assumption
/// identifier*, `X`, `Y`, `Z`; the `AID` data type of §3).
///
/// An AID is a first-class reference to an optimistic assumption. Dependence
/// (`guess`), confirmation (`affirm`), refutation (`deny`) and ordering
/// constraints (`free_of`) are all expressed against an AID. AIDs are created
/// by [`Engine::aid_init`](crate::Engine::aid_init) (the paper's
/// `aid_init()`).
///
/// # Examples
///
/// ```
/// use hope_core::{Engine, ProcessId};
/// let mut engine = Engine::new();
/// let p = engine.register_process();
/// let x = engine.aid_init(p);
/// assert_eq!(x.to_string(), "X0");
/// # let _ = p;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AidId(pub(crate) u64);

impl AidId {
    /// Raw numeric value of this AID, unique within one [`Engine`].
    ///
    /// Useful for serializing tags onto simulated wire formats.
    ///
    /// [`Engine`]: crate::Engine
    pub fn index(self) -> u64 {
        self.0
    }

    /// Rebuild an `AidId` from a raw value previously obtained via
    /// [`AidId::index`]. The caller must ensure the value originated from the
    /// same engine; the engine validates ids on use and returns
    /// [`Error::UnknownAid`](crate::Error::UnknownAid) otherwise.
    pub fn from_index(v: u64) -> Self {
        AidId(v)
    }
}

impl fmt::Display for AidId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "X{}", self.0)
    }
}

/// Identifier of an interval (the paper's `A`, `B`, `C`; Definition 4.4).
///
/// An interval is the smallest granularity of rollback: the subsequence of a
/// process's history between two guess points. Intervals are created
/// implicitly by [`Engine::guess`](crate::Engine::guess).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IntervalId(pub(crate) u64);

impl IntervalId {
    /// Raw numeric value of this interval id, unique within one engine.
    pub fn index(self) -> u64 {
        self.0
    }

    /// Rebuild an `IntervalId` from a raw value previously obtained via
    /// [`IntervalId::index`] (or an index below
    /// [`Engine::interval_count`](crate::Engine::interval_count)). The
    /// engine validates ids on use.
    pub fn from_index(v: u64) -> Self {
        IntervalId(v)
    }
}

impl fmt::Display for IntervalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(ProcessId(0).to_string(), "P0");
        assert_eq!(AidId(7).to_string(), "X7");
        assert_eq!(IntervalId(12).to_string(), "A12");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(AidId(1) < AidId(2));
        assert!(IntervalId(1) < IntervalId(2));
        assert!(ProcessId(1) < ProcessId(2));
    }

    #[test]
    fn aid_roundtrips_through_raw_index() {
        let x = AidId(42);
        assert_eq!(AidId::from_index(x.index()), x);
    }

    #[test]
    fn process_id_from_u32() {
        assert_eq!(ProcessId::from(9), ProcessId(9));
    }
}
