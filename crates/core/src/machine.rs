//! The paper's abstract machine, literally (§4).
//!
//! "The approach taken here is that a distributed program, Prog, consisting
//! of a collection of communicating sequential processes P, Q, …, is a
//! generator of execution sequences or histories. Each process P generates
//! an execution sequence of process states" — Definition 4.1:
//! `H_P : S0 E0 S1 E1 S2 E2 …`.
//!
//! The [`Machine`] interprets a [`Program`] over an
//! [`Engine`], maintaining one explicit [`History`] per process: a sequence
//! of [`StateRecord`]s carrying the paper's per-state control variables
//! (`G`, the last guess value; `I`, the current interval; and the event that
//! produced the state). Rollback performs the paper's `Del(H_P, A)` —
//! truncating the history suffix from interval `A` — and appends the
//! resumed state with `G = False` (Equation 24).
//!
//! The machine exists for *verification*: the theorem test-suite executes
//! thousands of random programs under random schedules and checks Lemma 5.1,
//! Theorems 5.1/5.2/6.1/6.2/6.3 and Corollary 6.1 against the resulting
//! histories. Applications should use `hope-runtime` instead, which adds
//! real payloads, virtual time and deterministic replay.

use std::collections::{BTreeMap, VecDeque};

use crate::engine::{Engine, GuessOutcome};
use crate::error::Result;
use crate::ids::{AidId, IntervalId, ProcessId};
use crate::interval::Checkpoint;
use crate::observer::{Action, DecideKind, NullObserver, RuntimeObserver};
use crate::program::{Program, SplitMix64, Stmt};
use crate::tag::{ReceiveOutcome, Tag};
use crate::Effect;

/// A message in flight between machine processes: an id, the sender, and
/// the dependence tag recorded at send time (§3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Msg {
    /// Unique message id (per machine).
    pub id: u64,
    /// Sending process.
    pub from: ProcessId,
    /// The sender's dependence set at send time.
    pub tag: Tag,
}

/// The event half of the paper's `S_i E_i S_{i+1}` alternation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A `guess` executed; `value` is what it returned.
    Guess {
        /// The guessed AID.
        aid: AidId,
        /// `true` on speculation, `false` when re-executed after rollback.
        value: bool,
    },
    /// An `affirm` executed (`speculative` per §5.2's two cases).
    Affirm {
        /// The affirmed AID.
        aid: AidId,
        /// Whether the affirm was speculative.
        speculative: bool,
    },
    /// A `deny` executed.
    Deny {
        /// The denied AID.
        aid: AidId,
        /// Whether the deny was speculative.
        speculative: bool,
    },
    /// A `free_of` executed.
    FreeOf {
        /// The AID asserted free of.
        aid: AidId,
    },
    /// An internal computation event.
    Compute,
    /// A message was sent.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message id.
        msg: u64,
    },
    /// A message was received (after ghost filtering).
    Recv {
        /// Message id.
        msg: u64,
        /// Whether delivery made the receiver (more) speculative.
        speculative: bool,
    },
    /// A ghost message was silently discarded before delivery.
    GhostDropped {
        /// Message id.
        msg: u64,
        /// The denied AID that condemned it.
        denied: AidId,
    },
    /// A primitive was skipped because its AID was already consumed
    /// (the paper leaves re-application undefined; the machine records and
    /// moves on so random programs remain executable).
    Skipped {
        /// The offending statement.
        stmt: Stmt,
    },
    /// The process was rolled back and resumed here with `G = False`.
    Resumed {
        /// Program counter of the guess point resumed from.
        at_pc: usize,
    },
}

/// One `S_i` of a history, paired with the event `E_{i-1}` that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateRecord {
    /// The event that led into this state.
    pub event: Event,
    /// The paper's `I`: the current (speculative) interval, `∅` as `None`.
    pub interval: Option<IntervalId>,
    /// The paper's `G`: the value returned by the most recent guess.
    pub g: Option<bool>,
    /// Program counter after the event.
    pub pc: usize,
}

/// The execution history `H_P` of one process (Definition 4.1).
#[derive(Debug, Clone, Default)]
pub struct History {
    states: Vec<StateRecord>,
    /// Count of `Del` truncations applied (rollbacks observed).
    truncations: u64,
}

impl History {
    /// The states recorded so far, oldest first.
    pub fn states(&self) -> &[StateRecord] {
        &self.states
    }

    /// The current state — the paper's `last(H_P)`.
    pub fn last(&self) -> Option<&StateRecord> {
        self.states.last()
    }

    /// Number of `Del(H_P, A)` truncations this history has suffered.
    pub fn truncations(&self) -> u64 {
        self.truncations
    }
}

/// Why [`Machine::step`] made no progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// A statement executed (or was recorded as skipped).
    Executed,
    /// The process is at a `recv` with no deliverable message.
    Blocked,
    /// The process has executed its whole statement list.
    Done,
}

/// Summary of a [`Machine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunReport {
    /// Statements executed.
    pub steps: u64,
    /// `true` if every process ran to completion.
    pub completed: bool,
    /// `true` if the run stopped because every unfinished process was
    /// blocked on `recv` (message deadlock; possible in random programs).
    pub deadlocked: bool,
}

/// A pre-run static check over a [`Program`].
///
/// `hope-core` cannot depend on the `hope-analysis` crate (the dependency
/// points the other way), so this trait inverts the direction: an embedding
/// passes any validator — typically `hope_analysis::Analyzer` — to
/// [`Machine::new_validated`], and statically doomed programs are rejected
/// with [`Error::ProgramRejected`](crate::Error::ProgramRejected) before a
/// single statement runs.
pub trait ProgramValidator {
    /// Check `program`; return every reason it must not run (empty result
    /// means the program is admissible).
    ///
    /// # Errors
    ///
    /// One human-readable reason per fatal static diagnostic.
    fn validate(&self, program: &Program) -> std::result::Result<(), Vec<String>>;
}

/// A validator accepting every program (useful as a default / in tests).
#[derive(Debug, Clone, Copy, Default)]
pub struct AcceptAll;

impl ProgramValidator for AcceptAll {
    fn validate(&self, _program: &Program) -> std::result::Result<(), Vec<String>> {
        Ok(())
    }
}

#[derive(Debug, Clone)]
struct Mark {
    pc: usize,
    hist_len: usize,
    delivered_len: usize,
}

#[derive(Debug, Clone)]
struct MProc {
    pid: ProcessId,
    pc: usize,
    mailbox: VecDeque<Msg>,
    /// Messages delivered so far, in delivery order (for re-enqueueing on
    /// rollback).
    delivered: Vec<Msg>,
    history: History,
    marks: BTreeMap<IntervalId, Mark>,
}

/// Interpreter for straight-line HOPE programs over an [`Engine`].
///
/// # Examples
///
/// Figure 2's control skeleton as a two-process program:
///
/// ```
/// use hope_core::machine::Machine;
/// use hope_core::program::{Program, Stmt};
///
/// // P0 (Worker): guess(x0); compute; compute.
/// // P1 (WorryWart): compute (the real RPC); affirm(x0).
/// let program = Program::new(vec![
///     vec![Stmt::Guess(0), Stmt::Compute, Stmt::Compute],
///     vec![Stmt::Compute, Stmt::Affirm(0)],
/// ]);
/// let mut m = Machine::new(program);
/// let report = m.run(100);
/// assert!(report.completed);
/// assert_eq!(m.engine().stats().finalized, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    engine: Engine,
    program: Program,
    aids: Vec<AidId>,
    procs: Vec<MProc>,
    next_msg: u64,
}

impl Machine {
    /// Build a machine for `program`, registering its processes and
    /// pre-declaring its AIDs (all created by process 0, matching the
    /// paper's convention that `aid_init` only names an assumption).
    pub fn new(program: Program) -> Self {
        let mut engine = Engine::new();
        engine.set_invariant_checking(true);
        let procs: Vec<MProc> = (0..program.process_count())
            .map(|_| MProc {
                pid: engine.register_process(),
                pc: 0,
                mailbox: VecDeque::new(),
                delivered: Vec::new(),
                history: History::default(),
                marks: BTreeMap::new(),
            })
            .collect();
        let creator = procs.first().map(|p| p.pid).unwrap_or(ProcessId(0));
        let aids = if program.process_count() == 0 {
            Vec::new()
        } else {
            (0..program.aid_count)
                .map(|_| engine.aid_init(creator))
                .collect()
        };
        Machine {
            engine,
            program,
            aids,
            procs,
            next_msg: 0,
        }
    }

    /// Build a machine for `program` only if `validator` admits it.
    ///
    /// # Errors
    ///
    /// [`Error::ProgramRejected`](crate::Error::ProgramRejected) carrying
    /// the validator's reasons when the program is statically doomed.
    pub fn new_validated(program: Program, validator: &dyn ProgramValidator) -> Result<Self> {
        match validator.validate(&program) {
            Ok(()) => Ok(Machine::new(program)),
            Err(reasons) => Err(crate::Error::ProgramRejected { reasons }),
        }
    }

    /// The underlying semantics engine (read-only).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The pre-declared AIDs, indexed by the program's `AidVar`s.
    pub fn aids(&self) -> &[AidId] {
        &self.aids
    }

    /// The execution history `H_P` of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn history(&self, p: usize) -> &History {
        &self.procs[p].history
    }

    /// The engine-level process id of machine process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn pid(&self, p: usize) -> ProcessId {
        self.procs[p].pid
    }

    /// The program being interpreted.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Number of machine processes.
    pub fn process_count(&self) -> usize {
        self.procs.len()
    }

    /// Program counter of process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn pc(&self, p: usize) -> usize {
        self.procs[p].pc
    }

    /// The next statement process `p` would execute, or `None` when done.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn next_stmt(&self, p: usize) -> Option<Stmt> {
        self.program.code[p].get(self.procs[p].pc).copied()
    }

    /// What [`Machine::step`] *would* do for process `p`, without mutating
    /// anything.
    ///
    /// Unlike stepping a blocked process (which pops and records ghost
    /// messages before reporting [`StepOutcome::Blocked`]), this probe
    /// leaves ghosts queued: a `recv` counts as enabled iff the mailbox
    /// holds at least one message none of whose tag AIDs is definitively
    /// denied. Model checkers use this to enumerate enabled transitions
    /// from a state they intend to snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn poll(&self, p: usize) -> StepOutcome {
        match self.next_stmt(p) {
            None => StepOutcome::Done,
            Some(Stmt::Recv) => {
                let deliverable = self.procs[p].mailbox.iter().any(|m| {
                    !m.tag
                        .iter()
                        .any(|x| matches!(self.engine.aid_state(x), Ok(crate::AidState::Denied)))
                });
                if deliverable {
                    StepOutcome::Executed
                } else {
                    StepOutcome::Blocked
                }
            }
            Some(_) => StepOutcome::Executed,
        }
    }

    /// Pending (undelivered) messages of process `p`, front of queue first.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn mailbox(&self, p: usize) -> impl Iterator<Item = &Msg> {
        self.procs[p].mailbox.iter()
    }

    /// Messages already delivered to process `p`, in delivery order.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn delivered(&self, p: usize) -> &[Msg] {
        &self.procs[p].delivered
    }

    /// The resume mark recorded when live interval `interval` of process
    /// `p` opened: `(pc, history_len, delivered_len)` — where the process
    /// would restart if the interval rolled back.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn resume_mark(&self, p: usize, interval: IntervalId) -> Option<(usize, usize, usize)> {
        self.procs[p]
            .marks
            .get(&interval)
            .map(|m| (m.pc, m.hist_len, m.delivered_len))
    }

    /// Execute one statement of process `p`.
    ///
    /// # Errors
    ///
    /// Propagates engine errors other than the expected
    /// [`Error::AidConsumed`](crate::Error::AidConsumed) (which is recorded
    /// as an [`Event::Skipped`]). With a well-formed machine none occur.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn step(&mut self, p: usize) -> Result<StepOutcome> {
        self.step_observed(p, &mut NullObserver)
    }

    /// Like [`Machine::step`], but reporting the executed [`Action`] (with
    /// its engine effects) to `observer`.
    ///
    /// # Errors
    ///
    /// As for [`Machine::step`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn step_observed(
        &mut self,
        p: usize,
        observer: &mut dyn RuntimeObserver,
    ) -> Result<StepOutcome> {
        let (pid, pc) = {
            let proc = &self.procs[p];
            (proc.pid, proc.pc)
        };
        if pc >= self.program.code[p].len() {
            return Ok(StepOutcome::Done);
        }
        let stmt = self.program.code[p][pc];
        match stmt {
            Stmt::Guess(v) => {
                let aid = self.aids[v];
                let (outcome, effects) = self.engine.guess(pid, &[aid], Checkpoint(pc as u64))?;
                let value = match outcome {
                    GuessOutcome::Begun(interval) => {
                        self.mark(p, interval);
                        self.record(p, Event::Guess { aid, value: true }, Some(true));
                        true
                    }
                    GuessOutcome::AlreadyFalse(_) => {
                        self.record(p, Event::Guess { aid, value: false }, Some(false));
                        false
                    }
                };
                self.procs[p].pc += 1;
                self.apply(&effects);
                observer.observe(pid, &Action::Guess { aid, value }, &effects);
            }
            Stmt::Affirm(v) => {
                let aid = self.aids[v];
                let speculative = self.engine.is_speculative(pid)?;
                match self.engine.affirm(pid, aid) {
                    Ok(effects) => {
                        self.record(p, Event::Affirm { aid, speculative }, None);
                        self.procs[p].pc += 1;
                        self.apply(&effects);
                        observer.observe(pid, &Action::Affirm { aid, speculative }, &effects);
                    }
                    Err(crate::Error::AidConsumed(_)) => {
                        self.record(p, Event::Skipped { stmt }, None);
                        self.procs[p].pc += 1;
                        observer.observe(
                            pid,
                            &Action::SkippedDecide {
                                aid,
                                kind: DecideKind::Affirm,
                            },
                            &[],
                        );
                    }
                    Err(e) => return Err(e),
                }
            }
            Stmt::Deny(v) => {
                let aid = self.aids[v];
                let speculative = match self.engine.current_interval(pid)? {
                    None => false,
                    Some(a) => !self.engine.interval(a)?.ido().contains(&aid),
                };
                match self.engine.deny(pid, aid) {
                    Ok(effects) => {
                        self.record(p, Event::Deny { aid, speculative }, None);
                        self.procs[p].pc += 1;
                        self.apply(&effects);
                        observer.observe(pid, &Action::Deny { aid, speculative }, &effects);
                    }
                    Err(crate::Error::AidConsumed(_)) => {
                        self.record(p, Event::Skipped { stmt }, None);
                        self.procs[p].pc += 1;
                        observer.observe(
                            pid,
                            &Action::SkippedDecide {
                                aid,
                                kind: DecideKind::Deny,
                            },
                            &[],
                        );
                    }
                    Err(e) => return Err(e),
                }
            }
            Stmt::FreeOf(v) => {
                let aid = self.aids[v];
                match self.engine.free_of(pid, aid) {
                    Ok(effects) => {
                        self.record(p, Event::FreeOf { aid }, None);
                        self.procs[p].pc += 1;
                        self.apply(&effects);
                        observer.observe(pid, &Action::FreeOf { aid }, &effects);
                    }
                    Err(crate::Error::AidConsumed(_)) => {
                        self.record(p, Event::Skipped { stmt }, None);
                        self.procs[p].pc += 1;
                        observer.observe(
                            pid,
                            &Action::SkippedDecide {
                                aid,
                                kind: DecideKind::FreeOf,
                            },
                            &[],
                        );
                    }
                    Err(e) => return Err(e),
                }
            }
            Stmt::Compute => {
                self.record(p, Event::Compute, None);
                self.procs[p].pc += 1;
            }
            Stmt::Send { to } => {
                let tag = self.engine.dependence_tag(pid)?;
                let msg = Msg {
                    id: self.next_msg,
                    from: pid,
                    tag,
                };
                self.next_msg += 1;
                let to_pid = self.procs[to].pid;
                self.record(
                    p,
                    Event::Send {
                        to: to_pid,
                        msg: msg.id,
                    },
                    None,
                );
                let msg_id = msg.id;
                self.procs[to].mailbox.push_back(msg);
                self.procs[p].pc += 1;
                observer.observe(
                    pid,
                    &Action::Send {
                        to: to_pid,
                        msg: msg_id,
                    },
                    &[],
                );
            }
            Stmt::Recv => loop {
                let msg = match self.procs[p].mailbox.pop_front() {
                    Some(m) => m,
                    None => return Ok(StepOutcome::Blocked),
                };
                let (outcome, effects) =
                    self.engine
                        .implicit_guess(pid, &msg.tag, Checkpoint(pc as u64))?;
                match outcome {
                    ReceiveOutcome::Ghost(denied) => {
                        self.record(
                            p,
                            Event::GhostDropped {
                                msg: msg.id,
                                denied,
                            },
                            None,
                        );
                        observer.observe(
                            pid,
                            &Action::GhostDropped {
                                msg: msg.id,
                                from: msg.from,
                                denied,
                            },
                            &effects,
                        );
                        continue; // look for the next deliverable message
                    }
                    ReceiveOutcome::Clean => {
                        self.record(
                            p,
                            Event::Recv {
                                msg: msg.id,
                                speculative: false,
                            },
                            None,
                        );
                        let (msg_id, from) = (msg.id, msg.from);
                        self.procs[p].delivered.push(msg);
                        self.procs[p].pc += 1;
                        self.apply(&effects);
                        observer.observe(
                            pid,
                            &Action::Recv {
                                msg: msg_id,
                                from,
                                speculative: false,
                            },
                            &effects,
                        );
                        break;
                    }
                    ReceiveOutcome::Speculative(interval) => {
                        self.mark(p, interval);
                        self.record(
                            p,
                            Event::Recv {
                                msg: msg.id,
                                speculative: true,
                            },
                            None,
                        );
                        let (msg_id, from) = (msg.id, msg.from);
                        self.procs[p].delivered.push(msg);
                        self.procs[p].pc += 1;
                        self.apply(&effects);
                        observer.observe(
                            pid,
                            &Action::Recv {
                                msg: msg_id,
                                from,
                                speculative: true,
                            },
                            &effects,
                        );
                        break;
                    }
                }
            },
        }
        Ok(StepOutcome::Executed)
    }

    /// Run processes round-robin until completion, deadlock, or `fuel`
    /// statements have executed.
    ///
    /// # Panics
    ///
    /// Panics if the engine reports an error (impossible for machine-built
    /// programs; indicates an engine bug).
    pub fn run(&mut self, fuel: u64) -> RunReport {
        self.run_with_schedule(fuel, |_machine, round| round, &mut NullObserver)
    }

    /// Run with a seeded pseudo-random schedule: at each step a random
    /// runnable process executes. Deterministic for a given seed.
    ///
    /// # Panics
    ///
    /// As for [`Machine::run`].
    pub fn run_seeded(&mut self, fuel: u64, seed: u64) -> RunReport {
        let mut rng = SplitMix64::new(seed);
        self.run_with_schedule(
            fuel,
            move |_machine, _round| rng.next() as usize,
            &mut NullObserver,
        )
    }

    /// Like [`Machine::run`], reporting every executed [`Action`] to
    /// `observer`.
    ///
    /// # Panics
    ///
    /// As for [`Machine::run`].
    pub fn run_observed(&mut self, fuel: u64, observer: &mut dyn RuntimeObserver) -> RunReport {
        self.run_with_schedule(fuel, |_machine, round| round, observer)
    }

    /// Like [`Machine::run_seeded`], reporting every executed [`Action`] to
    /// `observer`.
    ///
    /// # Panics
    ///
    /// As for [`Machine::run`].
    pub fn run_seeded_observed(
        &mut self,
        fuel: u64,
        seed: u64,
        observer: &mut dyn RuntimeObserver,
    ) -> RunReport {
        let mut rng = SplitMix64::new(seed);
        self.run_with_schedule(fuel, move |_machine, _round| rng.next() as usize, observer)
    }

    fn run_with_schedule<F>(
        &mut self,
        fuel: u64,
        mut pick: F,
        observer: &mut dyn RuntimeObserver,
    ) -> RunReport
    where
        F: FnMut(&Machine, usize) -> usize,
    {
        let n = self.procs.len();
        let mut steps = 0u64;
        let mut round = 0usize;
        if n == 0 {
            return RunReport {
                steps,
                completed: true,
                deadlocked: false,
            };
        }
        loop {
            if steps >= fuel {
                return RunReport {
                    steps,
                    completed: false,
                    deadlocked: false,
                };
            }
            // Try up to n processes starting from the schedule's pick; track
            // whether anyone can run at all.
            let start = pick(self, round) % n;
            round += 1;
            let mut any_executed = false;
            let mut all_done = true;
            for off in 0..n {
                let p = (start + off) % n;
                match self
                    .step_observed(p, observer)
                    .expect("machine-built programs cannot err")
                {
                    StepOutcome::Executed => {
                        steps += 1;
                        any_executed = true;
                        all_done = false;
                        break;
                    }
                    StepOutcome::Blocked => {
                        all_done = false;
                    }
                    StepOutcome::Done => {}
                }
            }
            if all_done {
                return RunReport {
                    steps,
                    completed: true,
                    deadlocked: false,
                };
            }
            if !any_executed {
                return RunReport {
                    steps,
                    completed: false,
                    deadlocked: true,
                };
            }
        }
    }

    fn mark(&mut self, p: usize, interval: IntervalId) {
        let proc = &mut self.procs[p];
        proc.marks.insert(
            interval,
            Mark {
                pc: proc.pc,
                hist_len: proc.history.states.len(),
                delivered_len: proc.delivered.len(),
            },
        );
    }

    fn record(&mut self, p: usize, event: Event, g: Option<bool>) {
        let pid = self.procs[p].pid;
        let interval = self
            .engine
            .current_interval(pid)
            .expect("machine process is registered");
        let g = g.or_else(|| self.procs[p].history.last().and_then(|s| s.g));
        let pc = self.procs[p].pc;
        self.procs[p].history.states.push(StateRecord {
            event,
            interval,
            g,
            pc,
        });
    }

    /// Apply engine effects: every `RolledBack` effect truncates the
    /// victim's history (`Del(H_P, A)`), resets its program counter to the
    /// guess point, and re-enqueues messages delivered after that point.
    fn apply(&mut self, effects: &[Effect]) {
        for e in effects {
            if let Effect::RolledBack {
                process, intervals, ..
            } = e
            {
                let p = self
                    .procs
                    .iter()
                    .position(|pr| pr.pid == *process)
                    .expect("effect names a machine process");
                let first = intervals
                    .first()
                    .expect("rollback effect lists at least one interval");
                let proc = &mut self.procs[p];
                let mark = proc
                    .marks
                    .get(first)
                    .expect("every live interval has a mark")
                    .clone();
                // Del(H_P, A): discard the suffix, then append the resumed
                // state with G = False (Equation 24).
                proc.history.states.truncate(mark.hist_len);
                proc.history.truncations += 1;
                // Re-enqueue messages delivered in the discarded suffix, in
                // original order, ahead of anything already queued.
                for msg in proc
                    .delivered
                    .split_off(mark.delivered_len)
                    .into_iter()
                    .rev()
                {
                    proc.mailbox.push_front(msg);
                }
                proc.pc = mark.pc;
                for a in intervals {
                    proc.marks.remove(a);
                }
                let pc = proc.pc;
                self.record(p, Event::Resumed { at_pc: pc }, Some(false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IntervalStatus;

    #[test]
    fn affirmed_run_completes_and_finalizes() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::Affirm(0)],
        ]);
        let mut m = Machine::new(program);
        let r = m.run(100);
        assert!(r.completed);
        assert!(!r.deadlocked);
        assert_eq!(m.engine().stats().finalized, 1);
        assert_eq!(m.engine().stats().rollback_events, 0);
    }

    #[test]
    fn denied_run_rolls_back_and_reexecutes_false() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute, Stmt::Compute],
            vec![Stmt::Compute, Stmt::Deny(0)],
        ]);
        let mut m = Machine::new(program);
        let r = m.run(100);
        assert!(r.completed);
        let h = m.history(0);
        assert_eq!(h.truncations(), 1);
        // The final history must contain the re-executed guess with G=False.
        let guesses: Vec<&StateRecord> = h
            .states()
            .iter()
            .filter(|s| matches!(s.event, Event::Guess { .. }))
            .collect();
        assert_eq!(guesses.len(), 1, "history was truncated");
        assert_eq!(guesses[0].g, Some(false));
    }

    #[test]
    fn message_propagates_dependence_and_rollback() {
        // P0 guesses then sends to P1; P1 receives (implicit guess), then
        // P2 denies. Both P0 and P1 roll back.
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Send { to: 1 }, Stmt::Compute],
            vec![Stmt::Recv, Stmt::Compute],
            vec![Stmt::Compute, Stmt::Compute, Stmt::Compute, Stmt::Deny(0)],
        ]);
        let mut m = Machine::new(program);
        let r = m.run(1000);
        assert!(r.completed, "{r:?}");
        assert!(m.history(0).truncations() >= 1);
        assert!(m.history(1).truncations() >= 1);
        // After rollback the re-sent message (sent while definite, since the
        // re-executed guess returns false) is delivered cleanly.
        let recvs: Vec<&StateRecord> = m
            .history(1)
            .states()
            .iter()
            .filter(|s| matches!(s.event, Event::Recv { .. }))
            .collect();
        assert_eq!(recvs.len(), 1);
        match recvs[0].event {
            Event::Recv { speculative, .. } => assert!(!speculative),
            _ => unreachable!(),
        }
    }

    #[test]
    fn ghost_message_is_dropped() {
        // P0 guesses, sends, then P0 itself denies (self-deny definite).
        // P1's receive must observe a ghost and block for the re-sent copy.
        let program = Program::new(vec![
            vec![
                Stmt::Guess(0),
                Stmt::Send { to: 1 },
                Stmt::Deny(0),
                Stmt::Send { to: 1 },
            ],
            vec![Stmt::Recv],
        ]);
        let mut m = Machine::new(program);
        let r = m.run(1000);
        assert!(r.completed, "{r:?}");
        let ghost_drops = m
            .history(1)
            .states()
            .iter()
            .filter(|s| matches!(s.event, Event::GhostDropped { .. }))
            .count();
        assert!(ghost_drops >= 1);
        assert_eq!(m.engine().stats().rollback_events, 1);
        // P1 never became speculative: the ghost was filtered pre-delivery.
        assert_eq!(m.history(1).truncations(), 0);
    }

    #[test]
    fn deadlock_is_reported() {
        let program = Program::new(vec![vec![Stmt::Recv]]);
        let mut m = Machine::new(program);
        let r = m.run(100);
        assert!(!r.completed);
        assert!(r.deadlocked);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let program = Program::new(vec![vec![Stmt::Compute; 100]]);
        let mut m = Machine::new(program);
        let r = m.run(10);
        assert!(!r.completed);
        assert!(!r.deadlocked);
        assert_eq!(r.steps, 10);
    }

    #[test]
    fn seeded_runs_are_deterministic() {
        let program = Program::generate(11, 3, 30, 4);
        let mut m1 = Machine::new(program.clone());
        let mut m2 = Machine::new(program);
        let r1 = m1.run_seeded(10_000, 99);
        let r2 = m2.run_seeded(10_000, 99);
        assert_eq!(r1, r2);
        assert_eq!(m1.engine().stats(), m2.engine().stats());
    }

    #[test]
    fn random_programs_preserve_engine_invariants() {
        for seed in 0..40 {
            let program = Program::generate(seed, 3, 25, 4);
            let mut m = Machine::new(program);
            m.run_seeded(5_000, seed.wrapping_mul(7919));
            m.engine()
                .verify_invariants()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn rolled_back_intervals_stay_rolled_back() {
        // Theorem 5.2 sanity over random runs: no interval is both finalized
        // and rolled back.
        for seed in 0..20 {
            let program = Program::generate(seed + 1000, 4, 20, 3);
            let mut m = Machine::new(program);
            m.run_seeded(5_000, seed);
            let engine = m.engine();
            for i in 0..engine.interval_count() {
                let v = engine.interval(crate::IntervalId(i as u64)).unwrap();
                // Just type-checking the full enumeration works:
                let _ = matches!(v.status(), IntervalStatus::Speculative);
            }
        }
    }

    #[test]
    fn validated_construction_accepts_and_rejects() {
        struct NoDenies;
        impl ProgramValidator for NoDenies {
            fn validate(&self, program: &Program) -> std::result::Result<(), Vec<String>> {
                let denies: Vec<String> = program
                    .code
                    .iter()
                    .enumerate()
                    .flat_map(|(p, stmts)| {
                        stmts.iter().filter_map(move |s| match s {
                            Stmt::Deny(x) => Some(format!("P{p} denies x{x}")),
                            _ => None,
                        })
                    })
                    .collect();
                if denies.is_empty() {
                    Ok(())
                } else {
                    Err(denies)
                }
            }
        }

        let clean = Program::new(vec![vec![Stmt::Guess(0), Stmt::Affirm(0)]]);
        assert!(Machine::new_validated(clean.clone(), &NoDenies).is_ok());
        assert!(Machine::new_validated(clean, &AcceptAll).is_ok());

        let doomed = Program::new(vec![vec![Stmt::Guess(0), Stmt::Deny(0)]]);
        match Machine::new_validated(doomed, &NoDenies) {
            Err(crate::Error::ProgramRejected { reasons }) => {
                assert_eq!(reasons, vec!["P0 denies x0".to_string()]);
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn empty_program_completes() {
        let mut m = Machine::new(Program::new(vec![]));
        let r = m.run(10);
        assert!(r.completed);
    }
}
