//! Human-readable rendering of engine activity and machine histories.
//!
//! Traces are the debugging surface of an optimistic system: when a
//! rollback cascade surprises you, the trace shows which deny reached which
//! interval through which dependence edge. [`TraceLog`] collects
//! [`Effect`]s with a caller-supplied label per transition and renders them
//! in the paper's notation (`P0: interval A3 started`, `X1 denied`, …).

use std::fmt;

use crate::effect::Effect;
use crate::machine::{Event, History};

/// An accumulating, renderable log of engine effects.
///
/// # Examples
///
/// ```
/// use hope_core::{Engine, Checkpoint};
/// use hope_core::trace::TraceLog;
///
/// let mut engine = Engine::new();
/// let mut log = TraceLog::new();
/// let p = engine.register_process();
/// let x = engine.aid_init(p);
/// let (_, fx) = engine.guess(p, &[x], Checkpoint(0))?;
/// log.extend("worker guesses PartPage", &fx);
/// let fx = engine.affirm(p, x)?;
/// log.extend("worrywart affirms", &fx);
/// assert!(log.render().contains("interval A0 started"));
/// # Ok::<(), hope_core::Error>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    entries: Vec<(String, Vec<Effect>)>,
}

impl TraceLog {
    /// Create an empty log.
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Append one transition's effects under a label.
    pub fn extend(&mut self, label: impl Into<String>, effects: &[Effect]) {
        self.entries.push((label.into(), effects.to_vec()));
    }

    /// Number of transitions logged.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Render the whole log as indented text.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, effects) in &self.entries {
            writeln!(f, "{label}")?;
            for e in effects {
                writeln!(f, "    {e}")?;
            }
        }
        Ok(())
    }
}

/// Render one machine [`Event`] in compact notation.
pub fn render_event(event: &Event) -> String {
    match event {
        Event::Guess { aid, value } => format!("guess({aid}) -> {value}"),
        Event::Affirm { aid, speculative } => {
            format!("affirm({aid}){}", spec_suffix(*speculative))
        }
        Event::Deny { aid, speculative } => format!("deny({aid}){}", spec_suffix(*speculative)),
        Event::FreeOf { aid } => format!("free_of({aid})"),
        Event::Compute => "compute".to_string(),
        Event::Send { to, msg } => format!("send m{msg} -> {to}"),
        Event::Recv { msg, speculative } => {
            format!("recv m{msg}{}", spec_suffix(*speculative))
        }
        Event::GhostDropped { msg, denied } => format!("drop ghost m{msg} ({denied} denied)"),
        Event::Skipped { stmt } => format!("skip {stmt}"),
        Event::Resumed { at_pc } => format!("ROLLBACK, resume @pc{at_pc} with False"),
    }
}

fn spec_suffix(speculative: bool) -> &'static str {
    if speculative {
        " [speculative]"
    } else {
        ""
    }
}

/// Render a whole history, one state per line, in the paper's
/// `S_i E_i S_{i+1}` spirit.
pub fn render_history(label: &str, history: &History) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{label} (truncations: {}):", history.truncations());
    for (i, s) in history.states().iter().enumerate() {
        let interval = match s.interval {
            Some(a) => a.to_string(),
            None => "∅".to_string(),
        };
        let g = match s.g {
            Some(true) => "T",
            Some(false) => "F",
            None => "-",
        };
        let _ = writeln!(
            out,
            "  S{i:<3} pc={:<3} I={interval:<5} G={g}  {}",
            s.pc,
            render_event(&s.event)
        );
    }
    out
}

/// Render the engine's live dependency graph in Graphviz DOT format:
/// interval nodes (boxes, colored by status), AID nodes (ellipses, colored
/// by state), and `IDO`/`DOM` edges. Paste into `dot -Tsvg` when a
/// rollback cascade needs staring at. Fossil-collected records (below
/// [`Engine::interval_horizon`](crate::Engine::interval_horizon)) are
/// skipped — they hold no dependence edges by construction.
pub fn render_dependency_graph(engine: &crate::Engine) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("digraph hope {\n  rankdir=LR;\n");
    for i in engine.interval_horizon()..engine.interval_count() as u64 {
        let id = crate::IntervalId::from_index(i);
        let v = engine.interval(id).expect("index in range");
        let color = match v.status() {
            crate::IntervalStatus::Speculative => "orange",
            crate::IntervalStatus::Definite => "green",
            crate::IntervalStatus::RolledBack => "gray",
        };
        let _ = writeln!(
            out,
            "  \"{id}\" [shape=box, color={color}, label=\"{id}\\n{}\"];",
            v.process()
        );
        for x in v.ido() {
            let _ = writeln!(out, "  \"{id}\" -> \"{x}\" [label=\"IDO\"];");
        }
    }
    for i in engine.aid_horizon()..engine.aid_count() as u64 {
        let x = crate::AidId::from_index(i);
        let v = engine.aid(x).expect("index in range");
        let color = match v.state() {
            crate::AidState::Undecided => "orange",
            crate::AidState::Affirmed => "green",
            crate::AidState::Denied => "red",
        };
        let _ = writeln!(out, "  \"{x}\" [shape=ellipse, color={color}];");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use crate::program::{Program, Stmt};

    #[test]
    fn trace_log_accumulates_and_renders() {
        let mut engine = crate::Engine::new();
        let mut log = TraceLog::new();
        assert!(log.is_empty());
        let p = engine.register_process();
        let x = engine.aid_init(p);
        let (_, fx) = engine.guess(p, &[x], crate::Checkpoint(0)).unwrap();
        log.extend("guess", &fx);
        let fx = engine.deny(p, x).unwrap();
        log.extend("deny", &fx);
        assert_eq!(log.len(), 2);
        let text = log.render();
        assert!(text.contains("interval A0 started"), "{text}");
        assert!(text.contains("X0 denied"), "{text}");
        assert!(text.contains("rolled back"), "{text}");
    }

    #[test]
    fn history_renders_guess_values() {
        let program = Program::new(vec![
            vec![Stmt::Guess(0), Stmt::Compute],
            vec![Stmt::Deny(0)],
        ]);
        let mut m = Machine::new(program);
        m.run(100);
        let text = render_history("P0", m.history(0));
        assert!(text.contains("G=F"), "{text}");
        assert!(text.contains("ROLLBACK"), "{text}");
    }

    #[test]
    fn dependency_graph_renders_dot() {
        let mut engine = crate::Engine::new();
        let p = engine.register_process();
        let q = engine.register_process();
        let x = engine.aid_init(p);
        let y = engine.aid_init(p);
        engine.guess(p, &[x], crate::Checkpoint(0)).unwrap();
        engine.guess(q, &[y], crate::Checkpoint(0)).unwrap();
        engine.affirm(q, x).unwrap(); // speculative
        let dot = render_dependency_graph(&engine);
        assert!(dot.starts_with("digraph hope {"), "{dot}");
        assert!(dot.contains("\"A0\" [shape=box"), "{dot}");
        assert!(dot.contains("\"X1\" [shape=ellipse"), "{dot}");
        assert!(dot.contains("-> \"X1\""), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
    }

    #[test]
    fn event_rendering_covers_all_variants() {
        use crate::{AidId, ProcessId};
        let cases = [
            Event::Guess {
                aid: AidId::from_index(0),
                value: true,
            },
            Event::Affirm {
                aid: AidId::from_index(0),
                speculative: true,
            },
            Event::Deny {
                aid: AidId::from_index(0),
                speculative: false,
            },
            Event::FreeOf {
                aid: AidId::from_index(0),
            },
            Event::Compute,
            Event::Send {
                to: ProcessId(1),
                msg: 4,
            },
            Event::Recv {
                msg: 4,
                speculative: true,
            },
            Event::GhostDropped {
                msg: 4,
                denied: AidId::from_index(0),
            },
            Event::Skipped {
                stmt: Stmt::Affirm(0),
            },
            Event::Resumed { at_pc: 3 },
        ];
        for c in &cases {
            assert!(!render_event(c).is_empty());
        }
    }
}
