//! Runtime observation: a typed stream of process actions for dynamic
//! analyses to consume.
//!
//! The [`Engine`](crate::Engine) reports *state changes* as [`Effect`]s, but
//! a dynamic analysis (a race detector, a tracer, a coverage tool) also
//! needs the *actions* that caused them — including the ones the semantics
//! deliberately swallows: a decider skipped because its AID was already
//! consumed (§5.2's one-shot rule), a ghost message filtered before
//! delivery (§7), a re-executed guess answering `False` (Equation 24).
//!
//! [`RuntimeObserver`] is the consumer interface. Both embeddings feed it:
//! the abstract [`machine`](crate::machine) via
//! [`Machine::run_observed`](crate::machine::Machine::run_observed) (used by
//! the exhaustive agreement test-suites) and `hope-runtime`'s `Simulation`
//! via its `set_observer` hook (used on real simulated applications). Each
//! callback delivers the acting process, the [`Action`] it performed, and
//! the ordered [`Effect`] list the engine produced for it, so an observer
//! sees cause and consequence atomically.

use crate::ids::{AidId, ProcessId};
use crate::Effect;

/// Which decider primitive an [`Action::SkippedDecide`] was.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DecideKind {
    /// `affirm(x)`.
    Affirm,
    /// `deny(x)`.
    Deny,
    /// `free_of(x)`.
    FreeOf,
}

impl DecideKind {
    /// The primitive's keyword.
    pub fn name(self) -> &'static str {
        match self {
            DecideKind::Affirm => "affirm",
            DecideKind::Deny => "deny",
            DecideKind::FreeOf => "free_of",
        }
    }
}

/// One observable action a process performed.
///
/// Message-bearing variants carry a runtime-assigned message id so an
/// observer can pair each receive (or ghost drop) with its send.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Action {
    /// A `guess` executed; `value` is what it returned (`false` on
    /// re-execution after rollback, or when the AID was already denied).
    Guess {
        /// The guessed AID.
        aid: AidId,
        /// The value the guess returned.
        value: bool,
    },
    /// An `affirm` executed with effect.
    Affirm {
        /// The affirmed AID.
        aid: AidId,
        /// Whether the affirm was speculative (§5.2's second case).
        speculative: bool,
    },
    /// A `deny` executed with effect.
    Deny {
        /// The denied AID.
        aid: AidId,
        /// Whether the deny was speculative (Equation 16).
        speculative: bool,
    },
    /// A `free_of` executed with effect (an affirm or a deny per
    /// Equations 17–19; the accompanying effects show which).
    FreeOf {
        /// The AID asserted free of.
        aid: AidId,
    },
    /// A decider was skipped because its AID was already consumed — the
    /// dynamic signature of decided-AID reuse.
    SkippedDecide {
        /// The already-consumed AID.
        aid: AidId,
        /// Which primitive was skipped.
        kind: DecideKind,
    },
    /// A message was sent.
    Send {
        /// Destination process.
        to: ProcessId,
        /// Message id.
        msg: u64,
    },
    /// A message was received (after ghost filtering).
    Recv {
        /// Message id.
        msg: u64,
        /// Sending process.
        from: ProcessId,
        /// Whether delivery made the receiver (more) speculative.
        speculative: bool,
    },
    /// A ghost message was discarded before delivery (§7) — the dynamic
    /// signature of a send racing a deny.
    GhostDropped {
        /// Message id.
        msg: u64,
        /// Sending process.
        from: ProcessId,
        /// The denied AID that condemned the message.
        denied: AidId,
    },
}

/// A consumer of runtime actions.
///
/// Implementations must not assume anything about scheduling beyond what
/// the callbacks show: `observe` is invoked once per action, in the global
/// order the embedding executed them, with the engine's effects for that
/// action (empty for pure bookkeeping actions such as a skipped decider).
pub trait RuntimeObserver {
    /// `process` performed `action`, producing `effects`.
    fn observe(&mut self, process: ProcessId, action: &Action, effects: &[Effect]);
}

/// An observer that ignores everything (useful as a default).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RuntimeObserver for NullObserver {
    fn observe(&mut self, _process: ProcessId, _action: &Action, _effects: &[Effect]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decide_kind_names() {
        assert_eq!(DecideKind::Affirm.name(), "affirm");
        assert_eq!(DecideKind::Deny.name(), "deny");
        assert_eq!(DecideKind::FreeOf.name(), "free_of");
    }

    #[test]
    fn null_observer_accepts_actions() {
        let mut o = NullObserver;
        o.observe(
            ProcessId(0),
            &Action::Guess {
                aid: AidId(0),
                value: true,
            },
            &[],
        );
    }
}
