//! The semantics engine: an executable transcription of §5 of the paper.
//!
//! The [`Engine`] owns every assumption identifier, interval and per-process
//! interval history, and implements the five transitions of §5 —
//! [`guess`](Engine::guess) (§5.1), [`affirm`](Engine::affirm) (§5.2),
//! [`deny`](Engine::deny) (§5.3), [`free_of`](Engine::free_of) (§5.4) — with
//! *finalize* (§5.5) and *rollback* (§5.6) occurring internally as cascades.
//! Each public operation returns the ordered [`Effect`] list the transition
//! produced; embedding runtimes act on those effects (restore checkpoints,
//! commit output, drop ghost messages).
//!
//! ## Sharded storage
//!
//! Records are partitioned by **owner process** into [`crate::shard`]
//! shards; the engine keeps per-id directories mapping every AID and
//! interval to its owning shard. The sequential transitions below are
//! oblivious to the partitioning — they run the same statements in the same
//! order whatever the shard count, so a 1-shard and an N-shard engine are
//! bit-identical in every observable (the differential suite in
//! `tests/sharded_differential.rs` holds them side by side). In sequential
//! mode the only trace of sharding is [`Engine::tracking_stats`], which
//! counts dependence-tracking updates that crossed an ownership boundary.
//! [`Engine::run_phase`] additionally executes per-shard op scripts on real
//! worker threads with batched cross-shard queues — see the method docs.
//!
//! ## Fidelity notes
//!
//! * **DOM membership for inherited dependencies.** Equation 4 only shows
//!   the *guessed* AID gaining the new interval in its `DOM` set, but
//!   Lemma 5.1 asserts `X ∈ A.IDO ⟺ A ∈ X.DOM` for *all* `X`, and the
//!   finalize cascade (Equations 7–9) discharges dependence by walking `DOM`
//!   sets. The engine therefore inserts the new interval into the `DOM` of
//!   every member of its `IDO` — inherited members included — which is the
//!   only reading under which Lemma 5.1 and Theorem 6.2 hold.
//! * **`free_of` inspects `IDO`.** §5.4's prose says `A.DOM`; intervals have
//!   no `DOM` set, and Theorem 6.3's proof reads `X ∈ A.IDO`. We use `IDO`.
//! * **Rollback of a speculative affirm** is a conservative definite deny of
//!   the affirmed AID (§5.6, footnote 2).
//! * **One-shot AIDs.** A second `affirm`/`deny`/`free_of` on the same AID
//!   is "a user error, and the meaning is undefined" (§5.2). Here it is a
//!   defined error: [`Error::AidConsumed`].
//! * **Guessing a speculatively affirmed AID resolves to its affirmer's
//!   dependence set.** Equations 10–14 dissolve dependence on the AID
//!   permanently; if a later guess naively re-added the AID to an `IDO`
//!   set, Theorem 6.3's proof would break (the asserting interval could
//!   become dependent on a freed AID again) and mutual speculative
//!   affirms could form unresolvable cycles. Under the resolution rule
//!   both pathologies vanish — verified mechanically in
//!   `tests/theorems.rs`. (Mutual speculative *denies* can still
//!   livelock; the test suite documents that as a finding.)

use std::collections::{BTreeSet, VecDeque};

use crate::aid::{Aid, AidState, AidView};
use crate::depset::DepSet;
use crate::effect::Effect;
use crate::error::{Error, Result};
use crate::ids::{AidId, IntervalId, ProcessId};
use crate::interval::{Checkpoint, Interval, IntervalStatus, IntervalView};
use crate::shard::{
    run_shard_script, CrossShardMsg, DrainOrder, EngineShard, Loc, OpAid, PhaseReport, Proc,
    ResolvedOp, ShardOp, SnapAid, TrackingStats, WorkerCtx, NO_SHARD,
};
use crate::tag::{ReceiveOutcome, Tag};

/// Result of [`Engine::guess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuessOutcome {
    /// Speculation began (or, if every named AID was already affirmed and
    /// the process was definite, an interval was created and finalized in
    /// the same step). The guess returns `true` to the program.
    Begun(IntervalId),
    /// At least one named AID has been definitively denied: the guess
    /// returns `false` immediately and definitively; no interval is created.
    /// This is also what a re-executed guess observes after rollback.
    AlreadyFalse(AidId),
}

impl GuessOutcome {
    /// The boolean the `guess` primitive returns to the program.
    pub fn value(&self) -> bool {
        matches!(self, GuessOutcome::Begun(_))
    }

    /// The interval that was started, if any.
    pub fn interval(&self) -> Option<IntervalId> {
        match self {
            GuessOutcome::Begun(a) => Some(*a),
            GuessOutcome::AlreadyFalse(_) => None,
        }
    }
}

/// Counters describing an engine's activity, for benchmarks and tests.
///
/// All fields are cumulative since engine creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// `guess` calls that began speculation.
    pub guesses: u64,
    /// `guess` calls answered `AlreadyFalse`.
    pub failed_guesses: u64,
    /// Intervals finalized (made definite).
    pub finalized: u64,
    /// Intervals discarded by rollback.
    pub rolled_back_intervals: u64,
    /// Rollback events (history truncations; one may discard many intervals).
    pub rollback_events: u64,
    /// Definite affirms (including promotions of speculative affirms and the
    /// affirm half of `free_of`).
    pub definite_affirms: u64,
    /// Speculative affirms recorded.
    pub speculative_affirms: u64,
    /// Definite denies (including promotions from `IHD` and footnote-2
    /// conservative denies).
    pub definite_denies: u64,
    /// Speculative denies recorded into `IHD` sets.
    pub speculative_denies: u64,
    /// `free_of` calls.
    pub free_ofs: u64,
    /// Ghost messages detected by [`Engine::implicit_guess`].
    pub ghosts: u64,
    /// Intervals reclaimed by [`Engine::collect_fossils`].
    pub fossil_intervals: u64,
    /// AIDs reclaimed by [`Engine::collect_fossils`].
    pub fossil_aids: u64,
}

/// What one [`Engine::collect_fossils`] sweep reclaimed, and where the
/// commit horizon now stands.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FossilSweep {
    /// Intervals reclaimed by this sweep.
    pub intervals: u64,
    /// AIDs reclaimed by this sweep.
    pub aids: u64,
    /// The interval commit horizon after the sweep: every interval with a
    /// smaller id is finalized (or was rolled back) on every process and
    /// its storage has been reclaimed.
    pub interval_horizon: u64,
    /// The AID commit horizon after the sweep: every AID with a smaller id
    /// is definitively decided and its storage has been reclaimed.
    pub aid_horizon: u64,
}

/// Internal cascade work items.
#[derive(Debug, Clone, Copy)]
enum Task {
    Finalize(IntervalId),
    Rollback(IntervalId),
}

/// The HOPE semantics engine. See the module-level documentation above.
///
/// # Examples
///
/// The simplest full cycle — guess, then deny, observing the rollback:
///
/// ```
/// use hope_core::{Engine, Effect, GuessOutcome, Checkpoint};
///
/// let mut engine = Engine::new();
/// let p = engine.register_process();
/// let x = engine.aid_init(p);
///
/// let (outcome, _) = engine.guess(p, &[x], Checkpoint(0))?;
/// assert!(outcome.value()); // guess speculatively returns true
///
/// let effects = engine.deny(p, x)?; // our own assumption: definite deny
/// assert!(effects.iter().any(|e| e.is_rollback()));
///
/// // Re-executing the guess now observes the definite answer:
/// let (outcome, _) = engine.guess(p, &[x], Checkpoint(0))?;
/// assert!(!outcome.value());
/// # Ok::<(), hope_core::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    /// Per-owner-process record stores. A 1-shard engine (the default) is
    /// the unsharded engine of earlier revisions with one level of
    /// directory indirection.
    shards: Vec<EngineShard>,
    /// AID directory: id `aid_base + i` lives on shard `aid_dir[i].shard`
    /// at per-shard ordinal `aid_dir[i].ord`. Ids below `aid_base` were
    /// reclaimed by fossil collection (ids are never reused; "recycling"
    /// reclaims storage, not numbers — in-flight tags would otherwise
    /// alias).
    aid_dir: Vec<Loc>,
    aid_base: u64,
    /// Reclaimed AIDs that were *denied*: a late `guess` or inbound tag
    /// naming one must still answer `AlreadyFalse`/ghost exactly as an
    /// uncollected engine would. Reclaimed AIDs absent from this set were
    /// affirmed. Affirm-heavy workloads keep this near-empty; it is the
    /// only per-fossil state retained.
    fossil_denied: BTreeSet<AidId>,
    /// Interval directory, like `aid_dir`. Sentinel entries
    /// ([`Loc::SENTINEL`]) mark phase-lease slots whose guess never
    /// created an interval (answered `AlreadyFalse`, or deferred and
    /// allocated past the leases at the drain); they answer
    /// [`Error::UnknownInterval`] forever.
    itv_dir: Vec<Loc>,
    interval_base: u64,
    /// `pid.0 → shard index`. Pids are dense, so this doubles as the
    /// process registry.
    proc_shard: Vec<u32>,
    next_pid: u32,
    stats: EngineStats,
    tracking: TrackingStats,
    /// Whether any interval-directory sentinel holes exist (phase leases
    /// are upper bounds; see `itv_dir`). [`Engine::interval_count`] counts
    /// holes, so it is only comparable between engines driven through the
    /// same mode.
    itv_holes: bool,
    check_invariants: bool,
}

/// Where an id lands relative to the commit horizon.
enum Slot {
    /// Alive in some shard's store (address via the directory).
    Live,
    /// At or below the horizon: reclaimed by fossil collection.
    Fossil,
    /// Never allocated by this engine (or a phase-lease hole).
    Unknown,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

impl Engine {
    /// Create an empty single-shard engine. Invariant checking (Lemma 5.1
    /// symmetry and the Theorem 5.1 prefix-subset property after every
    /// transition) is on in debug builds and off in release builds by
    /// default.
    pub fn new() -> Self {
        Engine::with_shards(1)
    }

    /// Create an empty engine with `n` shards (clamped to at least 1).
    ///
    /// Processes are assigned to shards round-robin by
    /// [`register_process`](Engine::register_process) (or explicitly by
    /// [`register_process_on`](Engine::register_process_on)); each shard
    /// owns the AID and interval records of the processes it hosts. Shard
    /// count does not change any observable behaviour of the sequential
    /// API — only [`tracking_stats`](Engine::tracking_stats) and the
    /// [`run_phase`](Engine::run_phase) parallelism depend on it.
    pub fn with_shards(n: usize) -> Self {
        let n = n.max(1);
        Engine {
            shards: (0..n).map(|_| EngineShard::new()).collect(),
            aid_dir: Vec::new(),
            aid_base: 0,
            fossil_denied: BTreeSet::new(),
            itv_dir: Vec::new(),
            interval_base: 0,
            proc_shard: Vec::new(),
            next_pid: 0,
            stats: EngineStats::default(),
            tracking: TrackingStats::default(),
            itv_holes: false,
            check_invariants: cfg!(debug_assertions),
        }
    }

    /// Number of shards the stores are partitioned into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Cross-shard tracking-traffic counters (see [`TrackingStats`]).
    pub fn tracking_stats(&self) -> TrackingStats {
        self.tracking
    }

    // ------------------------------------------------------------------
    // live-store addressing (ids below the commit horizon are fossils)
    // ------------------------------------------------------------------

    fn aid_slot(&self, x: AidId) -> Slot {
        if x.0 < self.aid_base {
            Slot::Fossil
        } else if ((x.0 - self.aid_base) as usize) < self.aid_dir.len() {
            Slot::Live
        } else {
            Slot::Unknown
        }
    }

    fn itv_slot(&self, a: IntervalId) -> Slot {
        if a.0 < self.interval_base {
            Slot::Fossil
        } else if ((a.0 - self.interval_base) as usize) < self.itv_dir.len() {
            if self.itv_dir[(a.0 - self.interval_base) as usize].shard == NO_SHARD {
                Slot::Unknown
            } else {
                Slot::Live
            }
        } else {
            Slot::Unknown
        }
    }

    /// Live AID record. Panics on fossils/unknowns: internal callers only
    /// ever hold references to live AIDs (IDO members are undecided, DOM
    /// owners likewise).
    fn aid_ref(&self, x: AidId) -> &Aid {
        let loc = self.aid_dir[(x.0 - self.aid_base) as usize];
        let sh = &self.shards[loc.shard as usize];
        &sh.aids[(loc.ord - sh.aid_collected) as usize]
    }

    fn aid_mut(&mut self, x: AidId) -> &mut Aid {
        let loc = self.aid_dir[(x.0 - self.aid_base) as usize];
        let sh = &mut self.shards[loc.shard as usize];
        &mut sh.aids[(loc.ord - sh.aid_collected) as usize]
    }

    /// Live interval record. Panics on fossils/unknowns: internal callers
    /// only reach intervals above the horizon (DOM members are
    /// speculative, histories are truncated at collection time).
    fn itv_ref(&self, a: IntervalId) -> &Interval {
        let loc = self.itv_dir[(a.0 - self.interval_base) as usize];
        let sh = &self.shards[loc.shard as usize];
        &sh.intervals[(loc.ord - sh.itv_collected) as usize]
    }

    fn itv_mut(&mut self, a: IntervalId) -> &mut Interval {
        let loc = self.itv_dir[(a.0 - self.interval_base) as usize];
        let sh = &mut self.shards[loc.shard as usize];
        &mut sh.intervals[(loc.ord - sh.itv_collected) as usize]
    }

    /// The process record for `pid`, on whichever shard hosts it.
    fn proc_ref(&self, pid: ProcessId) -> Option<&Proc> {
        let si = *self.proc_shard.get(pid.0 as usize)?;
        self.shards[si as usize].procs.get(&pid)
    }

    fn proc_mut(&mut self, pid: ProcessId) -> Option<&mut Proc> {
        let si = *self.proc_shard.get(pid.0 as usize)?;
        self.shards[si as usize].procs.get_mut(&pid)
    }

    /// Decision state of a reclaimed AID — exactly what an uncollected
    /// engine would report (fossils are decided by construction).
    fn fossil_aid_state(&self, x: AidId) -> AidState {
        if self.fossil_denied.contains(&x) {
            AidState::Denied
        } else {
            AidState::Affirmed
        }
    }

    /// Enable or disable per-transition invariant checking.
    ///
    /// Checking is O(total dependence edges) per transition; benchmarks turn
    /// it off, the property-test suite turns it on.
    pub fn set_invariant_checking(&mut self, on: bool) {
        self.check_invariants = on;
    }

    /// Register a new process and return its id. Processes are assigned to
    /// shards round-robin; a single-shard engine hosts everything on shard
    /// 0.
    pub fn register_process(&mut self) -> ProcessId {
        let shard = (self.next_pid as usize) % self.shards.len();
        self.register_process_on(shard)
    }

    /// Register a new process on a specific shard (for embeddings and
    /// benchmarks that want explicit placement).
    ///
    /// # Panics
    ///
    /// If `shard >= self.shard_count()`.
    pub fn register_process_on(&mut self, shard: usize) -> ProcessId {
        assert!(
            shard < self.shards.len(),
            "shard {shard} out of range (engine has {})",
            self.shards.len()
        );
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.proc_shard.push(shard as u32);
        self.shards[shard].procs.insert(
            pid,
            Proc {
                history: Vec::new(),
                discarded: 0,
                collected: 0,
            },
        );
        pid
    }

    /// Create a fresh assumption identifier (the paper's `aid_init`, §3).
    ///
    /// `creator` is recorded for traces only; *any* process may subsequently
    /// apply primitives to the AID (§4: "Any process in the system can apply
    /// HOPE primitives to any assumption identifier"). The record is owned
    /// by the creator's shard (shard 0 for an unregistered creator).
    pub fn aid_init(&mut self, creator: ProcessId) -> AidId {
        let id = AidId(self.aid_base + self.aid_dir.len() as u64);
        let si = self
            .proc_shard
            .get(creator.0 as usize)
            .copied()
            .unwrap_or(0) as usize;
        let sh = &mut self.shards[si];
        let ord = sh.aid_collected + sh.aids.len() as u64;
        self.aid_dir.push(Loc {
            shard: si as u32,
            ord,
        });
        sh.aids.push(Aid::new(id, creator));
        id
    }

    /// Number of AIDs created so far, including reclaimed fossils.
    pub fn aid_count(&self) -> usize {
        (self.aid_base as usize) + self.aid_dir.len()
    }

    /// Number of interval ids allocated so far (live, definite, rolled back
    /// and reclaimed fossils — plus, after [`run_phase`](Engine::run_phase),
    /// any unused phase-lease holes). Comparable between engines only when
    /// both were driven through the same mode.
    pub fn interval_count(&self) -> usize {
        (self.interval_base as usize) + self.itv_dir.len()
    }

    /// Number of AIDs currently held in live storage (above the commit
    /// horizon). This — not [`aid_count`](Engine::aid_count) — is what
    /// bounds memory on a long run with fossil collection.
    pub fn live_aid_count(&self) -> usize {
        self.shards.iter().map(|s| s.aids.len()).sum()
    }

    /// Number of intervals currently held in live storage (above the
    /// commit horizon).
    pub fn live_interval_count(&self) -> usize {
        self.shards.iter().map(|s| s.intervals.len()).sum()
    }

    /// The interval commit horizon: every interval with a smaller id is
    /// decided (finalized or rolled back) on every process and has been
    /// reclaimed. `0` until the first sweep reclaims something.
    pub fn interval_horizon(&self) -> u64 {
        self.interval_base
    }

    /// The AID commit horizon: every AID with a smaller id is definitively
    /// decided and has been reclaimed.
    pub fn aid_horizon(&self) -> u64 {
        self.aid_base
    }

    /// Number of reclaimed AIDs retained as *denied* markers (the only
    /// per-fossil state kept; see [`Engine::collect_fossils`]).
    pub fn fossil_denied_count(&self) -> usize {
        self.fossil_denied.len()
    }

    /// Cumulative activity counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Every AID that is still undecided **and** unconsumed — i.e. still
    /// open to a definite `affirm` or `deny`.
    ///
    /// This is the interface an *external definite observer* (a GVT-style
    /// commit oracle; see the `hope-runtime` quiescence-commit facility)
    /// uses to settle a quiesced system: by Lemma 6.3, speculative affirms
    /// never finalize anything on their own, so some environment-level
    /// agent must eventually issue definite decisions.
    pub fn open_aids(&self) -> Vec<AidId> {
        // Fossils are decided by construction, so iterating the live
        // directory (in id order, as the unsharded engine scanned its
        // store) answers exactly what a full scan of an uncollected engine
        // would.
        self.aid_dir
            .iter()
            .map(|loc| {
                let sh = &self.shards[loc.shard as usize];
                &sh.aids[(loc.ord - sh.aid_collected) as usize]
            })
            .filter(|a| a.state == AidState::Undecided && !a.consumed)
            .map(|a| a.id)
            .collect()
    }

    /// Read-only view of an AID's control state.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownAid`] if the AID was not created by this engine.
    /// * [`Error::FossilAid`] if its storage was reclaimed by
    ///   [`collect_fossils`](Engine::collect_fossils) (use
    ///   [`aid_state`](Engine::aid_state), which answers for fossils too).
    pub fn aid(&self, x: AidId) -> Result<AidView<'_>> {
        match self.aid_slot(x) {
            Slot::Live => Ok(AidView {
                inner: self.aid_ref(x),
            }),
            Slot::Fossil => Err(Error::FossilAid(x)),
            Slot::Unknown => Err(Error::UnknownAid(x)),
        }
    }

    /// Decision state of an AID. Unlike the [`aid`](Engine::aid) view this
    /// answers for reclaimed fossils too (they are decided by
    /// construction), so late referers observe exactly what an uncollected
    /// engine would report.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownAid`] if the AID was not created by this engine.
    pub fn aid_state(&self, x: AidId) -> Result<AidState> {
        match self.aid_slot(x) {
            Slot::Live => Ok(self.aid_ref(x).state),
            Slot::Fossil => Ok(self.fossil_aid_state(x)),
            Slot::Unknown => Err(Error::UnknownAid(x)),
        }
    }

    /// Read-only view of an interval's control variables.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownInterval`] if the id does not exist.
    /// * [`Error::FossilInterval`] if its storage was reclaimed by
    ///   [`collect_fossils`](Engine::collect_fossils).
    pub fn interval(&self, a: IntervalId) -> Result<IntervalView<'_>> {
        match self.itv_slot(a) {
            Slot::Live => Ok(IntervalView {
                inner: self.itv_ref(a),
            }),
            Slot::Fossil => Err(Error::FossilInterval(a)),
            Slot::Unknown => Err(Error::UnknownInterval(a)),
        }
    }

    /// The live interval history of a process (definite prefix followed by
    /// speculative suffix), earliest first. Fossil collection truncates the
    /// definite prefix, so after a sweep only intervals above the commit
    /// horizon appear here.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] if `pid` was never registered.
    pub fn history(&self, pid: ProcessId) -> Result<&[IntervalId]> {
        self.proc_ref(pid)
            .map(|p| p.history.as_slice())
            .ok_or(Error::UnknownProcess(pid))
    }

    /// The checkpoint of `pid`'s earliest **speculative** interval — the
    /// farthest back a rollback could ever rewind this process — or `None`
    /// if its history is fully definite (no rollback can touch it at all).
    ///
    /// This is the per-process ingredient a substrate needs to reclaim its
    /// *own* checkpoint storage in step with
    /// [`collect_fossils`](Engine::collect_fossils): anything older than
    /// the returned checkpoint (journal prefix, snapshot files, …) can
    /// never be replayed into.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] if `pid` was never registered.
    pub fn speculative_frontier(&self, pid: ProcessId) -> Result<Option<Checkpoint>> {
        let proc = self.proc_ref(pid).ok_or(Error::UnknownProcess(pid))?;
        Ok(proc
            .history
            .iter()
            .copied()
            .find(|&a| self.itv_ref(a).status == IntervalStatus::Speculative)
            .map(|a| self.itv_ref(a).ps))
    }

    /// The process's current interval if it is speculative (the paper's
    /// `S_i.I`; `None` corresponds to `S_i.I = ∅`).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] if `pid` was never registered.
    pub fn current_interval(&self, pid: ProcessId) -> Result<Option<IntervalId>> {
        let proc = self.proc_ref(pid).ok_or(Error::UnknownProcess(pid))?;
        Ok(proc
            .history
            .last()
            .copied()
            .filter(|&a| self.itv_ref(a).status == IntervalStatus::Speculative))
    }

    /// `true` if the process is currently speculative.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] if `pid` was never registered.
    pub fn is_speculative(&self, pid: ProcessId) -> Result<bool> {
        Ok(self.current_interval(pid)?.is_some())
    }

    /// The tag to attach to a message sent by `pid` right now: the set of
    /// AIDs the sender currently depends on (§3).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] if `pid` was never registered.
    pub fn dependence_tag(&self, pid: ProcessId) -> Result<Tag> {
        Ok(match self.current_interval(pid)? {
            // O(1): the sender's IDO is shared into the tag by refcount bump.
            Some(a) => Tag::from_depset(self.itv_ref(a).ido.clone()),
            None => Tag::new(),
        })
    }

    // ------------------------------------------------------------------
    // guess — §5.1, Equations 1–6
    // ------------------------------------------------------------------

    /// Execute `guess` on one or more assumption identifiers.
    ///
    /// The multi-AID form exists because message receipt implicitly guesses
    /// every undecided AID in the tag at once (§3); an ordinary program
    /// guess names a single AID.
    ///
    /// Creates a new interval whose `IDO` is the current interval's `IDO`
    /// plus every named *undecided* AID (Equation 3; definitively affirmed
    /// AIDs induce no dependence). The interval is recorded in the `DOM` of
    /// every member of its `IDO` (Equation 4, extended per the module-level
    /// fidelity note). `ps` is the checkpoint token handed back on rollback
    /// (Equation 1).
    ///
    /// If any named AID is definitively denied the guess answers
    /// [`GuessOutcome::AlreadyFalse`] — this is the `False` return of a
    /// re-executed guess after rollback (Equation 24).
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownProcess`] / [`Error::UnknownAid`] for foreign ids.
    /// * [`Error::EmptyGuess`] if `aids` is empty.
    pub fn guess(
        &mut self,
        pid: ProcessId,
        aids: &[AidId],
        ps: Checkpoint,
    ) -> Result<(GuessOutcome, Vec<Effect>)> {
        if aids.is_empty() {
            return Err(Error::EmptyGuess);
        }
        if self.proc_ref(pid).is_none() {
            return Err(Error::UnknownProcess(pid));
        }
        for &x in aids {
            if matches!(self.aid_slot(x), Slot::Unknown) {
                return Err(Error::UnknownAid(x));
            }
        }
        // A reclaimed AID answers from the fossil record, exactly as the
        // live record would: denied fossils fail the guess, affirmed ones
        // contribute no dependence.
        if let Some(&denied) = aids.iter().find(|&&x| match self.aid_slot(x) {
            Slot::Live => self.aid_ref(x).state == AidState::Denied,
            Slot::Fossil => self.fossil_aid_state(x) == AidState::Denied,
            Slot::Unknown => unreachable!("validated above"),
        }) {
            self.stats.failed_guesses += 1;
            return Ok((GuessOutcome::AlreadyFalse(denied), Vec::new()));
        }

        // Resolve each named AID to the dependence it *means* right now:
        // an undecided AID stands for itself, but one that was
        // speculatively affirmed was dissolved by Equations 10–14 —
        // depending on it means depending on its affirmer's current IDO.
        // (Without this, a late guess would resurrect dependence on the
        // AID and break Theorem 6.3's proof.) Affirmed AIDs contribute
        // nothing.
        let mut guessed: DepSet<AidId> = DepSet::new();
        for &x in aids {
            let aid = match self.aid_slot(x) {
                Slot::Live => self.aid_ref(x),
                // Fossils are decided: no dependence, like any decided AID.
                Slot::Fossil => continue,
                Slot::Unknown => unreachable!("validated above"),
            };
            if aid.state != AidState::Undecided {
                continue;
            }
            match aid.spec_affirmed_by {
                Some(a) => {
                    debug_assert!(
                        aid.dom.is_empty(),
                        "a speculatively affirmed AID has no direct dependents"
                    );
                    guessed.union_with(&self.itv_ref(a).ido);
                }
                None => {
                    guessed.insert(x);
                }
            }
        }
        // Inherit the parent's IDO by refcount bump (Eq. 4–5): the set is
        // built once and moved into the new interval — no per-node clone.
        let mut ido = match self.current_interval(pid)? {
            Some(a) => self.itv_ref(a).ido.clone(),
            None => DepSet::new(),
        };
        ido.union_with(&guessed);

        let id = IntervalId(self.interval_base + self.itv_dir.len() as u64);
        let home = self.proc_shard[pid.0 as usize];
        let count_crossings = self.shards.len() > 1;
        for x in &ido {
            // In a distributed deployment a DOM registration on a foreign
            // shard is one tracking message; count it (satellite of the
            // sharding work — excluded from determinism fingerprints).
            if count_crossings && self.aid_dir[(x.0 - self.aid_base) as usize].shard != home {
                self.tracking.cross_shard_messages += 1;
            }
            self.aid_mut(x).dom.insert(id);
        }
        let ido_empty = ido.is_empty();
        let proc = self.proc_mut(pid).expect("validated above");
        let seq = proc.collected as usize + proc.history.len();
        proc.history.push(id);
        let sh = &mut self.shards[home as usize];
        let ord = sh.itv_collected + sh.intervals.len() as u64;
        self.itv_dir.push(Loc { shard: home, ord });
        sh.intervals.push(Interval {
            id,
            pid,
            ps,
            ido,
            ihd: DepSet::new(),
            iha: DepSet::new(),
            guessed,
            status: IntervalStatus::Speculative,
            seq,
        });

        let mut effects = vec![Effect::IntervalStarted {
            interval: id,
            process: pid,
        }];
        self.stats.guesses += 1;

        if ido_empty {
            // Every named AID was already affirmed and the process was
            // definite: the interval is definite from birth.
            let mut wl = VecDeque::new();
            self.do_finalize(id, &mut effects, &mut wl);
            self.drain(&mut wl, &mut effects);
        }
        self.post_check();
        Ok((GuessOutcome::Begun(id), effects))
    }

    /// Interpret an inbound message tag: ghost-filter, then implicitly guess
    /// every undecided AID in the tag (§3, §7).
    ///
    /// Returns [`ReceiveOutcome::Ghost`] — and creates no dependence — if any
    /// tag AID is definitively denied; the runtime must drop the message.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownProcess`] / [`Error::UnknownAid`] for foreign ids.
    pub fn implicit_guess(
        &mut self,
        pid: ProcessId,
        tag: &Tag,
        ps: Checkpoint,
    ) -> Result<(ReceiveOutcome, Vec<Effect>)> {
        if self.proc_ref(pid).is_none() {
            return Err(Error::UnknownProcess(pid));
        }
        for x in tag.iter() {
            if matches!(self.aid_slot(x), Slot::Unknown) {
                return Err(Error::UnknownAid(x));
            }
        }
        // In-flight tags can outlive a collection sweep; the fossil record
        // keeps ghost filtering exact for them.
        if let Some(denied) = tag.iter().find(|&x| match self.aid_slot(x) {
            Slot::Live => self.aid_ref(x).state == AidState::Denied,
            Slot::Fossil => self.fossil_aid_state(x) == AidState::Denied,
            Slot::Unknown => unreachable!("validated above"),
        }) {
            self.stats.ghosts += 1;
            return Ok((ReceiveOutcome::Ghost(denied), Vec::new()));
        }
        let undecided: Vec<AidId> = tag
            .iter()
            .filter(|&x| match self.aid_slot(x) {
                Slot::Live => self.aid_ref(x).state == AidState::Undecided,
                // Fossils are decided (and not denied, per the check above).
                _ => false,
            })
            .collect();
        if undecided.is_empty() {
            return Ok((ReceiveOutcome::Clean, Vec::new()));
        }
        let (outcome, effects) = self.guess(pid, &undecided, ps)?;
        match outcome {
            GuessOutcome::Begun(a) => Ok((ReceiveOutcome::Speculative(a), effects)),
            // Unreachable: we filtered denied AIDs above and guess cannot
            // observe new denials in between.
            GuessOutcome::AlreadyFalse(x) => Ok((ReceiveOutcome::Ghost(x), effects)),
        }
    }

    // ------------------------------------------------------------------
    // affirm — §5.2, Equations 7–14
    // ------------------------------------------------------------------

    /// Execute `affirm(x)` from process `pid`.
    ///
    /// *Definite affirm* (process not speculative, Equations 7–9): `x`
    /// becomes [`AidState::Affirmed`]; every dependent interval drops `x`
    /// from its `IDO` and finalizes if that empties it.
    ///
    /// *Speculative affirm* (process speculative, Equations 10–14):
    /// dependence on `x` is replaced by dependence on the affirming
    /// interval's `IDO`; the affirm is promoted to definite when the
    /// affirmer finalizes, and conservatively converted to a deny if the
    /// affirmer rolls back (footnote 2).
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownProcess`] / [`Error::UnknownAid`] for foreign ids.
    /// * [`Error::AidConsumed`] if `x` already received an
    ///   `affirm`/`deny`/`free_of` (§5.2's one-shot rule).
    pub fn affirm(&mut self, pid: ProcessId, x: AidId) -> Result<Vec<Effect>> {
        self.consume(pid, x)?;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        self.affirm_inner(pid, x, &mut effects, &mut wl);
        self.drain(&mut wl, &mut effects);
        self.post_check();
        Ok(effects)
    }

    /// Execute `deny(x)` from process `pid`.
    ///
    /// *Definite deny* (Equation 15 — process not speculative, **or** the
    /// current interval itself depends on `x`): `x` becomes
    /// [`AidState::Denied`] and every interval in `x.DOM` is rolled back
    /// (cascading per Theorem 5.1). A current interval that depends on `x`
    /// rolls back *itself* — the self-deny the paper allows because the deny
    /// "cannot be undone by another process".
    ///
    /// *Speculative deny* (Equation 16): recorded in the current interval's
    /// `IHD`; applied definitively when that interval finalizes (§5.5), or
    /// silently discarded if it rolls back (§5.6).
    ///
    /// # Errors
    ///
    /// Same as [`Engine::affirm`].
    pub fn deny(&mut self, pid: ProcessId, x: AidId) -> Result<Vec<Effect>> {
        self.consume(pid, x)?;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        self.deny_inner(pid, x, &mut effects, &mut wl);
        self.drain(&mut wl, &mut effects);
        self.post_check();
        Ok(effects)
    }

    /// Execute `free_of(x)` from process `pid` (§5.4, Equations 17–19).
    ///
    /// Asserts that the current computation is not, and never will be,
    /// dependent on `x`:
    ///
    /// * process definite → definite affirm of `x` (Equation 17);
    /// * process speculative, `x ∉ IDO` → speculative affirm (Equation 18);
    /// * process speculative, `x ∈ IDO` → the ordering constraint was
    ///   violated: deny `x` (Equation 19), rolling back the asserting
    ///   interval among others (Theorem 6.3).
    ///
    /// Like `affirm` and `deny`, `free_of` consumes its argument.
    ///
    /// # Errors
    ///
    /// Same as [`Engine::affirm`].
    pub fn free_of(&mut self, pid: ProcessId, x: AidId) -> Result<Vec<Effect>> {
        self.consume(pid, x)?;
        self.stats.free_ofs += 1;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        let depends = self
            .current_interval(pid)?
            .map(|a| self.itv_ref(a).ido.contains(&x));
        match depends {
            // Eq. 17 (definite) and Eq. 18 (speculative): affirm.
            None | Some(false) => self.affirm_inner(pid, x, &mut effects, &mut wl),
            // Eq. 19: constraint violated — deny (definite: x ∈ A.IDO).
            Some(true) => self.deny_inner(pid, x, &mut effects, &mut wl),
        }
        self.drain(&mut wl, &mut effects);
        self.post_check();
        Ok(effects)
    }

    /// Drive the paper's *finalize* (§5.5) directly.
    ///
    /// Not part of the user programming model — "finalize is not a part of
    /// the user's programming model, and is just used here as a shorthand
    /// notation" (§5.2) — and the engine finalizes automatically the
    /// moment an interval's `IDO` empties, so calling this on a live
    /// speculative interval always fails the Equation 20 precondition.
    /// Exposed for semantics-level tooling and tests; finalizing an
    /// already-definite interval is an idempotent no-op.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownInterval`] for foreign ids.
    /// * [`Error::FossilInterval`] for intervals reclaimed by
    ///   [`collect_fossils`](Engine::collect_fossils).
    /// * [`Error::FinalizePrecondition`] if the interval is speculative
    ///   (its `IDO` is non-empty) or was rolled back.
    pub fn finalize(&mut self, a: IntervalId) -> Result<Vec<Effect>> {
        let itv = match self.itv_slot(a) {
            Slot::Live => self.itv_ref(a),
            Slot::Fossil => return Err(Error::FossilInterval(a)),
            Slot::Unknown => return Err(Error::UnknownInterval(a)),
        };
        match itv.status {
            IntervalStatus::Definite => Ok(Vec::new()),
            IntervalStatus::RolledBack => Err(Error::FinalizePrecondition(a)),
            IntervalStatus::Speculative => {
                if itv.ido.is_empty() {
                    // Unreachable through the public API (the engine would
                    // already have finalized), but honour it if an
                    // embedder constructs the state some other way.
                    let mut effects = Vec::new();
                    let mut wl = VecDeque::new();
                    self.do_finalize(a, &mut effects, &mut wl);
                    self.drain(&mut wl, &mut effects);
                    self.post_check();
                    Ok(effects)
                } else {
                    Err(Error::FinalizePrecondition(a))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // fossil collection — the GVT commit horizon (Time Warp, ref [17])
    // ------------------------------------------------------------------

    /// Advance the commit horizon and reclaim everything below it.
    ///
    /// The **interval horizon** is the minimum, over all processes, of the
    /// first *speculative* interval id in that process's history (Time
    /// Warp's GVT computed from per-process finalized frontiers). Every
    /// interval below it is definite (Theorem 5.2: it can never roll back)
    /// or already rolled back, appears in no `DOM` set (the Lemma 5.1
    /// invariant keeps `DOM`s speculative-only) and is referenced by no
    /// live AID's `spec_affirmed_by`/`spec_denied_by` tie (those are
    /// cleared on finalize and rollback) — so its storage, including its
    /// `IDO`/`IHD`/`IHA`/`guessed` dependence sets, is unreachable and is
    /// dropped. The **AID horizon** advances over the leading run of
    /// definitively decided AIDs; an undecided AID pins it, exactly as an
    /// unacknowledged message pins GVT.
    ///
    /// Collection is *transparent* to the programming model: ids are never
    /// reused, `guess`/`implicit_guess`/`aid_state` answer for reclaimed
    /// AIDs from a retained denied-fossil record exactly as the live
    /// records would, and a second decider on a fossil reports
    /// [`Error::AidConsumed`] just as on any decided AID. Only the
    /// debugging views ([`aid`](Engine::aid)/[`interval`](Engine::interval)
    /// and [`finalize`](Engine::finalize)) distinguish fossils, via
    /// [`Error::FossilAid`]/[`Error::FossilInterval`]. See DESIGN.md for
    /// why this preserves the §5.5 finalize semantics.
    ///
    /// Safe to call at any time, from any embedding, at any frequency;
    /// sweeps are idempotent until new intervals finalize.
    pub fn collect_fossils(&mut self) -> FossilSweep {
        // Interval horizon: min over processes of the first speculative
        // interval's id; a fully definite process imposes no bound.
        let total = self.interval_base + self.itv_dir.len() as u64;
        let mut horizon = total;
        for sh in &self.shards {
            for proc in sh.procs.values() {
                let frontier = proc
                    .history
                    .iter()
                    .copied()
                    .find(|&a| self.itv_ref(a).status == IntervalStatus::Speculative)
                    .map_or(total, |a| a.0);
                horizon = horizon.min(frontier);
            }
        }
        let n_itv = (horizon - self.interval_base) as usize;
        let mut reclaimed_itvs = 0u64;
        if n_itv > 0 {
            for sh in &mut self.shards {
                for proc in sh.procs.values_mut() {
                    // History ids are strictly increasing, so the
                    // collectable entries form a prefix.
                    let keep = proc
                        .history
                        .iter()
                        .position(|&a| a.0 >= horizon)
                        .unwrap_or(proc.history.len());
                    proc.history.drain(..keep);
                    proc.collected += keep as u64;
                }
            }
            // Per-shard record counts in the directory prefix (sentinel
            // holes have no record to drop). Each shard's store is sorted
            // by id, so its members of the prefix are a store prefix.
            let mut per = vec![0usize; self.shards.len()];
            for loc in &self.itv_dir[..n_itv] {
                if loc.shard != NO_SHARD {
                    per[loc.shard as usize] += 1;
                }
            }
            for (si, &n) in per.iter().enumerate() {
                if n > 0 {
                    let sh = &mut self.shards[si];
                    debug_assert!(sh.intervals[..n]
                        .iter()
                        .all(|i| i.status != IntervalStatus::Speculative));
                    sh.intervals.drain(..n);
                    sh.itv_collected += n as u64;
                    reclaimed_itvs += n as u64;
                }
            }
            self.itv_dir.drain(..n_itv);
            self.interval_base = horizon;
            self.stats.fossil_intervals += reclaimed_itvs;
        }

        // AID horizon: the leading run of definitively decided AIDs.
        let mut n_aid = 0usize;
        let mut newly_denied: Vec<AidId> = Vec::new();
        for loc in &self.aid_dir {
            let sh = &self.shards[loc.shard as usize];
            let a = &sh.aids[(loc.ord - sh.aid_collected) as usize];
            if a.state == AidState::Undecided {
                break;
            }
            if a.state == AidState::Denied {
                newly_denied.push(a.id);
            }
            n_aid += 1;
        }
        self.fossil_denied.extend(newly_denied);
        if n_aid > 0 {
            let mut per = vec![0usize; self.shards.len()];
            for loc in &self.aid_dir[..n_aid] {
                per[loc.shard as usize] += 1;
            }
            for (si, &n) in per.iter().enumerate() {
                if n > 0 {
                    let sh = &mut self.shards[si];
                    sh.aids.drain(..n);
                    sh.aid_collected += n as u64;
                }
            }
            self.aid_dir.drain(..n_aid);
            self.aid_base += n_aid as u64;
            self.stats.fossil_aids += n_aid as u64;
        }
        self.post_check();
        FossilSweep {
            intervals: reclaimed_itvs,
            aids: n_aid as u64,
            interval_horizon: self.interval_base,
            aid_horizon: self.aid_base,
        }
    }

    // ------------------------------------------------------------------
    // phase execution — per-shard worker threads, batched cross-shard
    // queues, quiescent-point drain
    // ------------------------------------------------------------------

    /// Execute one **phase**: per-shard op scripts on (up to) `workers`
    /// scoped worker threads, each owning its shard exclusively, with all
    /// cross-shard tracking traffic batched into per-shard-pair FIFO
    /// queues and drained — in deterministic `order` — at the quiescent
    /// point that ends the phase.
    ///
    /// During a phase **no assumption changes state**: every
    /// `affirm`/`deny`/`free_of` defers to the drain (where the full
    /// sequential cascade machinery replays it), so workers can trust a
    /// pre-phase decision snapshot and run `aid_init` and `guess` entirely
    /// shard-locally. The one guess step that touches foreign shards —
    /// registering the new interval in a remote AID's `DOM` — is emitted as
    /// a queue message instead of taking the remote shard's store inline
    /// (the §7 promise). A guess naming a speculatively-affirmed AID also
    /// defers (Equations 10–14 need the affirmer's interval), as does every
    /// later op of a process once one of its ops deferred, preserving
    /// per-process program order.
    ///
    /// Id allocation is deterministic: each shard gets a contiguous lease
    /// of AID and interval ids (shard 0's block first), so the records a
    /// worker creates are independent of worker count and thread timing —
    /// the whole phase is bit-identical for any `workers`, and committed
    /// outcomes for single-decider workloads are invariant under `order`
    /// (property-tested in `tests/sharded_differential.rs`).
    ///
    /// `scripts[i]` runs on shard `i` and may only name processes hosted
    /// there. [`OpAid::Id`] must reference pre-phase AIDs;
    /// [`OpAid::New`]`(k)` references the `k`-th `AidInit` of the *same*
    /// script. Validation happens before any state changes, so an `Err`
    /// leaves the engine untouched.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownProcess`] for an op naming an unregistered process.
    /// * [`Error::UnknownAid`] for an [`OpAid::Id`] not allocated before
    ///   the phase.
    /// * [`Error::EmptyGuess`] for a guess naming no AIDs.
    ///
    /// # Panics
    ///
    /// On structural misuse (driver bugs, not data-dependent conditions):
    /// `scripts.len() != self.shard_count()`, `order.len() !=
    /// self.shard_count()`, an op submitted to a shard that does not host
    /// its process, or an [`OpAid::New`]`(k)` preceding its `AidInit`.
    pub fn run_phase(
        &mut self,
        scripts: Vec<Vec<ShardOp>>,
        workers: usize,
        order: &DrainOrder,
    ) -> Result<PhaseReport> {
        let nshards = self.shards.len();
        assert_eq!(
            scripts.len(),
            nshards,
            "run_phase needs one script per shard"
        );
        assert_eq!(order.len(), nshards, "drain order must cover every shard");

        // --- validate and size the id leases (no state changes yet) ---
        let pre_next_aid = self.aid_base + self.aid_dir.len() as u64;
        let mut aid_lease = vec![0u64; nshards]; // exact: AidInit count
        let mut itv_lease = vec![0u64; nshards]; // upper bound: Guess count
        let mut total_ops = 0u64;
        for (si, script) in scripts.iter().enumerate() {
            let mut inits = 0u64;
            for op in script {
                total_ops += 1;
                let pid = op.pid();
                match self.proc_shard.get(pid.0 as usize) {
                    None => return Err(Error::UnknownProcess(pid)),
                    Some(&owner) => assert_eq!(
                        owner as usize, si,
                        "op for {pid} submitted to shard {si}, which does not host it"
                    ),
                }
                match op {
                    ShardOp::AidInit { .. } => inits += 1,
                    ShardOp::Guess { aids, .. } => {
                        if aids.is_empty() {
                            return Err(Error::EmptyGuess);
                        }
                        for &a in aids {
                            Self::check_opaid(a, inits, pre_next_aid)?;
                        }
                        itv_lease[si] += 1;
                    }
                    ShardOp::Affirm { aid, .. }
                    | ShardOp::Deny { aid, .. }
                    | ShardOp::FreeOf { aid, .. } => Self::check_opaid(*aid, inits, pre_next_aid)?,
                }
            }
            aid_lease[si] = inits;
        }

        // --- id leases: contiguous ascending blocks, shard 0 first ---
        // AID leases are exact, so the directory entries written here are
        // final; interval leases are upper bounds, filled (or left as
        // sentinel holes) after the workers join.
        let mut aid_lease_start = vec![0u64; nshards];
        let mut next_aid = pre_next_aid;
        for si in 0..nshards {
            aid_lease_start[si] = next_aid;
            let ord0 = self.shards[si].aid_collected + self.shards[si].aids.len() as u64;
            for k in 0..aid_lease[si] {
                self.aid_dir.push(Loc {
                    shard: si as u32,
                    ord: ord0 + k,
                });
            }
            next_aid += aid_lease[si];
        }
        let mut itv_lease_start = vec![0u64; nshards];
        let mut itv_start_ord = vec![0u64; nshards];
        let mut next_itv = self.interval_base + self.itv_dir.len() as u64;
        for si in 0..nshards {
            itv_lease_start[si] = next_itv;
            itv_start_ord[si] =
                self.shards[si].itv_collected + self.shards[si].intervals.len() as u64;
            for _ in 0..itv_lease[si] {
                self.itv_dir.push(Loc::SENTINEL);
            }
            next_itv += itv_lease[si];
        }

        // --- pre-phase decision snapshot (valid all phase: decisions
        // defer, so no AID changes state while workers run) ---
        let snapshot: Vec<SnapAid> = self.aid_dir[..(pre_next_aid - self.aid_base) as usize]
            .iter()
            .map(|loc| {
                let sh = &self.shards[loc.shard as usize];
                let a = &sh.aids[(loc.ord - sh.aid_collected) as usize];
                SnapAid {
                    state: a.state,
                    spec_affirmed: a.spec_affirmed_by.is_some(),
                }
            })
            .collect();

        self.tracking.phases += 1;

        // --- execute: each worker owns a disjoint set of shards ---
        let aid_base = self.aid_base;
        let mut outs: Vec<Option<crate::shard::WorkerOut>> = (0..nshards).map(|_| None).collect();
        {
            let Engine {
                shards,
                aid_dir,
                fossil_denied,
                ..
            } = self;
            let aid_dir: &[Loc] = aid_dir;
            let fossil_denied: &BTreeSet<AidId> = fossil_denied;
            let snapshot: &[SnapAid] = &snapshot;
            let scripts: &[Vec<ShardOp>] = &scripts;
            let aid_lease_start: &[u64] = &aid_lease_start;
            let itv_lease_start: &[u64] = &itv_lease_start;
            let make_ctx = move |si: usize| WorkerCtx {
                shard_idx: si,
                nshards,
                aid_base,
                aid_dir,
                snapshot,
                snapshot_end: pre_next_aid,
                fossil_denied,
                aid_lease_start: aid_lease_start[si],
                itv_lease_start: itv_lease_start[si],
            };
            let w = workers.max(1).min(nshards.max(1));
            if w <= 1 {
                // Same code path as the threaded branch, minus the spawn:
                // worker-count 1 and worker-count N produce byte-identical
                // WorkerOuts because each shard's execution is a function
                // of (shard state, snapshot, script) only.
                for (si, shard) in shards.iter_mut().enumerate() {
                    outs[si] = Some(run_shard_script(shard, &make_ctx(si), &scripts[si]));
                }
            } else {
                let mut buckets: Vec<Vec<(usize, &mut EngineShard)>> =
                    (0..w).map(|_| Vec::new()).collect();
                for (si, shard) in shards.iter_mut().enumerate() {
                    buckets[si % w].push((si, shard));
                }
                std::thread::scope(|scope| {
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| {
                            scope.spawn(move || {
                                bucket
                                    .into_iter()
                                    .map(|(si, shard)| {
                                        (si, run_shard_script(shard, &make_ctx(si), &scripts[si]))
                                    })
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    for h in handles {
                        for (si, out) in h.join().expect("phase worker panicked") {
                            outs[si] = Some(out);
                        }
                    }
                });
            }
        }

        // --- post-join bookkeeping, in shard-index order ---
        let mut effects: Vec<Effect> = Vec::new();
        let mut busy_ns = vec![0u64; nshards];
        let mut deferred_total = 0u64;
        let mut queues: Vec<Vec<Vec<CrossShardMsg>>> = Vec::with_capacity(nshards);
        for (si, out) in outs.into_iter().enumerate() {
            let out = out.expect("every shard ran");
            debug_assert_eq!(out.created_aids, aid_lease[si]);
            for (k, &id) in out.created_itvs.iter().enumerate() {
                self.itv_dir[(id.0 - self.interval_base) as usize] = Loc {
                    shard: si as u32,
                    ord: itv_start_ord[si] + k as u64,
                };
            }
            if (out.created_itvs.len() as u64) < itv_lease[si] {
                self.itv_holes = true;
            }
            self.stats.guesses += out.guesses;
            self.stats.failed_guesses += out.failed_guesses;
            self.stats.finalized += out.finalized;
            deferred_total += out.deferred;
            busy_ns[si] = out.busy_ns;
            effects.extend(out.effects);
            queues.push(out.queues);
        }
        self.tracking.deferred_ops += deferred_total;

        // --- quiescent-point drain: deterministic (order, then source
        // shard, then FIFO) application of the batched traffic.
        // Lemma 5.1 symmetry is intentionally broken mid-drain (DomInserts
        // still queued), so invariant checking pauses until the end.
        let t_drain = std::time::Instant::now();
        let saved_checks = self.check_invariants;
        self.check_invariants = false;
        let mut cross_msgs = 0u64;
        let mut flushes = 0u64;
        let mut max_depth = 0u64;
        for &dst in order.dsts() {
            for src_queues in queues.iter_mut() {
                let batch = std::mem::take(&mut src_queues[dst]);
                if batch.is_empty() {
                    continue;
                }
                flushes += 1;
                max_depth = max_depth.max(batch.len() as u64);
                for msg in batch {
                    match msg {
                        CrossShardMsg::DomInsert { aid, interval } => {
                            cross_msgs += 1;
                            self.apply_dom_insert(aid, interval, &mut effects);
                        }
                        CrossShardMsg::Deferred(op) => self.apply_deferred(op, &mut effects),
                    }
                }
            }
        }
        self.check_invariants = saved_checks;
        self.post_check();
        let drain_ns = t_drain.elapsed().as_nanos() as u64;

        self.tracking.cross_shard_messages += cross_msgs;
        self.tracking.batch_flushes += flushes;
        self.tracking.max_queue_depth = self.tracking.max_queue_depth.max(max_depth);
        Ok(PhaseReport {
            effects,
            ops: total_ops,
            deferred_ops: deferred_total,
            cross_shard_messages: cross_msgs,
            batch_flushes: flushes,
            max_queue_depth: max_depth,
            busy_ns,
            drain_ns,
        })
    }

    /// Validate one phase-script AID reference (see
    /// [`run_phase`](Engine::run_phase) for the rules).
    fn check_opaid(a: OpAid, inits_so_far: u64, pre_next_aid: u64) -> Result<()> {
        match a {
            OpAid::New(k) => {
                assert!(
                    (k as u64) < inits_so_far,
                    "OpAid::New({k}) precedes its AidInit in the shard script"
                );
                Ok(())
            }
            OpAid::Id(x) => {
                if x.0 >= pre_next_aid {
                    Err(Error::UnknownAid(x))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Drain-time handler for a batched cross-shard DOM registration:
    /// worker-created interval `b` holds `x` in its IDO; complete the
    /// Lemma 5.1 symmetry against `x`'s *current* state, which earlier
    /// drain steps may have changed since the worker ran.
    fn apply_dom_insert(&mut self, x: AidId, b: IntervalId, effects: &mut Vec<Effect>) {
        // The target interval may already have rolled back during this
        // drain (do_rollback's DOM withdrawal of an unregistered edge was
        // a no-op; the stale insert must simply not happen).
        if !matches!(self.itv_slot(b), Slot::Live)
            || self.itv_ref(b).status != IntervalStatus::Speculative
        {
            return;
        }
        let mut wl = VecDeque::new();
        let state = match self.aid_slot(x) {
            Slot::Live => self.aid_ref(x).state,
            // Unreachable today (collection never runs mid-drain), but a
            // fossil is just a decided AID.
            Slot::Fossil => self.fossil_aid_state(x),
            Slot::Unknown => unreachable!("validated before the phase ran"),
        };
        match state {
            AidState::Undecided => {
                let spec_by = self.aid_ref(x).spec_affirmed_by;
                match spec_by {
                    Some(af) => {
                        // A drain-step affirm dissolved x (Eq. 10–14); the
                        // late dependent swaps x for the affirmer's IDO.
                        let mut a_ido = self.itv_ref(af).ido.clone();
                        a_ido.remove(&x);
                        for y in &a_ido {
                            self.aid_mut(y).dom.insert(b);
                        }
                        let itv = self.itv_mut(b);
                        itv.ido.remove(&x);
                        itv.ido.union_with(&a_ido);
                        if itv.ido.is_empty() {
                            wl.push_back(Task::Finalize(b));
                        }
                    }
                    None => {
                        // The common case: complete the symmetry.
                        self.aid_mut(x).dom.insert(b);
                    }
                }
            }
            AidState::Affirmed => {
                // Decided affirmatively by an earlier drain step: the
                // dependence is already discharged.
                let itv = self.itv_mut(b);
                itv.ido.remove(&x);
                if itv.ido.is_empty() {
                    wl.push_back(Task::Finalize(b));
                }
            }
            AidState::Denied => {
                // Decided negatively: b is built on a false assumption.
                wl.push_back(Task::Rollback(b));
            }
        }
        self.drain(&mut wl, effects);
    }

    /// Drain-time replay of a deferred op through the full sequential
    /// engine. Pre-phase validation makes every error unreachable except
    /// [`Error::AidConsumed`], which means an earlier drain step (another
    /// decider, or a cascade) settled the AID first — the op loses the
    /// one-shot race, exactly as it would have under any sequential
    /// interleaving.
    fn apply_deferred(&mut self, op: ResolvedOp, effects: &mut Vec<Effect>) {
        let res = match op {
            ResolvedOp::Guess { pid, aids, ps } => self
                .guess(pid, &aids, ps)
                .map(|(_outcome, fx)| effects.extend(fx)),
            ResolvedOp::Affirm { pid, aid } => self.affirm(pid, aid).map(|fx| effects.extend(fx)),
            ResolvedOp::Deny { pid, aid } => self.deny(pid, aid).map(|fx| effects.extend(fx)),
            ResolvedOp::FreeOf { pid, aid } => self.free_of(pid, aid).map(|fx| effects.extend(fx)),
        };
        match res {
            Ok(()) | Err(Error::AidConsumed(_)) => {}
            Err(e) => unreachable!("deferred op failed after pre-phase validation: {e}"),
        }
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    /// Validate ids and enforce the one-shot rule, marking `x` consumed.
    fn consume(&mut self, pid: ProcessId, x: AidId) -> Result<()> {
        if self.proc_ref(pid).is_none() {
            return Err(Error::UnknownProcess(pid));
        }
        let aid = match self.aid_slot(x) {
            Slot::Live => self.aid_mut(x),
            // Fossils were decided, hence consumed: a second decider gets
            // the same error an uncollected engine would produce.
            Slot::Fossil => return Err(Error::AidConsumed(x)),
            Slot::Unknown => return Err(Error::UnknownAid(x)),
        };
        if aid.consumed {
            return Err(Error::AidConsumed(x));
        }
        aid.consumed = true;
        Ok(())
    }

    /// Affirm dispatch, assuming `x` is already consumed.
    fn affirm_inner(
        &mut self,
        pid: ProcessId,
        x: AidId,
        effects: &mut Vec<Effect>,
        wl: &mut VecDeque<Task>,
    ) {
        match self.current_interval(pid).expect("validated") {
            None => {
                // Definite affirm (Equations 7–9).
                effects.push(Effect::AidAffirmed { aid: x });
                self.definite_affirm_aid(x, effects, wl);
            }
            Some(a) => {
                // Speculative affirm (Equations 10–14).
                self.stats.speculative_affirms += 1;
                // The affirmer's IDO minus x: a COW share plus one removal.
                let mut a_ido = self.itv_ref(a).ido.clone();
                a_ido.remove(&x);
                let x_dom = std::mem::take(&mut self.aid_mut(x).dom);
                // Eq. 10: every AID the affirmer depends on inherits x's
                // dependents (word-parallel union).
                for y in &a_ido {
                    self.aid_mut(y).dom.union_with(&x_dom);
                }
                // Eqs. 11–14: dependents swap x for the affirmer's IDO.
                for b in &x_dom {
                    let itv = self.itv_mut(b);
                    itv.ido.remove(&x);
                    itv.ido.union_with(&a_ido);
                    if itv.ido.is_empty() {
                        wl.push_back(Task::Finalize(b));
                    }
                }
                self.aid_mut(x).spec_affirmed_by = Some(a);
                self.itv_mut(a).iha.insert(x);
                effects.push(Effect::SpeculativelyAffirmed { aid: x, by: a });
            }
        }
    }

    /// Deny dispatch, assuming `x` is already consumed.
    fn deny_inner(
        &mut self,
        pid: ProcessId,
        x: AidId,
        effects: &mut Vec<Effect>,
        wl: &mut VecDeque<Task>,
    ) {
        let cur = self.current_interval(pid).expect("validated");
        let definite = match cur {
            None => true,
            Some(a) => self.itv_ref(a).ido.contains(&x),
        };
        if definite {
            // Eq. 15.
            effects.push(Effect::AidDenied { aid: x });
            self.definite_deny_aid(x, effects, wl);
        } else {
            // Eq. 16.
            let a = cur.expect("speculative deny requires a current interval");
            self.stats.speculative_denies += 1;
            self.itv_mut(a).ihd.insert(x);
            self.aid_mut(x).spec_denied_by = Some(a);
            effects.push(Effect::SpeculativelyDenied { aid: x, by: a });
        }
    }

    /// Make `x` definitively affirmed and discharge its dependents
    /// (Equations 7–9). Queues finalizations.
    fn definite_affirm_aid(
        &mut self,
        x: AidId,
        _effects: &mut Vec<Effect>,
        wl: &mut VecDeque<Task>,
    ) {
        self.stats.definite_affirms += 1;
        let aid = self.aid_mut(x);
        aid.state = AidState::Affirmed;
        aid.spec_affirmed_by = None;
        aid.consumed = true;
        let dom = std::mem::take(&mut aid.dom);
        let x_home = self.aid_dir[(x.0 - self.aid_base) as usize].shard;
        let count_crossings = self.shards.len() > 1;
        for b in &dom {
            // Discharging a dependent hosted elsewhere is one cascade
            // notification across the ownership boundary.
            if count_crossings && self.itv_dir[(b.0 - self.interval_base) as usize].shard != x_home
            {
                self.tracking.cross_shard_messages += 1;
            }
            let itv = self.itv_mut(b);
            itv.ido.remove(&x);
            if itv.ido.is_empty() {
                wl.push_back(Task::Finalize(b));
            }
        }
    }

    /// Make `x` definitively denied and queue rollback of its dependents
    /// (Equation 15's universal rollback).
    fn definite_deny_aid(&mut self, x: AidId, _effects: &mut Vec<Effect>, wl: &mut VecDeque<Task>) {
        self.stats.definite_denies += 1;
        let aid = self.aid_mut(x);
        aid.state = AidState::Denied;
        aid.spec_affirmed_by = None;
        aid.spec_denied_by = None;
        aid.consumed = true;
        let dom = std::mem::take(&mut aid.dom);
        let x_home = self.aid_dir[(x.0 - self.aid_base) as usize].shard;
        let count_crossings = self.shards.len() > 1;
        for b in &dom {
            if count_crossings && self.itv_dir[(b.0 - self.interval_base) as usize].shard != x_home
            {
                self.tracking.cross_shard_messages += 1;
            }
            wl.push_back(Task::Rollback(b));
        }
    }

    /// Process queued finalizations and rollbacks until quiescent.
    fn drain(&mut self, wl: &mut VecDeque<Task>, effects: &mut Vec<Effect>) {
        while let Some(task) = wl.pop_front() {
            match task {
                Task::Finalize(a) => self.do_finalize(a, effects, wl),
                Task::Rollback(a) => self.do_rollback(a, effects, wl),
            }
        }
    }

    /// Finalize interval `a` (§5.5). Precondition: `a.IDO = ∅` (Equation
    /// 20) — guaranteed by callers; intervals that lost the race to a
    /// rollback are skipped.
    fn do_finalize(&mut self, a: IntervalId, effects: &mut Vec<Effect>, wl: &mut VecDeque<Task>) {
        if self.itv_ref(a).status != IntervalStatus::Speculative {
            return;
        }
        debug_assert!(
            self.itv_ref(a).ido.is_empty(),
            "finalize precondition (Eq. 20) violated for {a}"
        );
        self.itv_mut(a).status = IntervalStatus::Definite;
        self.stats.finalized += 1;
        effects.push(Effect::Finalized {
            interval: a,
            process: self.itv_ref(a).pid,
        });
        // Speculative affirms issued in `a` become definite (Lemma 6.1):
        // promote the AIDs so later guessers observe `Affirmed`.
        let iha = self.itv_ref(a).iha.clone();
        for x in &iha {
            if self.aid_ref(x).state == AidState::Undecided {
                effects.push(Effect::AidAffirmed { aid: x });
                self.definite_affirm_aid(x, effects, wl);
            }
        }
        // Speculative denies issued in `a` become definite (Equation 22).
        let ihd = self.itv_ref(a).ihd.clone();
        for x in &ihd {
            if self.aid_ref(x).state == AidState::Undecided {
                effects.push(Effect::AidDenied { aid: x });
                self.definite_deny_aid(x, effects, wl);
            }
        }
    }

    /// Roll back interval `a` (§5.6): truncate its process's history from
    /// `a` onward (Theorem 5.1) and undo speculative primitives.
    fn do_rollback(&mut self, a: IntervalId, effects: &mut Vec<Effect>, wl: &mut VecDeque<Task>) {
        match self.itv_ref(a).status {
            IntervalStatus::RolledBack => return,
            IntervalStatus::Definite => {
                debug_assert!(false, "Theorem 5.2 violated: rollback of definite {a}");
                return;
            }
            IntervalStatus::Speculative => {}
        }
        let pid = self.itv_ref(a).pid;
        let proc = self.proc_mut(pid).expect("interval has valid pid");
        let pos = match proc.history.iter().position(|&i| i == a) {
            Some(p) => p,
            None => return, // already truncated by an earlier event
        };
        let discarded = proc.history.split_off(pos);
        proc.discarded += discarded.len() as u64;
        self.stats.rolled_back_intervals += discarded.len() as u64;
        self.stats.rollback_events += 1;
        let checkpoint = self.itv_ref(a).ps;
        let home = self.proc_shard[pid.0 as usize];
        let count_crossings = self.shards.len() > 1;

        // Unwind latest-first, as an implementation would.
        for &c in discarded.iter().rev() {
            debug_assert_ne!(
                self.itv_ref(c).status,
                IntervalStatus::Definite,
                "definite interval {c} in a rolled-back suffix"
            );
            self.itv_mut(c).status = IntervalStatus::RolledBack;
            // Withdraw from every DOM set (keeps Lemma 5.1 symmetric).
            let ido = self.itv_ref(c).ido.clone();
            for x in &ido {
                // Withdrawing from a DOM hosted elsewhere is one tracking
                // message across the ownership boundary.
                if count_crossings && self.aid_dir[(x.0 - self.aid_base) as usize].shard != home {
                    self.tracking.cross_shard_messages += 1;
                }
                self.aid_mut(x).dom.remove(&c);
            }
            // Speculative affirms become conservative definite denies
            // (§5.6, footnote 2).
            let iha = self.itv_ref(c).iha.clone();
            for x in &iha {
                self.aid_mut(x).spec_affirmed_by = None;
                if self.aid_ref(x).state == AidState::Undecided {
                    effects.push(Effect::AidDenied { aid: x });
                    self.definite_deny_aid(x, effects, wl);
                }
            }
            // Speculative denies die with the interval (§5.6: "they die
            // with the interval inside the IHD set"). The deny never took
            // effect, so the AID is released for the re-execution to decide
            // again — the one-shot rule counts only surviving primitives.
            let ihd = self.itv_ref(c).ihd.clone();
            for x in &ihd {
                if self.aid_ref(x).spec_denied_by == Some(c) {
                    self.aid_mut(x).spec_denied_by = None;
                    if self.aid_ref(x).state == AidState::Undecided {
                        self.aid_mut(x).consumed = false;
                    }
                }
            }
        }
        effects.push(Effect::RolledBack {
            process: pid,
            intervals: discarded,
            checkpoint,
        });
    }

    fn post_check(&self) {
        if self.check_invariants {
            if let Err(msg) = self.verify_invariants() {
                panic!("engine invariant violated: {msg}");
            }
        }
    }

    /// Verify the structural invariants the paper's theorems rest on:
    ///
    /// 1. **Lemma 5.1 symmetry**: `X ∈ A.IDO ⟺ A ∈ X.DOM` for live
    ///    speculative intervals.
    /// 2. **Prefix-subset** (Theorem 5.1's induction invariant): within one
    ///    process history, an earlier interval's `IDO` is a subset of every
    ///    later interval's `IDO`.
    /// 3. **Status coherence**: speculative ⟺ non-empty `IDO` for live
    ///    intervals; `DOM` sets only contain speculative intervals; definite
    ///    intervals precede speculative ones in each history.
    ///
    /// Returns a human-readable description of the first violation.
    ///
    /// # Errors
    ///
    /// `Err(description)` if any invariant is violated (which would be an
    /// engine bug, not caller misuse).
    pub fn verify_invariants(&self) -> std::result::Result<(), String> {
        // 1 + 3: interval-side checks.
        for sh in &self.shards {
            for itv in &sh.intervals {
                match itv.status {
                    IntervalStatus::Speculative => {
                        if itv.ido.is_empty() {
                            return Err(format!("{} speculative with empty IDO", itv.id));
                        }
                        for x in &itv.ido {
                            if !self.aid_ref(x).dom.contains(&itv.id) {
                                return Err(format!(
                                    "Lemma 5.1: {} ∈ {}.IDO but {} ∉ {}.DOM",
                                    x, itv.id, itv.id, x
                                ));
                            }
                        }
                    }
                    IntervalStatus::Definite | IntervalStatus::RolledBack => {
                        for ash in &self.shards {
                            for aid in &ash.aids {
                                if aid.dom.contains(&itv.id) {
                                    return Err(format!(
                                        "{} is {:?} but present in {}.DOM",
                                        itv.id, itv.status, aid.id
                                    ));
                                }
                            }
                        }
                    }
                }
            }
        }
        // 1: AID-side symmetry.
        for sh in &self.shards {
            for aid in &sh.aids {
                for a in &aid.dom {
                    let itv = self.itv_ref(a);
                    if !itv.ido.contains(&aid.id) {
                        return Err(format!(
                            "Lemma 5.1: {} ∈ {}.DOM but {} ∉ {}.IDO",
                            a, aid.id, aid.id, a
                        ));
                    }
                    if itv.status != IntervalStatus::Speculative {
                        return Err(format!("{} in {}.DOM is not speculative", a, aid.id));
                    }
                }
                if aid.state == AidState::Denied && !aid.dom.is_empty() {
                    return Err(format!("denied {} has non-empty DOM", aid.id));
                }
                if aid.state == AidState::Affirmed && !aid.dom.is_empty() {
                    return Err(format!("affirmed {} has non-empty DOM", aid.id));
                }
                if aid.spec_affirmed_by.is_some() && !aid.dom.is_empty() {
                    return Err(format!(
                        "speculatively affirmed {} has direct dependents (Eq. 10–14 \
                         dissolve dependence permanently)",
                        aid.id
                    ));
                }
            }
        }
        // 2 + 3: per-process history checks.
        for sh in &self.shards {
            for (pid, proc) in &sh.procs {
                let mut seen_speculative = false;
                let mut prev: Option<&Interval> = None;
                for &a in &proc.history {
                    let itv = self.itv_ref(a);
                    if itv.status == IntervalStatus::RolledBack {
                        return Err(format!("rolled-back {} still in {}'s history", a, pid));
                    }
                    if itv.status == IntervalStatus::Speculative {
                        seen_speculative = true;
                    } else if seen_speculative {
                        return Err(format!(
                            "definite {} follows a speculative interval in {}'s history",
                            a, pid
                        ));
                    }
                    if let Some(p) = prev {
                        if !p.ido.is_subset(&itv.ido) {
                            return Err(format!(
                                "prefix-subset: {}.IDO ⊄ {}.IDO in {}'s history",
                                p.id, itv.id, pid
                            ));
                        }
                    }
                    prev = Some(itv);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn engine_with(n_procs: usize) -> (Engine, Vec<ProcessId>) {
        let mut e = Engine::new();
        e.set_invariant_checking(true);
        let pids = (0..n_procs).map(|_| e.register_process()).collect();
        (e, pids)
    }

    #[test]
    fn nested_guess_builds_inherited_ido_at_most_once() {
        // Historically `guess` cloned the full parent IDO twice (once for
        // the working set, once into the stored interval). With DepSet the
        // inherited set is COW-shared and built exactly once: each guess
        // may perform at most ONE copy-on-write duplication, and
        // representation spills are one-time per set (amortized O(1)).
        use crate::depset;
        let (mut e, p) = engine_with(1);
        let spills_before = depset::spills();
        const DEPTH: u64 = 64;
        for i in 0..DEPTH {
            let x = e.aid_init(p[0]);
            let cow_before = depset::cow_copies();
            e.guess(p[0], &[x], Checkpoint(i)).unwrap();
            assert!(
                depset::cow_copies() - cow_before <= 1,
                "guess at depth {i} materialized the inherited IDO more than once"
            );
        }
        // One spill for the IDO chain crossing the inline capacity, at most
        // one per AID's DOM set: never more than one spill per live set.
        assert!(depset::spills() - spills_before <= 1 + DEPTH);
    }

    #[test]
    fn guess_creates_speculative_interval() {
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let (out, fx) = e.guess(p[0], &[x], Checkpoint(1)).unwrap();
        let a = out.interval().unwrap();
        assert!(out.value());
        assert_eq!(fx.len(), 1);
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::Speculative);
        assert!(e.interval(a).unwrap().ido().contains(&x));
        assert!(e.aid(x).unwrap().dom().contains(&a));
        assert_eq!(e.current_interval(p[0]).unwrap(), Some(a));
        assert!(e.is_speculative(p[0]).unwrap());
    }

    #[test]
    fn guess_requires_aids() {
        let (mut e, p) = engine_with(1);
        assert_eq!(e.guess(p[0], &[], Checkpoint(0)), Err(Error::EmptyGuess));
    }

    #[test]
    fn guess_on_denied_aid_is_already_false() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.deny(p[1], x).unwrap(); // definite deny from a definite process
        let (out, fx) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        assert_eq!(out, GuessOutcome::AlreadyFalse(x));
        assert!(!out.value());
        assert!(fx.is_empty());
        assert!(!e.is_speculative(p[0]).unwrap());
    }

    #[test]
    fn guess_on_affirmed_aid_finalizes_immediately() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.affirm(p[1], x).unwrap();
        let (out, fx) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let a = out.interval().unwrap();
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::Definite);
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::Finalized { interval, .. } if *interval == a)));
        assert!(!e.is_speculative(p[0]).unwrap());
    }

    #[test]
    fn nested_guess_inherits_parent_ido() {
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (a, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let (b, _) = e.guess(p[0], &[y], Checkpoint(1)).unwrap();
        let b = b.interval().unwrap();
        let ido = e.interval(b).unwrap().ido().clone();
        assert!(ido.contains(&x) && ido.contains(&y));
        // Inherited dependency is recorded in DOM too (module fidelity note).
        assert!(e.aid(x).unwrap().dom().contains(&b));
        let _ = a;
    }

    #[test]
    fn definite_affirm_finalizes_dependents() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let (out, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let a = out.interval().unwrap();
        let fx = e.affirm(p[1], x).unwrap();
        assert!(fx.contains(&Effect::AidAffirmed { aid: x }));
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::Finalized { interval, .. } if *interval == a)));
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::Definite);
        assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
        assert!(!e.is_speculative(p[0]).unwrap());
    }

    #[test]
    fn definite_deny_rolls_back_dependents() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let (out, _) = e.guess(p[0], &[x], Checkpoint(7)).unwrap();
        let a = out.interval().unwrap();
        let fx = e.deny(p[1], x).unwrap();
        assert!(fx.contains(&Effect::AidDenied { aid: x }));
        let rb = fx.iter().find(|f| f.is_rollback()).unwrap();
        match rb {
            Effect::RolledBack {
                process,
                intervals,
                checkpoint,
            } => {
                assert_eq!(*process, p[0]);
                assert_eq!(intervals, &vec![a]);
                assert_eq!(*checkpoint, Checkpoint(7));
            }
            _ => unreachable!(),
        }
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::RolledBack);
        assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
        assert!(e.history(p[0]).unwrap().is_empty());
    }

    #[test]
    fn self_deny_rolls_back_own_interval() {
        // Eq. 15's second disjunct: X ∈ A.IDO makes the deny definite even
        // though the denier is speculative.
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let (out, _) = e.guess(p[0], &[x], Checkpoint(3)).unwrap();
        let a = out.interval().unwrap();
        let fx = e.deny(p[0], x).unwrap();
        assert!(fx.contains(&Effect::AidDenied { aid: x }));
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::RolledBack);
    }

    #[test]
    fn speculative_deny_applies_on_finalize() {
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]); // guessed by p1
        let y = e.aid_init(p[0]); // guessed by p2 (the denier's own dependence)
        let (ox, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let ax = ox.interval().unwrap();
        e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        // p2 (speculative on y, not on x) denies x: speculative deny.
        let fx = e.deny(p[2], x).unwrap();
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::SpeculativelyDenied { aid, .. } if *aid == x)));
        assert_eq!(e.aid_state(x).unwrap(), AidState::Undecided);
        assert_eq!(
            e.interval(ax).unwrap().status(),
            IntervalStatus::Speculative
        );
        // Affirm y definitively: p2's interval finalizes, the deny becomes
        // definite, and p1's interval rolls back (Equation 22).
        let fx = e.affirm(p[0], y).unwrap();
        assert!(fx.contains(&Effect::AidDenied { aid: x }));
        assert_eq!(e.interval(ax).unwrap().status(), IntervalStatus::RolledBack);
        assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
    }

    #[test]
    fn speculative_deny_dies_on_rollback() {
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (ox, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let ax = ox.interval().unwrap();
        e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        e.deny(p[2], x).unwrap(); // speculative deny of x, pending on y
                                  // Deny y: p2 rolls back; its speculative deny of x must die with it.
        e.deny(p[0], y).unwrap();
        // x was never definitively denied: the IHD entry died with p2's
        // interval. x is released (the deny never happened), its state
        // remains Undecided and ax survives.
        assert_eq!(e.aid_state(x).unwrap(), AidState::Undecided);
        assert!(!e.aid(x).unwrap().is_consumed());
        assert_eq!(
            e.interval(ax).unwrap().status(),
            IntervalStatus::Speculative
        );
    }

    #[test]
    fn speculative_deny_state_after_denier_rollback() {
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        e.deny(p[2], x).unwrap();
        e.deny(p[0], y).unwrap();
        assert_eq!(e.aid_state(x).unwrap(), AidState::Undecided);
    }

    #[test]
    fn speculative_affirm_transfers_dependence() {
        // B depends on X; A (speculative on Y) affirms X.
        // Eq. 12: B.IDO = (B.IDO ∪ A.IDO) \ {X} = {Y}.
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (ob, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let b = ob.interval().unwrap();
        let (oa, _) = e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        let a = oa.interval().unwrap();
        let fx = e.affirm(p[2], x).unwrap();
        assert!(fx.iter().any(
            |f| matches!(f, Effect::SpeculativelyAffirmed { aid, by } if *aid == x && *by == a)
        ));
        let b_ido = e.interval(b).unwrap().ido().clone();
        assert!(!b_ido.contains(&x));
        assert!(b_ido.contains(&y));
        assert!(e.aid(y).unwrap().dom().contains(&b));
        assert!(e.aid(x).unwrap().dom().is_empty());
        assert_eq!(e.aid(x).unwrap().speculatively_affirmed_by(), Some(a));
    }

    #[test]
    fn speculative_affirm_then_affirmer_definite_promotes_aid() {
        // Lemma 6.1: spec affirm + affirmer finalized ≡ definite affirm.
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (ob, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let b = ob.interval().unwrap();
        e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        e.affirm(p[2], x).unwrap();
        let fx = e.affirm(p[0], y).unwrap();
        // Both the affirmer's interval and B finalize; x becomes Affirmed.
        assert_eq!(e.interval(b).unwrap().status(), IntervalStatus::Definite);
        assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::AidAffirmed { aid } if *aid == x)));
    }

    #[test]
    fn speculative_affirm_then_affirmer_rollback_denies_aid() {
        // §5.6 footnote 2: rollback of a speculative affirm ≡ deny.
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (ob, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let b = ob.interval().unwrap();
        e.guess(p[2], &[y], Checkpoint(0)).unwrap();
        e.affirm(p[2], x).unwrap();
        let fx = e.deny(p[0], y).unwrap();
        // Denying y rolls back the affirmer AND (via the transferred
        // dependence) B; x is conservatively denied.
        assert_eq!(e.interval(b).unwrap().status(), IntervalStatus::RolledBack);
        assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::AidDenied { aid } if *aid == x)));
    }

    #[test]
    fn self_affirm_finalizes_sole_dependent() {
        // §5.2 "self affirm": A depends only on X and affirms X.
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let a = oa.interval().unwrap();
        let fx = e.affirm(p[0], x).unwrap();
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::Definite);
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::Finalized { interval, .. } if *interval == a)));
        assert!(!e.is_speculative(p[0]).unwrap());
        assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
    }

    #[test]
    fn one_shot_rule() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.affirm(p[0], x).unwrap();
        assert_eq!(e.affirm(p[1], x), Err(Error::AidConsumed(x)));
        assert_eq!(e.deny(p[1], x), Err(Error::AidConsumed(x)));
        assert_eq!(e.free_of(p[1], x), Err(Error::AidConsumed(x)));
        let y = e.aid_init(p[0]);
        e.deny(p[0], y).unwrap();
        assert_eq!(e.affirm(p[1], y), Err(Error::AidConsumed(y)));
        let z = e.aid_init(p[0]);
        e.free_of(p[0], z).unwrap();
        assert_eq!(e.deny(p[1], z), Err(Error::AidConsumed(z)));
    }

    #[test]
    fn free_of_definite_affirms() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
        let fx = e.free_of(p[0], x).unwrap();
        assert!(fx.contains(&Effect::AidAffirmed { aid: x }));
        assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
        assert_eq!(
            e.interval(oa.interval().unwrap()).unwrap().status(),
            IntervalStatus::Definite
        );
    }

    #[test]
    fn free_of_speculative_affirms_when_independent() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        e.guess(p[1], &[y], Checkpoint(0)).unwrap();
        // p1 depends on y but not x: free_of(x) is a speculative affirm.
        let fx = e.free_of(p[1], x).unwrap();
        assert!(fx
            .iter()
            .any(|f| matches!(f, Effect::SpeculativelyAffirmed { aid, .. } if *aid == x)));
        assert_eq!(e.aid_state(x).unwrap(), AidState::Undecided);
    }

    #[test]
    fn free_of_denies_when_dependent() {
        // Theorem 6.3's violated-constraint case.
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let fx = e.free_of(p[0], x).unwrap();
        assert!(fx.contains(&Effect::AidDenied { aid: x }));
        assert_eq!(
            e.interval(oa.interval().unwrap()).unwrap().status(),
            IntervalStatus::RolledBack
        );
    }

    #[test]
    fn rollback_truncates_suffix() {
        // Theorem 5.1: rolling back A discards every later interval.
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let z = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[0], &[x], Checkpoint(10)).unwrap();
        let (ob, _) = e.guess(p[0], &[y], Checkpoint(20)).unwrap();
        let (oc, _) = e.guess(p[0], &[z], Checkpoint(30)).unwrap();
        let (a, b, c) = (
            oa.interval().unwrap(),
            ob.interval().unwrap(),
            oc.interval().unwrap(),
        );
        let fx = e.deny(p[0], x).unwrap(); // definite (x ∈ current IDO)
        let rb = fx.iter().find(|f| f.is_rollback()).unwrap();
        match rb {
            Effect::RolledBack {
                intervals,
                checkpoint,
                ..
            } => {
                assert_eq!(intervals, &vec![a, b, c]);
                assert_eq!(*checkpoint, Checkpoint(10));
            }
            _ => unreachable!(),
        }
        for i in [a, b, c] {
            assert_eq!(e.interval(i).unwrap().status(), IntervalStatus::RolledBack);
        }
        // y and z remain undecided: they were guessed, not denied.
        assert_eq!(e.aid_state(y).unwrap(), AidState::Undecided);
        assert_eq!(e.aid_state(z).unwrap(), AidState::Undecided);
    }

    #[test]
    fn middle_deny_truncates_from_first_dependent() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[0], &[x], Checkpoint(1)).unwrap();
        let (ob, _) = e.guess(p[0], &[y], Checkpoint(2)).unwrap();
        // Deny y from outside: only B (and later) rolls back, A survives.
        e.deny(p[1], y).unwrap();
        assert_eq!(
            e.interval(oa.interval().unwrap()).unwrap().status(),
            IntervalStatus::Speculative
        );
        assert_eq!(
            e.interval(ob.interval().unwrap()).unwrap().status(),
            IntervalStatus::RolledBack
        );
        assert_eq!(e.history(p[0]).unwrap().len(), 1);
    }

    #[test]
    fn tags_and_implicit_guess() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag = e.dependence_tag(p[0]).unwrap();
        assert!(tag.contains(x));
        let (out, fx) = e.implicit_guess(p[1], &tag, Checkpoint(5)).unwrap();
        let b = match out {
            ReceiveOutcome::Speculative(b) => b,
            other => panic!("expected speculative receive, got {other:?}"),
        };
        assert!(!fx.is_empty());
        assert!(e.interval(b).unwrap().ido().contains(&x));
        // Deny x: both processes roll back.
        let fx = e.deny(p[0], x).unwrap();
        let rolled: Vec<ProcessId> = fx
            .iter()
            .filter_map(|f| match f {
                Effect::RolledBack { process, .. } => Some(*process),
                _ => None,
            })
            .collect();
        assert!(rolled.contains(&p[0]) && rolled.contains(&p[1]));
    }

    #[test]
    fn ghost_messages_are_filtered() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag = e.dependence_tag(p[0]).unwrap();
        e.deny(p[1], x).unwrap();
        let (out, fx) = e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
        assert_eq!(out, ReceiveOutcome::Ghost(x));
        assert!(fx.is_empty());
        assert!(!out.deliverable());
        assert_eq!(e.stats().ghosts, 1);
    }

    #[test]
    fn clean_receive_from_definite_sender() {
        let (mut e, p) = engine_with(2);
        let tag = e.dependence_tag(p[0]).unwrap();
        assert!(tag.is_empty());
        let (out, fx) = e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
        assert_eq!(out, ReceiveOutcome::Clean, "{fx:?}");
    }

    #[test]
    fn affirmed_tag_member_creates_no_dependence() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag = e.dependence_tag(p[0]).unwrap();
        e.affirm(p[1], x).unwrap();
        let (out, _) = e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
        assert_eq!(out, ReceiveOutcome::Clean);
    }

    #[test]
    fn transitive_rollback_across_three_processes() {
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag0 = e.dependence_tag(p[0]).unwrap();
        e.implicit_guess(p[1], &tag0, Checkpoint(0)).unwrap();
        let tag1 = e.dependence_tag(p[1]).unwrap();
        e.implicit_guess(p[2], &tag1, Checkpoint(0)).unwrap();
        let fx = e.deny(p[0], x).unwrap();
        let rolled: BTreeSet<ProcessId> = fx
            .iter()
            .filter_map(|f| match f {
                Effect::RolledBack { process, .. } => Some(*process),
                _ => None,
            })
            .collect();
        assert_eq!(rolled.len(), 3);
    }

    #[test]
    fn resume_point_guess_reexecutes_false() {
        // After rollback, re-executing the guess of the earliest discarded
        // interval must observe AlreadyFalse (the runtime relies on this).
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        e.deny(p[1], x).unwrap();
        let (out, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        assert_eq!(out, GuessOutcome::AlreadyFalse(x));
    }

    #[test]
    fn stats_accumulate() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        e.guess(p[0], &[y], Checkpoint(0)).unwrap();
        e.affirm(p[1], x).unwrap();
        e.deny(p[1], y).unwrap();
        let s = e.stats();
        assert_eq!(s.guesses, 2);
        assert_eq!(s.definite_affirms, 1);
        assert_eq!(s.definite_denies, 1);
        assert_eq!(s.rollback_events, 1);
        assert_eq!(s.rolled_back_intervals, 1);
        // Affirming x empties the first interval's IDO, finalizing it.
        assert_eq!(s.finalized, 1);
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (mut e, p) = engine_with(1);
        let x = e.aid_init(p[0]);
        let ghost_pid = ProcessId(99);
        let ghost_aid = AidId(99);
        assert_eq!(
            e.guess(ghost_pid, &[x], Checkpoint(0)),
            Err(Error::UnknownProcess(ghost_pid))
        );
        assert_eq!(
            e.guess(p[0], &[ghost_aid], Checkpoint(0)),
            Err(Error::UnknownAid(ghost_aid))
        );
        assert_eq!(
            e.affirm(ghost_pid, x),
            Err(Error::UnknownProcess(ghost_pid))
        );
        assert_eq!(e.affirm(p[0], ghost_aid), Err(Error::UnknownAid(ghost_aid)));
        assert!(e.aid(ghost_aid).is_err());
        assert!(e.interval(IntervalId(42)).is_err());
        assert!(e.history(ghost_pid).is_err());
    }

    #[test]
    fn manual_finalize_respects_equation_20() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let (oa, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let a = oa.interval().unwrap();
        // Speculative with a non-empty IDO: the precondition fails.
        assert_eq!(e.finalize(a), Err(Error::FinalizePrecondition(a)));
        // Once affirmed, the interval is definite; finalize is a no-op.
        e.affirm(p[1], x).unwrap();
        assert_eq!(e.finalize(a), Ok(Vec::new()));
        // Rolled-back intervals can never be finalized.
        let y = e.aid_init(p[0]);
        let (ob, _) = e.guess(p[0], &[y], Checkpoint(1)).unwrap();
        let b = ob.interval().unwrap();
        e.deny(p[1], y).unwrap();
        assert_eq!(e.finalize(b), Err(Error::FinalizePrecondition(b)));
        assert_eq!(
            e.finalize(IntervalId(404)),
            Err(Error::UnknownInterval(IntervalId(404)))
        );
    }

    #[test]
    fn invariants_hold_after_every_scenario() {
        let (mut e, p) = engine_with(3);
        let x = e.aid_init(p[0]);
        let y = e.aid_init(p[1]);
        let z = e.aid_init(p[2]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        e.guess(p[1], &[y], Checkpoint(0)).unwrap();
        e.guess(p[2], &[z], Checkpoint(0)).unwrap();
        e.affirm(p[1], x).unwrap(); // speculative
        e.deny(p[2], y).unwrap(); // speculative
        e.affirm(p[0], z).unwrap(); // speculative (p0 still spec on... x was
                                    // spec-affirmed; p0's interval IDO now {y})
        assert!(e.verify_invariants().is_ok());
    }

    #[test]
    fn collect_fossils_reclaims_decided_prefix() {
        let (mut e, p) = engine_with(2);
        for i in 0..4 {
            let x = e.aid_init(p[0]);
            e.guess(p[0], &[x], Checkpoint(i)).unwrap();
            e.affirm(p[1], x).unwrap();
        }
        let sweep = e.collect_fossils();
        assert_eq!(sweep.intervals, 4);
        assert_eq!(sweep.aids, 4);
        assert_eq!(sweep.interval_horizon, 4);
        assert_eq!(sweep.aid_horizon, 4);
        assert_eq!(e.live_interval_count(), 0);
        assert_eq!(e.live_aid_count(), 0);
        // Totals keep counting from the beginning of time.
        assert_eq!(e.interval_count(), 4);
        assert_eq!(e.aid_count(), 4);
        assert_eq!(e.stats().fossil_intervals, 4);
        assert_eq!(e.stats().fossil_aids, 4);
        // Affirmed fossils leave no residue.
        assert_eq!(e.fossil_denied_count(), 0);
        // New ids continue above the horizon; seq stays history-absolute.
        let y = e.aid_init(p[0]);
        assert_eq!(y, AidId(4));
        let (out, _) = e.guess(p[0], &[y], Checkpoint(9)).unwrap();
        let a = out.interval().unwrap();
        assert_eq!(a, IntervalId(4));
        assert_eq!(e.interval(a).unwrap().seq(), 4);
    }

    #[test]
    fn collection_is_idempotent_and_pinned_by_speculation() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        e.affirm(p[1], x).unwrap();
        let y = e.aid_init(p[0]);
        e.guess(p[0], &[y], Checkpoint(1)).unwrap(); // still speculative
        let s1 = e.collect_fossils();
        assert_eq!((s1.intervals, s1.aids), (1, 1));
        // The open speculation pins both horizons; a second sweep is a no-op.
        let s2 = e.collect_fossils();
        assert_eq!((s2.intervals, s2.aids), (0, 0));
        assert_eq!(s2.interval_horizon, 1);
        assert_eq!(s2.aid_horizon, 1);
        // Deciding y unblocks the remainder on the next sweep.
        e.affirm(p[0], y).unwrap(); // self-affirm of the sole dependent finalizes
        let s3 = e.collect_fossils();
        assert_eq!((s3.intervals, s3.aids), (1, 1));
        // An undecided AID pins the horizon for every AID created after it.
        let pin = e.aid_init(p[0]);
        let z = e.aid_init(p[0]);
        e.deny(p[1], z).unwrap();
        assert_eq!(e.collect_fossils().aids, 0);
        let _ = pin;
    }

    #[test]
    fn fossil_denied_aids_stay_visible_to_primitives() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag = e.dependence_tag(p[0]).unwrap();
        e.deny(p[1], x).unwrap();
        let sweep = e.collect_fossils();
        assert_eq!(sweep.aids, 1);
        assert_eq!(e.fossil_denied_count(), 1);
        // aid_state answers transparently from the fossil record.
        assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
        // A late guess on the reclaimed denied AID is still already-false.
        let (out, _) = e.guess(p[0], &[x], Checkpoint(1)).unwrap();
        assert_eq!(out, GuessOutcome::AlreadyFalse(x));
        // A stale in-flight tag naming it is still a ghost message.
        let (out, _) = e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
        assert_eq!(out, ReceiveOutcome::Ghost(x));
        // A second decider still trips the one-shot rule.
        assert_eq!(e.affirm(p[1], x), Err(Error::AidConsumed(x)));
        assert_eq!(e.deny(p[1], x), Err(Error::AidConsumed(x)));
    }

    #[test]
    fn fossil_affirmed_aids_stay_visible_to_primitives() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let tag = e.dependence_tag(p[0]).unwrap();
        e.affirm(p[1], x).unwrap();
        e.collect_fossils();
        assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
        // Guessing on an affirmed fossil proceeds definitely, as on a live
        // affirmed AID.
        let (out, _) = e.guess(p[0], &[x], Checkpoint(1)).unwrap();
        let a = out.interval().unwrap();
        assert_eq!(e.interval(a).unwrap().status(), IntervalStatus::Definite);
        // An affirmed fossil in a tag creates no dependence.
        let (out, _) = e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
        assert_eq!(out, ReceiveOutcome::Clean);
        assert_eq!(e.affirm(p[0], x), Err(Error::AidConsumed(x)));
    }

    #[test]
    fn fossil_views_report_reclamation() {
        let (mut e, p) = engine_with(2);
        let x = e.aid_init(p[0]);
        let (out, _) = e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        let a = out.interval().unwrap();
        e.affirm(p[1], x).unwrap();
        e.collect_fossils();
        assert_eq!(e.aid(x).map(|_| ()), Err(Error::FossilAid(x)));
        assert_eq!(e.interval(a).map(|_| ()), Err(Error::FossilInterval(a)));
        assert_eq!(e.finalize(a), Err(Error::FossilInterval(a)));
        // Genuinely unknown ids are still distinguished from fossils.
        assert_eq!(
            e.aid(AidId(99)).map(|_| ()),
            Err(Error::UnknownAid(AidId(99)))
        );
    }

    #[test]
    fn collection_is_transparent_to_a_twin_engine() {
        // Drive two engines through an identical op sequence, sweeping one
        // of them aggressively, and compare every observable outcome.
        let run = |collect: bool| -> Vec<String> {
            let (mut e, p) = engine_with(3);
            let mut obs = Vec::new();
            let mut aids = Vec::new();
            for round in 0..12u64 {
                let x = e.aid_init(p[(round % 3) as usize]);
                aids.push(x);
                let (out, fx) = e
                    .guess(p[(round % 3) as usize], &[x], Checkpoint(round))
                    .unwrap();
                obs.push(format!("{out:?} {fx:?}"));
                let decider = p[((round + 1) % 3) as usize];
                let fx = if round % 3 == 0 {
                    e.deny(decider, x).unwrap()
                } else {
                    e.affirm(decider, x).unwrap()
                };
                obs.push(format!("{fx:?}"));
                if collect {
                    e.collect_fossils();
                }
                for &seen in &aids {
                    obs.push(format!("{:?}", e.aid_state(seen)));
                }
            }
            obs
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn history_survives_collection_for_live_suffix() {
        let (mut e, p) = engine_with(2);
        // One definite interval, then an open speculative one.
        let x = e.aid_init(p[0]);
        e.guess(p[0], &[x], Checkpoint(0)).unwrap();
        e.affirm(p[1], x).unwrap();
        let y = e.aid_init(p[0]);
        let (out, _) = e.guess(p[0], &[y], Checkpoint(1)).unwrap();
        let b = out.interval().unwrap();
        e.collect_fossils();
        let hist = e.history(p[0]).unwrap();
        assert_eq!(hist, vec![b]);
        // Rollback of the live suffix still works after truncation.
        e.deny(p[1], y).unwrap();
        assert!(e.history(p[0]).unwrap().is_empty());
        assert!(e.verify_invariants().is_ok());
    }
}
