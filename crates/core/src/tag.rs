//! Dependency tags carried by inter-process messages.
//!
//! §3 / §7: "When a speculative process sends a message, the message is
//! *tagged* with the set of AIDs that the sender currently depends on. When
//! the message is received, the receiver implicitly applies a guess
//! primitive to each of the AIDs in the message's tag."
//!
//! A [`Tag`] is that set. Tags are plain data: they can be attached to any
//! message representation a runtime uses. The engine interprets tags via
//! [`Engine::implicit_guess`](crate::Engine::implicit_guess), which also
//! implements *ghost filtering*: a message any of whose tag AIDs has been
//! definitively denied originated in a rolled-back computation and must not
//! be delivered. Ghost filtering is how HOPE subsumes Time Warp
//! anti-messages (§2).

use std::fmt;

use crate::depset::DepSet;
use crate::ids::AidId;

/// The set of assumption identifiers a message's sender depended on at send
/// time.
///
/// # Examples
///
/// ```
/// use hope_core::{Engine, Tag};
///
/// let mut engine = Engine::new();
/// let p = engine.register_process();
/// let x = engine.aid_init(p);
/// let (_, _) = engine.guess(p, &[x], Default::default()).unwrap();
/// let tag = engine.dependence_tag(p).unwrap();
/// assert!(tag.contains(x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag {
    aids: DepSet<AidId>,
}

impl Tag {
    /// The empty tag: the sender was definite (dependent on nothing).
    pub fn new() -> Self {
        Tag::default()
    }

    /// Build a tag from an explicit set of AIDs.
    pub fn from_aids<I: IntoIterator<Item = AidId>>(aids: I) -> Self {
        Tag {
            aids: aids.into_iter().collect(),
        }
    }

    /// Wrap an already-built dependence set — O(1); the hot path behind
    /// [`Engine::dependence_tag`](crate::Engine::dependence_tag), where the
    /// sender's `IDO` is shared by refcount bump instead of rebuilt.
    pub fn from_depset(aids: DepSet<AidId>) -> Self {
        Tag { aids }
    }

    /// `true` if the sender was definite — receiving this message creates no
    /// dependence.
    pub fn is_empty(&self) -> bool {
        self.aids.is_empty()
    }

    /// Number of assumption identifiers in the tag.
    pub fn len(&self) -> usize {
        self.aids.len()
    }

    /// `true` if the tag mentions `aid`.
    pub fn contains(&self, aid: AidId) -> bool {
        self.aids.contains(&aid)
    }

    /// Iterate over the tag's AIDs in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AidId> + '_ {
        self.aids.iter()
    }

    /// Merge another tag into this one (used when a reply aggregates the
    /// dependencies of several inbound messages).
    pub fn union_with(&mut self, other: &Tag) {
        self.aids.union_with(&other.aids);
    }

    /// Add a single AID to the tag.
    pub fn insert(&mut self, aid: AidId) {
        self.aids.insert(aid);
    }

    /// Borrow the underlying set.
    pub fn as_set(&self) -> &DepSet<AidId> {
        &self.aids
    }
}

impl FromIterator<AidId> for Tag {
    fn from_iter<I: IntoIterator<Item = AidId>>(iter: I) -> Self {
        Tag::from_aids(iter)
    }
}

impl Extend<AidId> for Tag {
    fn extend<I: IntoIterator<Item = AidId>>(&mut self, iter: I) {
        self.aids.extend(iter);
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, x) in self.aids.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, "}}")
    }
}

/// Result of interpreting an inbound message's tag
/// ([`Engine::implicit_guess`](crate::Engine::implicit_guess)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReceiveOutcome {
    /// Every tag AID is affirmed (or the tag was empty): deliver the message;
    /// no new dependence.
    Clean,
    /// The message carries undecided assumptions: a new speculative interval
    /// was created (an implicit guess on each undecided AID). Deliver the
    /// message; the receiver is now speculative.
    Speculative(crate::IntervalId),
    /// At least one tag AID was definitively denied: the message originated
    /// in a rolled-back computation. Do **not** deliver it.
    Ghost(AidId),
}

impl ReceiveOutcome {
    /// `true` unless the message is a ghost.
    pub fn deliverable(&self) -> bool {
        !matches!(self, ReceiveOutcome::Ghost(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_display_and_set_ops() {
        let mut t = Tag::from_aids([AidId(2), AidId(1)]);
        assert_eq!(t.to_string(), "{X1, X2}");
        assert_eq!(t.len(), 2);
        assert!(t.contains(AidId(1)));
        assert!(!t.contains(AidId(3)));
        t.insert(AidId(3));
        assert!(t.contains(AidId(3)));
        let other = Tag::from_aids([AidId(9)]);
        t.union_with(&other);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn empty_tag() {
        let t = Tag::new();
        assert!(t.is_empty());
        assert_eq!(t.to_string(), "{}");
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: Tag = [AidId(5)].into_iter().collect();
        t.extend([AidId(6), AidId(5)]);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn ghost_is_not_deliverable() {
        assert!(!ReceiveOutcome::Ghost(AidId(0)).deliverable());
        assert!(ReceiveOutcome::Clean.deliverable());
        assert!(ReceiveOutcome::Speculative(crate::IntervalId(0)).deliverable());
    }
}
