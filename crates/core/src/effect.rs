//! Effects: what an engine transition did, reported to the embedding
//! runtime.
//!
//! The semantics of §5 *describe* state changes; a runtime must *act* on
//! some of them (restore checkpoints, release retained output, drop ghost
//! messages). Every public [`Engine`](crate::Engine) operation therefore
//! returns the ordered list of [`Effect`]s it produced. The order is the
//! order in which the engine applied them, so replaying the effects in order
//! reconstructs the cascade (a speculative affirm finalizing three intervals
//! produces three `Finalized` effects, and so on).

use std::fmt;

use crate::ids::{AidId, IntervalId, ProcessId};
use crate::interval::Checkpoint;

/// One observable consequence of an engine transition.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Effect {
    /// A new speculative interval began (Equations 1–6). The process is now
    /// dependent on every AID in the interval's `IDO` set.
    IntervalStarted {
        /// The freshly created interval.
        interval: IntervalId,
        /// Its owning process.
        process: ProcessId,
    },
    /// An interval was finalized (§5.5): it is now a permanent part of its
    /// process's history. Runtimes typically release output buffered for
    /// this interval (output commit) when they see this effect.
    Finalized {
        /// The interval that became definite.
        interval: IntervalId,
        /// Its owning process.
        process: ProcessId,
    },
    /// A suffix of a process's history was discarded (§5.6, Theorem 5.1).
    ///
    /// The runtime must restore the process to `checkpoint` (the `A.PS` of
    /// the *earliest* rolled-back interval) and resume it with the guess
    /// returning `False`.
    RolledBack {
        /// The process whose history was truncated.
        process: ProcessId,
        /// Every discarded interval, earliest first.
        intervals: Vec<IntervalId>,
        /// The checkpoint of the earliest discarded interval — where the
        /// process resumes.
        checkpoint: Checkpoint,
    },
    /// An assumption became definitively true. All dependence on it has been
    /// discharged.
    AidAffirmed {
        /// The affirmed assumption.
        aid: AidId,
    },
    /// An assumption became definitively false. Every interval that depended
    /// on it has been rolled back, and any message tagged with it is a ghost.
    AidDenied {
        /// The denied assumption.
        aid: AidId,
    },
    /// A speculative affirm was recorded (Equations 10–14): dependence on
    /// `aid` was replaced by dependence on the affirming interval's `IDO`.
    SpeculativelyAffirmed {
        /// The assumption that was speculatively affirmed.
        aid: AidId,
        /// The interval that issued the affirm.
        by: IntervalId,
    },
    /// A speculative deny was recorded into the interval's `IHD` set
    /// (Equation 16); it takes definite effect when the interval finalizes.
    SpeculativelyDenied {
        /// The assumption that was speculatively denied.
        aid: AidId,
        /// The interval that issued the deny.
        by: IntervalId,
    },
}

impl Effect {
    /// The process this effect concerns, if it is process-directed.
    pub fn process(&self) -> Option<ProcessId> {
        match self {
            Effect::IntervalStarted { process, .. }
            | Effect::Finalized { process, .. }
            | Effect::RolledBack { process, .. } => Some(*process),
            _ => None,
        }
    }

    /// `true` for effects that require runtime action on a process
    /// (checkpoint restoration).
    pub fn is_rollback(&self) -> bool {
        matches!(self, Effect::RolledBack { .. })
    }
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::IntervalStarted { interval, process } => {
                write!(f, "{process}: interval {interval} started")
            }
            Effect::Finalized { interval, process } => {
                write!(f, "{process}: interval {interval} finalized")
            }
            Effect::RolledBack {
                process,
                intervals,
                checkpoint,
            } => {
                write!(f, "{process}: rolled back to {checkpoint}, discarding [")?;
                for (i, a) in intervals.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Effect::AidAffirmed { aid } => write!(f, "{aid} affirmed"),
            Effect::AidDenied { aid } => write!(f, "{aid} denied"),
            Effect::SpeculativelyAffirmed { aid, by } => {
                write!(f, "{aid} speculatively affirmed by {by}")
            }
            Effect::SpeculativelyDenied { aid, by } => {
                write!(f, "{aid} speculatively denied by {by}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_rollback_lists_intervals() {
        let e = Effect::RolledBack {
            process: ProcessId(2),
            intervals: vec![IntervalId(3), IntervalId(4)],
            checkpoint: Checkpoint(7),
        };
        assert_eq!(
            e.to_string(),
            "P2: rolled back to ps@7, discarding [A3, A4]"
        );
        assert!(e.is_rollback());
        assert_eq!(e.process(), Some(ProcessId(2)));
    }

    #[test]
    fn aid_effects_have_no_process() {
        assert_eq!(Effect::AidAffirmed { aid: AidId(1) }.process(), None);
        assert_eq!(Effect::AidDenied { aid: AidId(1) }.process(), None);
    }
}
