//! Error type for the semantics engine.
//!
//! The paper leaves several misuses "undefined" (§5.2: more than one
//! `affirm`/`deny`/`free_of` applied to one AID). A library cannot leave
//! behaviour undefined, so every such misuse is a *defined* error here.

use std::fmt;

use crate::ids::{AidId, IntervalId, ProcessId};

/// Errors returned by [`Engine`](crate::Engine) operations.
///
/// All variants indicate caller misuse; the engine never fails internally.
/// The engine's state is unchanged when an error is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The given process id was never registered with this engine.
    UnknownProcess(ProcessId),
    /// The given AID was not created by this engine's
    /// [`aid_init`](crate::Engine::aid_init).
    UnknownAid(AidId),
    /// The given interval id does not exist in this engine.
    UnknownInterval(IntervalId),
    /// An `affirm`, `deny` or `free_of` was applied to an AID that has
    /// already been consumed by a previous `affirm`, `deny` or `free_of`.
    ///
    /// §5.2: "more than one affirm or deny primitive applied to a single
    /// assumption identifier, in any combination, is a user error". The
    /// paper's meaning is undefined; ours is this error.
    AidConsumed(AidId),
    /// A `guess` listed no assumption identifiers.
    ///
    /// An empty guess would create an interval indistinguishable from plain
    /// execution; the engine rejects it so the mistake is caught early.
    EmptyGuess,
    /// `finalize` was requested for an interval whose `IDO` set is not empty
    /// (violates the precondition of Equation 20).
    ///
    /// Only reachable through the low-level testing surface; the engine's own
    /// cascades always respect the precondition.
    FinalizePrecondition(IntervalId),
    /// The given AID was reclaimed by
    /// [`collect_fossils`](crate::Engine::collect_fossils).
    ///
    /// Its decision is still answered transparently by
    /// [`aid_state`](crate::Engine::aid_state) and honoured by every
    /// program-facing primitive; only the record itself (the
    /// [`AidView`](crate::AidView) debugging surface) is gone.
    FossilAid(AidId),
    /// The given interval was reclaimed by
    /// [`collect_fossils`](crate::Engine::collect_fossils).
    ///
    /// Fossil intervals were definite (or rolled back) below the commit
    /// horizon; no primitive can name them again, so only the
    /// [`IntervalView`](crate::IntervalView) debugging surface and the
    /// low-level `finalize` entry point observe this error.
    FossilInterval(IntervalId),
    /// A program was rejected before execution by a
    /// [`ProgramValidator`](crate::machine::ProgramValidator).
    ///
    /// Carries one human-readable reason per static diagnostic.
    ProgramRejected {
        /// Why the validator refused the program.
        reasons: Vec<String>,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownProcess(p) => write!(f, "unknown process {p}"),
            Error::UnknownAid(x) => write!(f, "unknown assumption identifier {x}"),
            Error::UnknownInterval(a) => write!(f, "unknown interval {a}"),
            Error::AidConsumed(x) => write!(
                f,
                "assumption identifier {x} was already affirmed, denied or freed"
            ),
            Error::EmptyGuess => write!(f, "guess requires at least one assumption identifier"),
            Error::FinalizePrecondition(a) => {
                write!(f, "interval {a} cannot finalize: its IDO set is not empty")
            }
            Error::FossilAid(x) => write!(
                f,
                "assumption identifier {x} was reclaimed by fossil collection"
            ),
            Error::FossilInterval(a) => {
                write!(f, "interval {a} was reclaimed by fossil collection")
            }
            Error::ProgramRejected { reasons } => {
                write!(f, "program rejected by static validation: ")?;
                for (i, r) in reasons.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{r}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenient result alias for engine operations.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            Error::UnknownProcess(ProcessId(1)).to_string(),
            Error::UnknownAid(AidId(2)).to_string(),
            Error::UnknownInterval(IntervalId(3)).to_string(),
            Error::AidConsumed(AidId(4)).to_string(),
            Error::EmptyGuess.to_string(),
            Error::FinalizePrecondition(IntervalId(5)).to_string(),
            Error::FossilAid(AidId(6)).to_string(),
            Error::FossilInterval(IntervalId(7)).to_string(),
            Error::ProgramRejected {
                reasons: vec!["first reason".into(), "second reason".into()],
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "lowercase: {m}");
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn assert_good<T: std::error::Error + Send + Sync + 'static>() {}
        assert_good::<Error>();
    }
}
