//! A tiny statement language for driving the [abstract
//! machine](crate::machine).
//!
//! The paper models a distributed program as "a collection of communicating
//! sequential processes … a generator of execution sequences" (§4). A
//! [`Program`] here is exactly that: one statement list per process, each
//! statement being a HOPE primitive, an internal computation event, or a
//! message send/receive. Programs are deliberately *unstructured* (no
//! branches): the semantics of the primitives do not depend on control flow,
//! and straight-line programs make exhaustive and randomized theorem
//! checking tractable.
//!
//! The module also provides a deterministic random-program generator
//! ([`Program::generate`]) used by the property-test suite and the engine
//! benchmarks. It is seeded and self-contained (a SplitMix64 generator) so
//! `hope-core` needs no RNG dependency.

use std::fmt;

/// Index of an assumption identifier within a [`Program`]'s pre-declared
/// AID table (the machine creates `aid_count` AIDs up front).
pub type AidVar = usize;

/// Index of a process within a [`Program`].
pub type ProcIdx = usize;

/// One statement of the machine's subject language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stmt {
    /// `guess(x)`: begin speculating on AID `x` (§5.1).
    Guess(AidVar),
    /// `affirm(x)` (§5.2). Skipped (recorded, not executed) if `x` was
    /// already consumed.
    Affirm(AidVar),
    /// `deny(x)` (§5.3). Skipped if `x` was already consumed.
    Deny(AidVar),
    /// `free_of(x)` (§5.4). Skipped if `x` was already consumed.
    FreeOf(AidVar),
    /// An internal event that changes only local state.
    Compute,
    /// Send a message (tagged with the sender's dependence set) to process
    /// `to`.
    Send {
        /// Destination process.
        to: ProcIdx,
    },
    /// Receive the next deliverable message, implicitly guessing every
    /// undecided AID in its tag. Blocks (the scheduler skips the process)
    /// while the mailbox holds no deliverable message.
    Recv,
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Guess(x) => write!(f, "guess(x{x})"),
            Stmt::Affirm(x) => write!(f, "affirm(x{x})"),
            Stmt::Deny(x) => write!(f, "deny(x{x})"),
            Stmt::FreeOf(x) => write!(f, "free_of(x{x})"),
            Stmt::Compute => write!(f, "compute"),
            Stmt::Send { to } => write!(f, "send(P{to})"),
            Stmt::Recv => write!(f, "recv"),
        }
    }
}

/// A straight-line distributed HOPE program: `code[p]` is the statement
/// list of process `p`, and `aid_count` AIDs are pre-declared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Per-process statement lists.
    pub code: Vec<Vec<Stmt>>,
    /// Number of pre-declared assumption identifiers.
    pub aid_count: usize,
}

impl Program {
    /// Build a program from explicit per-process statement lists.
    ///
    /// `aid_count` is inferred as one past the largest AID variable
    /// mentioned (zero if none).
    pub fn new(code: Vec<Vec<Stmt>>) -> Self {
        let aid_count = code
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Stmt::Guess(x) | Stmt::Affirm(x) | Stmt::Deny(x) | Stmt::FreeOf(x) => Some(*x + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Program { code, aid_count }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.code.len()
    }

    /// Total statement count across processes.
    pub fn len(&self) -> usize {
        self.code.iter().map(Vec::len).sum()
    }

    /// `true` if no process has any statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate a random program with `procs` processes of `len` statements
    /// each over `aids` assumption identifiers, deterministically from
    /// `seed`.
    ///
    /// The statement mix favours guesses and sends so that generated runs
    /// exercise deep speculation and cross-process dependence; `Recv` is
    /// emitted in proportion to sends so programs rarely deadlock (and the
    /// machine's step budget bounds them regardless).
    pub fn generate(seed: u64, procs: usize, len: usize, aids: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut code = Vec::with_capacity(procs);
        for p in 0..procs {
            let mut stmts = Vec::with_capacity(len);
            for _ in 0..len {
                let x = (rng.next() % aids.max(1) as u64) as usize;
                let stmt = match rng.next() % 100 {
                    0..=24 => Stmt::Guess(x),
                    25..=39 => Stmt::Affirm(x),
                    40..=49 => Stmt::Deny(x),
                    50..=56 => Stmt::FreeOf(x),
                    57..=69 => Stmt::Compute,
                    70..=84 if procs > 1 => {
                        let mut to = (rng.next() % procs as u64) as usize;
                        if to == p {
                            to = (to + 1) % procs;
                        }
                        Stmt::Send { to }
                    }
                    _ => Stmt::Recv,
                };
                stmts.push(stmt);
            }
            code.push(stmts);
        }
        Program {
            code,
            aid_count: aids,
        }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, stmts) in self.code.iter().enumerate() {
            writeln!(f, "process P{p}:")?;
            for (i, s) in stmts.iter().enumerate() {
                writeln!(f, "  {i:3}: {s}")?;
            }
        }
        Ok(())
    }
}

/// Error produced when parsing a [`Program`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProgramError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseProgramError {}

impl std::str::FromStr for Stmt {
    type Err = String;

    /// Parse one statement in the [`Display`](Stmt#impl-Display-for-Stmt)
    /// syntax, e.g. `guess(x0)`, `send(P2)`, `compute`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        fn aid_arg(s: &str, op: &str) -> Result<AidVar, String> {
            let inner = s
                .strip_prefix(op)
                .and_then(|r| r.strip_prefix('('))
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| format!("malformed `{op}` statement: `{s}`"))?;
            let digits = inner
                .strip_prefix('x')
                .ok_or_else(|| format!("expected AID like `x0` in `{s}`"))?;
            digits
                .parse::<AidVar>()
                .map_err(|_| format!("bad AID index `{digits}` in `{s}`"))
        }

        let s = s.trim();
        match s {
            "compute" => return Ok(Stmt::Compute),
            "recv" => return Ok(Stmt::Recv),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("send(") {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| format!("malformed `send` statement: `{s}`"))?;
            let digits = inner
                .strip_prefix('P')
                .ok_or_else(|| format!("expected process like `P1` in `{s}`"))?;
            let to = digits
                .parse::<ProcIdx>()
                .map_err(|_| format!("bad process index `{digits}` in `{s}`"))?;
            return Ok(Stmt::Send { to });
        }
        if s.starts_with("guess") {
            return aid_arg(s, "guess").map(Stmt::Guess);
        }
        if s.starts_with("affirm") {
            return aid_arg(s, "affirm").map(Stmt::Affirm);
        }
        if s.starts_with("deny") {
            return aid_arg(s, "deny").map(Stmt::Deny);
        }
        if s.starts_with("free_of") {
            return aid_arg(s, "free_of").map(Stmt::FreeOf);
        }
        Err(format!("unknown statement `{s}`"))
    }
}

impl std::str::FromStr for Program {
    type Err = ParseProgramError;

    /// Parse a program in the [`Display`](Program#impl-Display-for-Program)
    /// syntax — the parser round-trips `Program::to_string`:
    ///
    /// ```text
    /// process P0:
    ///     0: guess(x0)
    ///     1: send(P1)
    /// process P1:
    ///     0: recv
    /// ```
    ///
    /// Leading statement numbers are optional, blank lines and `#` comments
    /// are skipped, and `aid_count` is inferred as in [`Program::new`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut code: Vec<Vec<Stmt>> = Vec::new();
        for (idx, raw) in s.lines().enumerate() {
            let line = idx + 1;
            let err = |message: String| ParseProgramError { line, message };
            let text = raw.trim();
            if text.is_empty() || text.starts_with('#') {
                continue;
            }
            if let Some(header) = text.strip_prefix("process ") {
                let digits = header
                    .strip_prefix('P')
                    .and_then(|h| h.strip_suffix(':'))
                    .ok_or_else(|| {
                        err(format!(
                            "malformed process header `{text}` (want `process P<n>:`)"
                        ))
                    })?;
                let p: usize = digits
                    .parse()
                    .map_err(|_| err(format!("bad process index `{digits}`")))?;
                if p != code.len() {
                    return Err(err(format!(
                        "process P{p} declared out of order (expected P{})",
                        code.len()
                    )));
                }
                code.push(Vec::new());
                continue;
            }
            // Strip an optional `<n>:` statement-number prefix.
            let stmt_text = match text.split_once(':') {
                Some((num, rest)) if num.trim().parse::<usize>().is_ok() => rest.trim(),
                _ => text,
            };
            let stmt: Stmt = stmt_text.parse().map_err(err)?;
            code.last_mut()
                .ok_or_else(|| err(format!("statement `{stmt_text}` before any process header")))?
                .push(stmt);
        }
        Ok(Program::new(code))
    }
}

/// SplitMix64: tiny, high-quality, dependency-free seeded generator.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_infers_aid_count() {
        let p = Program::new(vec![
            vec![Stmt::Guess(3), Stmt::Compute],
            vec![Stmt::Affirm(1)],
        ]);
        assert_eq!(p.aid_count, 4);
        assert_eq!(p.process_count(), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_program() {
        let p = Program::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.aid_count, 0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Program::generate(42, 3, 20, 4);
        let b = Program::generate(42, 3, 20, 4);
        assert_eq!(a, b);
        let c = Program::generate(43, 3, 20, 4);
        assert_ne!(a, c);
        assert_eq!(a.process_count(), 3);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn generate_never_sends_to_self() {
        let p = Program::generate(7, 4, 200, 3);
        for (idx, stmts) in p.code.iter().enumerate() {
            for s in stmts {
                if let Stmt::Send { to } = s {
                    assert_ne!(*to, idx);
                }
            }
        }
    }

    #[test]
    fn display_renders_each_statement() {
        let p = Program::new(vec![vec![
            Stmt::Guess(0),
            Stmt::Affirm(0),
            Stmt::Deny(1),
            Stmt::FreeOf(2),
            Stmt::Compute,
            Stmt::Send { to: 1 },
            Stmt::Recv,
        ]]);
        let s = p.to_string();
        for needle in [
            "guess(x0)",
            "affirm(x0)",
            "deny(x1)",
            "free_of(x2)",
            "compute",
            "send(P1)",
            "recv",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn parse_round_trips_display() {
        for seed in 0..20 {
            let p = Program::generate(seed, 3, 12, 4);
            let reparsed: Program = p.to_string().parse().expect("round trip");
            assert_eq!(reparsed.code, p.code);
            // aid_count is inferred on parse, so it may shrink if the largest
            // AID never appears; the code itself must be identical.
            assert!(reparsed.aid_count <= p.aid_count);
        }
    }

    #[test]
    fn parse_accepts_bare_statements_comments_and_blanks() {
        let src = "\n# a doomed free_of\nprocess P0:\n  guess(x1)\n\n  free_of(x1)\n";
        let p: Program = src.parse().unwrap();
        assert_eq!(p.code, vec![vec![Stmt::Guess(1), Stmt::FreeOf(1)]]);
        assert_eq!(p.aid_count, 2);
    }

    #[test]
    fn parse_rejects_garbage_with_line_numbers() {
        let err = "process P0:\n  hope(x0)\n".parse::<Program>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown statement"));

        let err = "  guess(x0)\n".parse::<Program>().unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("before any process header"));

        let err = "process P1:\n".parse::<Program>().unwrap_err();
        assert!(err.to_string().contains("out of order"));

        assert!("process P0:\n guess(y0)\n".parse::<Program>().is_err());
        assert!("process P0:\n send(Q1)\n".parse::<Program>().is_err());
    }

    #[test]
    fn splitmix_differs_across_calls() {
        let mut r = SplitMix64::new(1);
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}
