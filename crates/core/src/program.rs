//! A tiny statement language for driving the [abstract
//! machine](crate::machine).
//!
//! The paper models a distributed program as "a collection of communicating
//! sequential processes … a generator of execution sequences" (§4). A
//! [`Program`] here is exactly that: one statement list per process, each
//! statement being a HOPE primitive, an internal computation event, or a
//! message send/receive. Programs are deliberately *unstructured* (no
//! branches): the semantics of the primitives do not depend on control flow,
//! and straight-line programs make exhaustive and randomized theorem
//! checking tractable.
//!
//! The module also provides a deterministic random-program generator
//! ([`Program::generate`]) used by the property-test suite and the engine
//! benchmarks. It is seeded and self-contained (a SplitMix64 generator) so
//! `hope-core` needs no RNG dependency.

use std::fmt;

/// Index of an assumption identifier within a [`Program`]'s pre-declared
/// AID table (the machine creates `aid_count` AIDs up front).
pub type AidVar = usize;

/// Index of a process within a [`Program`].
pub type ProcIdx = usize;

/// One statement of the machine's subject language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stmt {
    /// `guess(x)`: begin speculating on AID `x` (§5.1).
    Guess(AidVar),
    /// `affirm(x)` (§5.2). Skipped (recorded, not executed) if `x` was
    /// already consumed.
    Affirm(AidVar),
    /// `deny(x)` (§5.3). Skipped if `x` was already consumed.
    Deny(AidVar),
    /// `free_of(x)` (§5.4). Skipped if `x` was already consumed.
    FreeOf(AidVar),
    /// An internal event that changes only local state.
    Compute,
    /// Send a message (tagged with the sender's dependence set) to process
    /// `to`.
    Send {
        /// Destination process.
        to: ProcIdx,
    },
    /// Receive the next deliverable message, implicitly guessing every
    /// undecided AID in its tag. Blocks (the scheduler skips the process)
    /// while the mailbox holds no deliverable message.
    Recv,
}

impl fmt::Display for Stmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Stmt::Guess(x) => write!(f, "guess(x{x})"),
            Stmt::Affirm(x) => write!(f, "affirm(x{x})"),
            Stmt::Deny(x) => write!(f, "deny(x{x})"),
            Stmt::FreeOf(x) => write!(f, "free_of(x{x})"),
            Stmt::Compute => write!(f, "compute"),
            Stmt::Send { to } => write!(f, "send(P{to})"),
            Stmt::Recv => write!(f, "recv"),
        }
    }
}

/// A straight-line distributed HOPE program: `code[p]` is the statement
/// list of process `p`, and `aid_count` AIDs are pre-declared.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Per-process statement lists.
    pub code: Vec<Vec<Stmt>>,
    /// Number of pre-declared assumption identifiers.
    pub aid_count: usize,
}

impl Program {
    /// Build a program from explicit per-process statement lists.
    ///
    /// `aid_count` is inferred as one past the largest AID variable
    /// mentioned (zero if none).
    pub fn new(code: Vec<Vec<Stmt>>) -> Self {
        let aid_count = code
            .iter()
            .flatten()
            .filter_map(|s| match s {
                Stmt::Guess(x) | Stmt::Affirm(x) | Stmt::Deny(x) | Stmt::FreeOf(x) => Some(*x + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0);
        Program { code, aid_count }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.code.len()
    }

    /// Total statement count across processes.
    pub fn len(&self) -> usize {
        self.code.iter().map(Vec::len).sum()
    }

    /// `true` if no process has any statements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Generate a random program with `procs` processes of `len` statements
    /// each over `aids` assumption identifiers, deterministically from
    /// `seed`.
    ///
    /// The statement mix favours guesses and sends so that generated runs
    /// exercise deep speculation and cross-process dependence; `Recv` is
    /// emitted in proportion to sends so programs rarely deadlock (and the
    /// machine's step budget bounds them regardless).
    pub fn generate(seed: u64, procs: usize, len: usize, aids: usize) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut code = Vec::with_capacity(procs);
        for p in 0..procs {
            let mut stmts = Vec::with_capacity(len);
            for _ in 0..len {
                let x = (rng.next() % aids.max(1) as u64) as usize;
                let stmt = match rng.next() % 100 {
                    0..=24 => Stmt::Guess(x),
                    25..=39 => Stmt::Affirm(x),
                    40..=49 => Stmt::Deny(x),
                    50..=56 => Stmt::FreeOf(x),
                    57..=69 => Stmt::Compute,
                    70..=84 if procs > 1 => {
                        let mut to = (rng.next() % procs as u64) as usize;
                        if to == p {
                            to = (to + 1) % procs;
                        }
                        Stmt::Send { to }
                    }
                    _ => Stmt::Recv,
                };
                stmts.push(stmt);
            }
            code.push(stmts);
        }
        Program { code, aid_count: aids }
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (p, stmts) in self.code.iter().enumerate() {
            writeln!(f, "process P{p}:")?;
            for (i, s) in stmts.iter().enumerate() {
                writeln!(f, "  {i:3}: {s}")?;
            }
        }
        Ok(())
    }
}

/// SplitMix64: tiny, high-quality, dependency-free seeded generator.
#[derive(Debug, Clone)]
pub(crate) struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_infers_aid_count() {
        let p = Program::new(vec![vec![Stmt::Guess(3), Stmt::Compute], vec![Stmt::Affirm(1)]]);
        assert_eq!(p.aid_count, 4);
        assert_eq!(p.process_count(), 2);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn empty_program() {
        let p = Program::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.aid_count, 0);
    }

    #[test]
    fn generate_is_deterministic() {
        let a = Program::generate(42, 3, 20, 4);
        let b = Program::generate(42, 3, 20, 4);
        assert_eq!(a, b);
        let c = Program::generate(43, 3, 20, 4);
        assert_ne!(a, c);
        assert_eq!(a.process_count(), 3);
        assert_eq!(a.len(), 60);
    }

    #[test]
    fn generate_never_sends_to_self() {
        let p = Program::generate(7, 4, 200, 3);
        for (idx, stmts) in p.code.iter().enumerate() {
            for s in stmts {
                if let Stmt::Send { to } = s {
                    assert_ne!(*to, idx);
                }
            }
        }
    }

    #[test]
    fn display_renders_each_statement() {
        let p = Program::new(vec![vec![
            Stmt::Guess(0),
            Stmt::Affirm(0),
            Stmt::Deny(1),
            Stmt::FreeOf(2),
            Stmt::Compute,
            Stmt::Send { to: 1 },
            Stmt::Recv,
        ]]);
        let s = p.to_string();
        for needle in [
            "guess(x0)",
            "affirm(x0)",
            "deny(x1)",
            "free_of(x2)",
            "compute",
            "send(P1)",
            "recv",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }

    #[test]
    fn splitmix_differs_across_calls() {
        let mut r = SplitMix64::new(1);
        let a = r.next();
        let b = r.next();
        assert_ne!(a, b);
    }
}
