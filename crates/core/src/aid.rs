//! Assumption identifiers and their control state.
//!
//! Each AID `X` carries the control variable `X.DOM` ("Depends On Me",
//! Definition 4.2): the set of intervals that are rolled back if `X`'s
//! assumption is discovered to be false. `DOM` is invisible to the
//! programmer "in the same sense that program counters are invisible"; this
//! module is accordingly `pub(crate)` except for the read-only views the
//! engine re-exports for inspection and testing.

use crate::depset::DepSet;
use crate::ids::{AidId, IntervalId, ProcessId};

/// The decision state of an optimistic assumption.
///
/// An AID starts [`Undecided`](AidState::Undecided). A *definite* `affirm`
/// or `deny` moves it to [`Affirmed`](AidState::Affirmed) or
/// [`Denied`](AidState::Denied) permanently. A *speculative* affirm leaves
/// the AID undecided (its fate is tied to the affirming interval's fate);
/// the engine records the tie separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AidState {
    /// Neither definitively affirmed nor definitively denied yet.
    Undecided,
    /// Definitively affirmed: every dependence on this AID has been or will
    /// be discharged; per Theorem 5.2 its former dependents can no longer be
    /// rolled back *on its account*.
    Affirmed,
    /// Definitively denied: every interval that depended on this AID has
    /// been rolled back (Equation 15), and any message tagged with it is a
    /// ghost.
    Denied,
}

impl AidState {
    /// `true` if the assumption has been definitively decided either way.
    pub fn is_decided(self) -> bool {
        !matches!(self, AidState::Undecided)
    }
}

/// Internal record for one assumption identifier.
#[derive(Debug, Clone)]
pub(crate) struct Aid {
    pub(crate) id: AidId,
    /// Process that executed `aid_init` (recorded for traces only).
    pub(crate) creator: ProcessId,
    /// Current decision state.
    pub(crate) state: AidState,
    /// `X.DOM`: intervals that depend on `X` (Definition 4.2). Kept
    /// symmetric with the intervals' `IDO` sets per Lemma 5.1.
    pub(crate) dom: DepSet<IntervalId>,
    /// Whether an `affirm`, `deny` or `free_of` has been applied. One-shot
    /// per §5.2; a second application is [`Error::AidConsumed`].
    ///
    /// [`Error::AidConsumed`]: crate::Error::AidConsumed
    pub(crate) consumed: bool,
    /// If `Some(a)`, the AID was speculatively affirmed by interval `a`
    /// (Equations 10–14) and its definite fate follows `a`'s fate: it becomes
    /// [`AidState::Affirmed`] when `a` finalizes and [`AidState::Denied`]
    /// (footnote 2, §5.6) when `a` rolls back.
    pub(crate) spec_affirmed_by: Option<IntervalId>,
    /// If `Some(a)`, a speculative `deny` by interval `a` is pending in
    /// `a.IHD`; recorded here so traces can explain the AID's limbo.
    pub(crate) spec_denied_by: Option<IntervalId>,
}

impl Aid {
    pub(crate) fn new(id: AidId, creator: ProcessId) -> Self {
        Aid {
            id,
            creator,
            state: AidState::Undecided,
            dom: DepSet::new(),
            consumed: false,
            spec_affirmed_by: None,
            spec_denied_by: None,
        }
    }
}

/// Read-only view of one assumption identifier's control state.
///
/// Obtained from [`Engine::aid`](crate::Engine::aid). The view borrows the
/// engine; it exposes exactly the control variables of Definition 4.2 plus
/// the bookkeeping our engine adds (consumption, speculative ties).
#[derive(Debug, Clone, Copy)]
pub struct AidView<'a> {
    pub(crate) inner: &'a Aid,
}

impl<'a> AidView<'a> {
    /// The AID this view describes.
    pub fn id(&self) -> AidId {
        self.inner.id
    }

    /// The process that created the AID via `aid_init`.
    pub fn creator(&self) -> ProcessId {
        self.inner.creator
    }

    /// Current decision state.
    pub fn state(&self) -> AidState {
        self.inner.state
    }

    /// `X.DOM`: the intervals currently dependent on this assumption.
    ///
    /// Iterating the returned [`DepSet`] yields [`IntervalId`]s by value in
    /// ascending order, exactly as the former `BTreeSet` representation did.
    pub fn dom(&self) -> &'a DepSet<IntervalId> {
        &self.inner.dom
    }

    /// Whether an `affirm`/`deny`/`free_of` has consumed this AID.
    pub fn is_consumed(&self) -> bool {
        self.inner.consumed
    }

    /// The interval whose fate this AID follows after a speculative affirm,
    /// if any.
    pub fn speculatively_affirmed_by(&self) -> Option<IntervalId> {
        self.inner.spec_affirmed_by
    }

    /// The interval holding a pending speculative deny of this AID, if any.
    pub fn speculatively_denied_by(&self) -> Option<IntervalId> {
        self.inner.spec_denied_by
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_aid_is_undecided_and_unconsumed() {
        let a = Aid::new(AidId(0), ProcessId(1));
        assert_eq!(a.state, AidState::Undecided);
        assert!(!a.consumed);
        assert!(a.dom.is_empty());
        assert!(a.spec_affirmed_by.is_none());
        assert!(a.spec_denied_by.is_none());
    }

    #[test]
    fn decided_states() {
        assert!(!AidState::Undecided.is_decided());
        assert!(AidState::Affirmed.is_decided());
        assert!(AidState::Denied.is_decided());
    }
}
