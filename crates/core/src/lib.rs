//! # hope-core — the formal semantics of HOPE, executable
//!
//! This crate is a faithful, executable transcription of the operational
//! semantics in *Formal Semantics for Expressing Optimism: The Meaning of
//! HOPE* (Cowan & Lutfiyya, PODC 1995).
//!
//! HOPE defines **optimism** as any computation that uses rollback. A
//! program increases concurrency by making an optimistic assumption about a
//! future state and verifying the assumption in parallel with computations
//! based on it. HOPE's programming model is one data type and four
//! primitives:
//!
//! * an **assumption identifier** ([`AidId`]) names an optimistic
//!   assumption;
//! * [`guess`](Engine::guess) begins computing under an assumption
//!   (speculatively returning `true`);
//! * [`affirm`](Engine::affirm) asserts the assumption was correct;
//! * [`deny`](Engine::deny) asserts it was wrong, rolling back every
//!   dependent computation transitively;
//! * [`free_of`](Engine::free_of) asserts the caller is — and will remain —
//!   causally independent of the assumption.
//!
//! The crate's centrepiece is the [`Engine`]: it owns AIDs, intervals
//! (units of rollback, [`IntervalId`]) and per-process histories, performs
//! all dependency tracking (the `IDO`/`DOM`/`IHD` control variables of §4–5)
//! and reports every consequence of a transition as an ordered [`Effect`]
//! list for an embedding runtime to act on. Inter-process dependence flows
//! through message [`Tag`]s and [`Engine::implicit_guess`].
//!
//! The [`machine`] module additionally provides the paper's abstract machine
//! *literally* — explicit state sequences `H_P : S0 E0 S1 E1 …` with the
//! `G`, `I` and `IS` state variables — which the test suite uses to verify
//! the paper's lemmas and theorems mechanically (see `tests/` and the
//! `hope` facade crate's theorem suite).
//!
//! ## Example
//!
//! The Worker/WorryWart page-printer of the paper's Figure 2, reduced to
//! engine transitions:
//!
//! ```
//! use hope_core::{AidState, Checkpoint, Engine};
//!
//! let mut engine = Engine::new();
//! let worker = engine.register_process();
//! let worrywart = engine.register_process();
//!
//! // Worker: PartPage = aid_init(); if guess(PartPage) { skip newpage }
//! let part_page = engine.aid_init(worker);
//! let (outcome, _) = engine.guess(worker, &[part_page], Checkpoint(0))?;
//! assert!(outcome.value()); // proceed optimistically
//!
//! // WorryWart: line = print(...); if line < PAGE_SIZE { affirm } else { deny }
//! let line = 37; // the RPC's actual result
//! let effects = if line < 60 {
//!     engine.affirm(worrywart, part_page)?
//! } else {
//!     engine.deny(worrywart, part_page)?
//! };
//!
//! // The assumption held: the Worker's speculative interval finalized.
//! assert!(effects.iter().any(|e| matches!(e, hope_core::Effect::Finalized { .. })));
//! assert_eq!(engine.aid_state(part_page)?, AidState::Affirmed);
//! # Ok::<(), hope_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod aid;
mod effect;
mod engine;
mod error;
mod ids;
mod interval;
mod shard;
mod tag;

pub mod depset;
pub mod machine;
pub mod observer;
pub mod program;
pub mod trace;

pub use aid::{AidState, AidView};
pub use depset::DepSet;
pub use effect::Effect;
pub use engine::{Engine, EngineStats, FossilSweep, GuessOutcome};
pub use error::{Error, Result};
pub use ids::{AidId, IntervalId, ProcessId};
pub use interval::{Checkpoint, IntervalStatus, IntervalView};
pub use observer::{Action, DecideKind, NullObserver, RuntimeObserver};
pub use shard::{DrainOrder, OpAid, PhaseReport, ShardOp, TrackingStats};
pub use tag::{ReceiveOutcome, Tag};
