//! Intervals: the unit of rollback (Definitions 4.3–4.4).
//!
//! An interval is a subsequence of a process's execution history between two
//! guess points. Each interval `A` carries the control-variable tuple of
//! Definition 4.4:
//!
//! * `A.PS` — *Previous State*: the checkpoint taken when the interval's
//!   guess executed. The engine stores an opaque token the runtime supplies
//!   (a journal position, a snapshot index, …); the engine never interprets
//!   it.
//! * `A.IDO` — *I Depend On*: the assumption identifiers the interval
//!   depends on.
//! * `A.IHD` — *I Have Denied*: speculative denies pending finalization
//!   (Equation 16).
//! * `A.PID` — the owning process (a "naming convenience" per §5.1).
//!
//! We additionally record `A.IHA` (*I Have Affirmed*): the AIDs this
//! interval speculatively affirmed. The paper's Equations 10–14 rewire
//! dependence eagerly, so `IHA` is not needed for dependency tracking — it
//! exists so the engine can (a) promote the AID to definitively
//! [`Affirmed`](crate::AidState::Affirmed) when the interval finalizes
//! (Lemma 6.1's conclusion) and (b) conservatively deny it when the interval
//! rolls back (§5.6, footnote 2).

use crate::depset::DepSet;
use crate::ids::{AidId, IntervalId, ProcessId};

/// Lifecycle status of an interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntervalStatus {
    /// Still dependent on undecided assumptions; may be rolled back.
    Speculative,
    /// Finalized (§5.5): a permanent part of its process's history. Per
    /// Theorem 5.2 a definite interval can never be rolled back.
    Definite,
    /// Discarded by rollback (§5.6): truncated from its process's history.
    RolledBack,
}

/// Opaque checkpoint token — the paper's `A.PS` (*Previous State*).
///
/// The engine records whatever the runtime passes to
/// [`Engine::guess`](crate::Engine::guess) and hands it back in the
/// [`Effect::RolledBack`](crate::Effect::RolledBack) effect so the runtime
/// can restore the process. The deterministic runtime stores a journal
/// position; tests store sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Checkpoint(pub u64);

impl std::fmt::Display for Checkpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ps@{}", self.0)
    }
}

/// Internal record for one interval.
#[derive(Debug, Clone)]
pub(crate) struct Interval {
    pub(crate) id: IntervalId,
    /// `A.PID`.
    pub(crate) pid: ProcessId,
    /// `A.PS`.
    pub(crate) ps: Checkpoint,
    /// `A.IDO`.
    pub(crate) ido: DepSet<AidId>,
    /// `A.IHD`.
    pub(crate) ihd: DepSet<AidId>,
    /// `A.IHA` (see module docs).
    pub(crate) iha: DepSet<AidId>,
    /// The AIDs named in the guess that opened this interval (before
    /// inheriting the parent's `IDO`). Used by runtimes to re-issue the
    /// guess after rollback and by the resume-point invariant tests.
    pub(crate) guessed: DepSet<AidId>,
    pub(crate) status: IntervalStatus,
    /// Position in the owning process's (live) history at creation time.
    pub(crate) seq: usize,
}

/// Read-only view of one interval's control variables.
///
/// Obtained from [`Engine::interval`](crate::Engine::interval).
#[derive(Debug, Clone, Copy)]
pub struct IntervalView<'a> {
    pub(crate) inner: &'a Interval,
}

impl<'a> IntervalView<'a> {
    /// The interval this view describes.
    pub fn id(&self) -> IntervalId {
        self.inner.id
    }

    /// `A.PID`: the owning process.
    pub fn process(&self) -> ProcessId {
        self.inner.pid
    }

    /// `A.PS`: the checkpoint token recorded at the guess point.
    pub fn checkpoint(&self) -> Checkpoint {
        self.inner.ps
    }

    /// `A.IDO`: assumption identifiers this interval depends on.
    ///
    /// Iterating the returned [`DepSet`] yields [`AidId`]s by value in
    /// ascending order, exactly as the former `BTreeSet` representation did.
    pub fn ido(&self) -> &'a DepSet<AidId> {
        &self.inner.ido
    }

    /// `A.IHD`: speculative denies pending this interval's finalization.
    pub fn ihd(&self) -> &'a DepSet<AidId> {
        &self.inner.ihd
    }

    /// `A.IHA`: speculative affirms issued within this interval.
    pub fn iha(&self) -> &'a DepSet<AidId> {
        &self.inner.iha
    }

    /// The AIDs named by the guess that opened this interval.
    pub fn guessed(&self) -> &'a DepSet<AidId> {
        &self.inner.guessed
    }

    /// Current lifecycle status.
    pub fn status(&self) -> IntervalStatus {
        self.inner.status
    }

    /// Position of this interval within its process's history at creation.
    pub fn seq(&self) -> usize {
        self.inner.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_display() {
        assert_eq!(Checkpoint(9).to_string(), "ps@9");
    }

    #[test]
    fn interval_fields_construct() {
        let i = Interval {
            id: IntervalId(0),
            pid: ProcessId(0),
            ps: Checkpoint(0),
            ido: DepSet::new(),
            ihd: DepSet::new(),
            iha: DepSet::new(),
            guessed: DepSet::new(),
            status: IntervalStatus::Speculative,
            seq: 0,
        };
        assert_eq!(i.status, IntervalStatus::Speculative);
        assert_eq!(i.seq, 0);
    }
}
