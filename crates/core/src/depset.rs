//! `DepSet`: the dependence-set representation behind `IDO`, `IHD`, `IHA`,
//! `DOM` and message [`Tag`](crate::Tag)s.
//!
//! Every control variable of Definitions 4.2–4.4 is a set of dense ids
//! ([`AidId`] or [`IntervalId`]), and the engine's hot paths (Equations
//! 1–24) copy, union and walk those sets constantly: a nested guess inherits
//! its parent's `IDO` (Eq. 4–5), a send snapshots the sender's `IDO` into a
//! tag (§3), a speculative affirm rewires whole `DOM` sets (Eq. 10–14).
//! `BTreeSet` makes each of those an O(n log n) node-by-node clone.
//!
//! `DepSet` is a hybrid:
//!
//! * sets of **≤ 32 elements** (the overwhelming case in the E1–E14
//!   workloads) live in a sorted inline array — no allocation at all;
//! * larger sets spill to a dense **`u64`-word bitset** behind an
//!   [`Arc`] with copy-on-write semantics: cloning is an O(1) refcount
//!   bump, and the words are only duplicated when a *shared* set is
//!   mutated. Union, subset and iteration over spilled sets are
//!   word-parallel.
//!
//! Iteration is always in **ascending id order** — exactly `BTreeSet`'s
//! order — so every effect cascade the engine emits is bit-identical to the
//! original representation. Under `cfg(test)` (or the `shadow-oracle` cargo
//! feature) every `DepSet` additionally carries a real `BTreeSet` shadow
//! and asserts agreement after each mutation: the differential oracle the
//! semantics suites run against.

use std::cell::Cell;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[cfg(any(test, feature = "shadow-oracle"))]
use std::collections::BTreeSet;

use crate::ids::{AidId, IntervalId};

/// Maximum cardinality stored inline before spilling to the bitset.
///
/// 32 covers the IDO/DOM/tag sets the nested-guess hot path hammers
/// hardest (see bench E15): inserts into inline sets are a bounds-checked
/// array append and clones are a memcpy — no allocation and no refcount
/// traffic until a set genuinely grows large.
const INLINE_CAP: usize = 32;

thread_local! {
    /// Per-thread count of copy-on-write duplications (see [`cow_copies`]).
    static COW_COPIES: Cell<u64> = const { Cell::new(0) };
    /// Per-thread count of inline→bitset spills (see [`spills`]).
    static SPILLS: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide running total behind [`cow_copies_total`].
static COW_COPIES_TOTAL: AtomicU64 = AtomicU64::new(0);
/// Process-wide running total behind [`spills_total`].
static SPILLS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Number of **copy-on-write duplications** performed by this thread since
/// it started: the word vector of a *shared* spilled set had to be copied
/// because one owner mutated it. O(1) refcount bumps and in-place edits of
/// unshared sets are not counted. The counter is thread-local so tests can
/// assert exact costs (e.g. "one `guess` materializes the inherited `IDO`
/// at most once") without cross-test interference.
pub fn cow_copies() -> u64 {
    COW_COPIES.with(|c| c.get())
}

/// Number of **inline→bitset spills** performed by this thread: a set
/// crossed the inline capacity (32 elements) and upgraded its representation.
/// Each individual set spills at most once in its lifetime, so spills are
/// amortized O(1) per insertion.
pub fn spills() -> u64 {
    SPILLS.with(|c| c.get())
}

/// Total **set materializations** by this thread: [`cow_copies`] plus
/// [`spills`] — every event that copied set contents rather than sharing
/// or editing them in place.
pub fn materializations() -> u64 {
    cow_copies() + spills()
}

/// Process-wide total of copy-on-write duplications across **all**
/// threads, monotone since process start. The multi-threaded runtime runs
/// engine transitions on per-process body threads, so per-run memory
/// accounting ([`RunStats::stats().memory`] in `hope-runtime`) samples this
/// aggregate; single-threaded tests wanting exact deltas should keep using
/// the thread-local [`cow_copies`].
pub fn cow_copies_total() -> u64 {
    COW_COPIES_TOTAL.load(Ordering::Relaxed)
}

/// Process-wide total of inline→bitset spills across all threads; the
/// aggregate sibling of the thread-local [`spills`].
pub fn spills_total() -> u64 {
    SPILLS_TOTAL.load(Ordering::Relaxed)
}

fn note_cow_copy() {
    COW_COPIES.with(|c| c.set(c.get() + 1));
    COW_COPIES_TOTAL.fetch_add(1, Ordering::Relaxed);
}

fn note_spill() {
    SPILLS.with(|c| c.set(c.get() + 1));
    SPILLS_TOTAL.fetch_add(1, Ordering::Relaxed);
}

mod sealed {
    /// Prevents foreign `DepElem` impls: the raw-index contract is an
    /// engine-internal invariant.
    pub trait Sealed {}
}

/// An element storable in a [`DepSet`]: one of the engine's dense id types.
///
/// The trait is sealed; it is implemented exactly for [`AidId`] and
/// [`IntervalId`], whose raw values are dense indexes assigned from zero —
/// the property the bitset representation relies on.
pub trait DepElem: Copy + Ord + fmt::Debug + sealed::Sealed {
    /// The element's dense raw index.
    fn to_raw(self) -> u64;
    /// Rebuild the element from a raw index previously obtained via
    /// [`DepElem::to_raw`].
    fn from_raw(raw: u64) -> Self;
}

impl sealed::Sealed for AidId {}
impl DepElem for AidId {
    fn to_raw(self) -> u64 {
        self.0
    }
    fn from_raw(raw: u64) -> Self {
        AidId(raw)
    }
}

impl sealed::Sealed for IntervalId {}
impl DepElem for IntervalId {
    fn to_raw(self) -> u64 {
        self.0
    }
    fn from_raw(raw: u64) -> Self {
        IntervalId(raw)
    }
}

/// The spilled representation: a dense bitset plus a cached cardinality.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Bits {
    words: Vec<u64>,
    len: usize,
}

impl Bits {
    fn contains(&self, v: u64) -> bool {
        let w = (v / 64) as usize;
        self.words
            .get(w)
            .is_some_and(|&word| word >> (v % 64) & 1 == 1)
    }

    fn insert(&mut self, v: u64) -> bool {
        let w = (v / 64) as usize;
        if self.words.len() <= w {
            self.words.resize(w + 1, 0);
        }
        let mask = 1u64 << (v % 64);
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    fn remove(&mut self, v: u64) -> bool {
        let w = (v / 64) as usize;
        let mask = 1u64 << (v % 64);
        match self.words.get_mut(w) {
            Some(word) if *word & mask != 0 => {
                *word &= !mask;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// `true` if every bit of `other` is set in `self`.
    fn superset_of(&self, other: &Bits) -> bool {
        other
            .words
            .iter()
            .enumerate()
            .all(|(i, &w)| w & !self.words.get(i).copied().unwrap_or(0) == 0)
    }
}

#[derive(Clone)]
// The size gap to `Bits(Arc)` is the point: the inline variant is the
// overwhelmingly common one, and boxing it would reintroduce exactly the
// per-set allocation the representation exists to avoid.
#[allow(clippy::large_enum_variant)]
enum Repr {
    /// Sorted ascending; only `vals[..len]` is meaningful.
    Inline { len: u8, vals: [u64; INLINE_CAP] },
    /// Copy-on-write spilled bitset.
    Bits(Arc<Bits>),
}

/// A set of dense engine ids with inline small-set storage and O(1)
/// copy-on-write sharing of large sets. See the [module docs](self).
///
/// The API mirrors the `BTreeSet` surface the engine uses (`contains` takes
/// `&T`, iteration is ascending) so view types remain source-compatible;
/// [`DepSet::iter`] yields elements **by value** since spilled sets store
/// bits, not elements.
pub struct DepSet<T: DepElem> {
    repr: Repr,
    _marker: PhantomData<T>,
    /// The `BTreeSet` differential oracle (tests / `shadow-oracle` only):
    /// every mutation is mirrored here and agreement asserted.
    #[cfg(any(test, feature = "shadow-oracle"))]
    shadow: BTreeSet<u64>,
}

impl<T: DepElem> DepSet<T> {
    /// The empty set.
    pub fn new() -> Self {
        DepSet {
            repr: Repr::Inline {
                len: 0,
                vals: [0; INLINE_CAP],
            },
            _marker: PhantomData,
            #[cfg(any(test, feature = "shadow-oracle"))]
            shadow: BTreeSet::new(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Bits(b) => b.len,
        }
    }

    /// `true` if the set has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if `value` is a member.
    pub fn contains(&self, value: &T) -> bool {
        let v = value.to_raw();
        match &self.repr {
            Repr::Inline { len, vals } => vals[..*len as usize].binary_search(&v).is_ok(),
            Repr::Bits(b) => b.contains(v),
        }
    }

    /// Insert `value`; returns `true` if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        #[cfg(any(test, feature = "shadow-oracle"))]
        let shadow_changed = self.shadow.insert(value.to_raw());
        let changed = self.insert_raw(value.to_raw());
        #[cfg(any(test, feature = "shadow-oracle"))]
        {
            assert_eq!(changed, shadow_changed, "shadow oracle: insert disagreed");
            self.check_shadow();
        }
        changed
    }

    /// Remove `value`; returns `true` if it was present.
    pub fn remove(&mut self, value: &T) -> bool {
        #[cfg(any(test, feature = "shadow-oracle"))]
        let shadow_changed = self.shadow.remove(&value.to_raw());
        let changed = self.remove_raw(value.to_raw());
        #[cfg(any(test, feature = "shadow-oracle"))]
        {
            assert_eq!(changed, shadow_changed, "shadow oracle: remove disagreed");
            self.check_shadow();
        }
        changed
    }

    /// Add every element of `other` to `self` (set union, in place).
    ///
    /// Word-parallel when both sets are spilled; adopts `other`'s storage
    /// by refcount bump when `self` is small and `other` is spilled; a
    /// no-op (and no materialization) when `other ⊆ self`.
    pub fn union_with(&mut self, other: &DepSet<T>) {
        #[cfg(any(test, feature = "shadow-oracle"))]
        self.shadow.extend(other.shadow.iter().copied());
        self.union_raw(other);
        #[cfg(any(test, feature = "shadow-oracle"))]
        self.check_shadow();
    }

    /// `true` if every element of `self` is in `other`.
    pub fn is_subset(&self, other: &DepSet<T>) -> bool {
        if self.len() > other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Bits(a), Repr::Bits(b)) => Arc::ptr_eq(a, b) || b.superset_of(a),
            _ => self.iter_raw().all(|v| match &other.repr {
                Repr::Inline { len, vals } => vals[..*len as usize].binary_search(&v).is_ok(),
                Repr::Bits(b) => b.contains(v),
            }),
        }
    }

    /// Iterate over the elements in ascending id order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            inner: match &self.repr {
                Repr::Inline { len, vals } => IterRepr::Inline(vals[..*len as usize].iter()),
                Repr::Bits(b) => IterRepr::Bits {
                    words: &b.words,
                    word_idx: 0,
                    current: b.words.first().copied().unwrap_or(0),
                },
            },
            _marker: PhantomData,
        }
    }

    fn iter_raw(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(DepElem::to_raw)
    }

    fn insert_raw(&mut self, v: u64) -> bool {
        match &mut self.repr {
            Repr::Inline { len, vals } => {
                let n = *len as usize;
                // Fast path: engine ids are allocated in increasing order,
                // so the common insert appends a new maximum.
                if n < INLINE_CAP && (n == 0 || vals[n - 1] < v) {
                    vals[n] = v;
                    *len += 1;
                    return true;
                }
                match vals[..n].binary_search(&v) {
                    Ok(_) => false,
                    Err(pos) if n < INLINE_CAP => {
                        vals.copy_within(pos..n, pos + 1);
                        vals[pos] = v;
                        *len += 1;
                        true
                    }
                    Err(_) => {
                        // Spill: one materialization.
                        let mut bits = Bits::default();
                        for &w in vals.iter() {
                            bits.insert(w);
                        }
                        bits.insert(v);
                        note_spill();
                        self.repr = Repr::Bits(Arc::new(bits));
                        true
                    }
                }
            }
            Repr::Bits(arc) => {
                let w = (v / 64) as usize;
                let mask = 1u64 << (v % 64);
                if arc.words.get(w).is_some_and(|&word| word & mask != 0) {
                    return false;
                }
                let bits = make_mut(arc);
                if bits.words.len() <= w {
                    bits.words.resize(w + 1, 0);
                }
                bits.words[w] |= mask;
                bits.len += 1;
                true
            }
        }
    }

    fn remove_raw(&mut self, v: u64) -> bool {
        match &mut self.repr {
            Repr::Inline { len, vals } => {
                let n = *len as usize;
                match vals[..n].binary_search(&v) {
                    Ok(pos) => {
                        vals.copy_within(pos + 1..n, pos);
                        *len -= 1;
                        true
                    }
                    Err(_) => false,
                }
            }
            Repr::Bits(arc) => {
                if !arc.contains(v) {
                    return false;
                }
                make_mut(arc).remove(v)
            }
        }
    }

    fn union_raw(&mut self, other: &DepSet<T>) {
        match &other.repr {
            Repr::Inline { len, vals } => {
                let n = *len as usize;
                let theirs: [u64; INLINE_CAP] = *vals;
                for &v in &theirs[..n] {
                    self.insert_raw(v);
                }
            }
            Repr::Bits(ob) => match &mut self.repr {
                Repr::Inline { len, vals } => {
                    // Adopt the big side's storage and add our few
                    // elements: at most one copy-on-write duplication.
                    let n = *len as usize;
                    let ours: [u64; INLINE_CAP] = *vals;
                    let mut arc = ob.clone();
                    for &v in &ours[..n] {
                        if !arc.contains(v) {
                            make_mut(&mut arc).insert(v);
                        }
                    }
                    self.repr = Repr::Bits(arc);
                }
                Repr::Bits(sb) => {
                    if Arc::ptr_eq(sb, ob) || sb.superset_of(ob) {
                        return; // nothing to add, nothing to materialize
                    }
                    let m = make_mut(sb);
                    if m.words.len() < ob.words.len() {
                        m.words.resize(ob.words.len(), 0);
                    }
                    let mut total = 0usize;
                    for (i, w) in m.words.iter_mut().enumerate() {
                        *w |= ob.words.get(i).copied().unwrap_or(0);
                        total += w.count_ones() as usize;
                    }
                    m.len = total;
                }
            },
        }
    }

    #[cfg(any(test, feature = "shadow-oracle"))]
    fn check_shadow(&self) {
        assert!(
            self.iter_raw().eq(self.shadow.iter().copied()),
            "DepSet diverged from its BTreeSet shadow oracle: {:?} vs {:?}",
            self.iter_raw().collect::<Vec<_>>(),
            self.shadow
        );
        assert_eq!(
            self.len(),
            self.shadow.len(),
            "shadow oracle: len disagreed"
        );
    }
}

/// Duplicate the bitset if (and only if) it is shared, counting the copy.
fn make_mut(arc: &mut Arc<Bits>) -> &mut Bits {
    // A relaxed count load, not `Arc::get_mut`: this sits on the engine's
    // hottest path (every DOM registration and IDO removal lands here) and
    // `get_mut`'s uniqueness probe is an atomic RMW we'd pay *in addition*
    // to the one inside `make_mut`. `DepSet` never hands out `Weak` refs,
    // so `strong_count == 1` is exactly the case `Arc::make_mut` resolves
    // in place; anything else is the copy we count.
    if Arc::strong_count(arc) != 1 {
        note_cow_copy();
    }
    Arc::make_mut(arc)
}

impl<T: DepElem> Default for DepSet<T> {
    fn default() -> Self {
        DepSet::new()
    }
}

impl<T: DepElem> Clone for DepSet<T> {
    fn clone(&self) -> Self {
        DepSet {
            // Cloning a spilled set is an O(1) refcount bump.
            repr: self.repr.clone(),
            _marker: PhantomData,
            #[cfg(any(test, feature = "shadow-oracle"))]
            shadow: self.shadow.clone(),
        }
    }
}

impl<T: DepElem> PartialEq for DepSet<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter_raw().eq(other.iter_raw())
    }
}

impl<T: DepElem> Eq for DepSet<T> {}

impl<T: DepElem> PartialOrd for DepSet<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: DepElem> Ord for DepSet<T> {
    /// Lexicographic over ascending elements — the same order `BTreeSet`
    /// defines.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.iter_raw().cmp(other.iter_raw())
    }
}

impl<T: DepElem> Hash for DepSet<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(self.len());
        for v in self.iter_raw() {
            v.hash(state);
        }
    }
}

impl<T: DepElem> fmt::Debug for DepSet<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl<T: DepElem> FromIterator<T> for DepSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut s = DepSet::new();
        s.extend(iter);
        s
    }
}

impl<T: DepElem> Extend<T> for DepSet<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl<'a, T: DepElem> IntoIterator for &'a DepSet<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;
    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

enum IterRepr<'a> {
    Inline(std::slice::Iter<'a, u64>),
    Bits {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
}

/// Ascending iterator over a [`DepSet`], yielding elements by value.
pub struct Iter<'a, T: DepElem> {
    inner: IterRepr<'a>,
    _marker: PhantomData<T>,
}

impl<T: DepElem> fmt::Debug for Iter<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("depset::Iter")
    }
}

impl<T: DepElem> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            IterRepr::Inline(it) => it.next().map(|&v| T::from_raw(v)),
            IterRepr::Bits {
                words,
                word_idx,
                current,
            } => {
                while *current == 0 {
                    *word_idx += 1;
                    *current = *words.get(*word_idx)?;
                }
                let tz = current.trailing_zeros() as u64;
                *current &= *current - 1;
                Some(T::from_raw(*word_idx as u64 * 64 + tz))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn aid(v: u64) -> AidId {
        AidId(v)
    }

    /// SplitMix64 — deterministic, dependency-free.
    fn rng(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    #[test]
    fn empty_set() {
        let s: DepSet<AidId> = DepSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(&aid(0)));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn inline_insert_remove_sorted() {
        let mut s: DepSet<AidId> = DepSet::new();
        for v in [5u64, 1, 3, 7, 3] {
            s.insert(aid(v));
        }
        assert_eq!(s.len(), 4);
        let got: Vec<u64> = s.iter().map(|x| x.index()).collect();
        assert_eq!(got, vec![1, 3, 5, 7], "ascending like BTreeSet");
        assert!(s.remove(&aid(3)));
        assert!(!s.remove(&aid(3)));
        assert_eq!(s.len(), 3);
        assert!(!s.contains(&aid(3)));
    }

    #[test]
    fn spills_past_inline_capacity_and_stays_ordered() {
        let n = INLINE_CAP as u64 + 1;
        let mut s: DepSet<AidId> = DepSet::new();
        for v in (0..n).rev() {
            s.insert(aid(v * 10));
        }
        assert_eq!(s.len(), n as usize);
        let got: Vec<u64> = s.iter().map(|x| x.index()).collect();
        assert_eq!(got, (0..n).map(|v| v * 10).collect::<Vec<_>>());
        assert!(matches!(s.repr, Repr::Bits(_)), "crossed the cap: spilled");
        assert!(s.contains(&aid((n - 1) * 10)));
        assert!(!s.contains(&aid((n - 1) * 10 + 1)));
    }

    #[test]
    fn clone_of_spilled_set_is_shared_until_mutated() {
        let mut a: DepSet<AidId> = (0..INLINE_CAP as u64 + 4).map(aid).collect();
        let before = materializations();
        let b = a.clone();
        assert_eq!(materializations(), before, "clone is a refcount bump");
        a.insert(aid(99));
        assert_eq!(
            materializations(),
            before + 1,
            "first mutation of a shared set copies once"
        );
        assert!(a.contains(&aid(99)));
        assert!(!b.contains(&aid(99)), "COW: the clone is unaffected");
        assert_eq!(b.len(), INLINE_CAP + 4);
    }

    #[test]
    fn union_adopts_big_side_storage() {
        let big: DepSet<AidId> = (0..40).map(aid).collect();
        let mut small: DepSet<AidId> = [aid(100), aid(3)].into_iter().collect();
        small.union_with(&big);
        assert_eq!(small.len(), 41);
        assert!(small.contains(&aid(100)));
        assert!(small.contains(&aid(39)));
    }

    #[test]
    fn union_of_subset_does_not_materialize() {
        let big: DepSet<AidId> = (0..40).map(aid).collect();
        let mut a = big.clone();
        let sub: DepSet<AidId> = (5..15).map(aid).collect();
        let before = materializations();
        a.union_with(&sub);
        assert_eq!(materializations(), before, "other ⊆ self is a no-op");
        assert_eq!(a.len(), 40);
    }

    #[test]
    fn subset_reflexive_and_word_parallel() {
        let a: DepSet<AidId> = (0..100).map(aid).collect();
        let b: DepSet<AidId> = (10..20).map(aid).collect();
        let c: DepSet<AidId> = [aid(5), aid(200)].into_iter().collect();
        assert!(a.is_subset(&a));
        assert!(b.is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(!c.is_subset(&a));
        let empty: DepSet<AidId> = DepSet::new();
        assert!(empty.is_subset(&a));
        assert!(empty.is_subset(&empty));
    }

    #[test]
    fn eq_ord_hash_match_btreeset_semantics() {
        use std::collections::hash_map::DefaultHasher;
        let a: DepSet<AidId> = [aid(2), aid(9), aid(70)].into_iter().collect();
        let b: DepSet<AidId> = [aid(70), aid(2), aid(9)].into_iter().collect();
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
        let c: DepSet<AidId> = [aid(2), aid(9)].into_iter().collect();
        assert_ne!(a, c);
        assert!(c < a, "lexicographic like BTreeSet");
    }

    #[test]
    fn interval_ids_work_too() {
        let mut s: DepSet<IntervalId> = DepSet::new();
        s.insert(IntervalId(7));
        s.insert(IntervalId(300));
        assert!(s.contains(&IntervalId(300)));
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn randomized_parity_with_btreeset() {
        // 4 interleaved op streams over a domain big enough to force
        // spills, each mirrored into a BTreeSet and compared exhaustively.
        let mut state = 0xD1F7_u64;
        for round in 0..4 {
            let mut s: DepSet<AidId> = DepSet::new();
            let mut model: BTreeSet<u64> = BTreeSet::new();
            let mut other: DepSet<AidId> = DepSet::new();
            let mut other_model: BTreeSet<u64> = BTreeSet::new();
            for _ in 0..400 {
                let v = rng(&mut state) % 200;
                match rng(&mut state) % 5 {
                    0 | 1 => {
                        assert_eq!(s.insert(aid(v)), model.insert(v), "round {round}");
                    }
                    2 => {
                        assert_eq!(s.remove(&aid(v)), model.remove(&v));
                    }
                    3 => {
                        other.insert(aid(v));
                        other_model.insert(v);
                    }
                    _ => {
                        s.union_with(&other);
                        model.extend(other_model.iter().copied());
                    }
                }
                assert_eq!(s.len(), model.len());
                assert!(s.iter().map(|x| x.index()).eq(model.iter().copied()));
                assert_eq!(
                    s.is_subset(&other),
                    model.is_subset(&other_model),
                    "round {round}"
                );
            }
        }
    }
}
