//! Per-process sharding of the engine stores, and the batched phase executor.
//!
//! The engine's records are partitioned by **owner process**: each
//! [`EngineShard`] holds the AID records, interval records and interval
//! histories of the processes it hosts. The coordinator ([`Engine`]) keeps a
//! directory mapping every id to its owning shard, so the sequential
//! transitions of §5 run unchanged over the partitioned stores — a one-shard
//! engine and an N-shard engine execute the *same statements in the same
//! order* and are bit-identical in every observable.
//!
//! On top of the partitioned stores, [`Engine::run_phase`] executes per-shard
//! op scripts on scoped worker threads. During a phase no assumption changes
//! state (decisions are deferred), so each worker runs `aid_init` and the
//! shard-local part of `guess` against its own shard without taking any other
//! shard's data — cross-shard dependency registration (a DOM edge whose AID
//! lives on another shard) and every deferred primitive are batched into
//! per-shard-pair FIFO queues and drained at the quiescent point that ends
//! the phase. That is the paper's §7 promise made concrete: tracking traffic
//! never blocks the optimistic computation inline.
//!
//! [`Engine`]: crate::Engine
//! [`Engine::run_phase`]: crate::Engine::run_phase

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::aid::{Aid, AidState};
use crate::depset::DepSet;
use crate::effect::Effect;
use crate::ids::{AidId, IntervalId, ProcessId};
use crate::interval::{Checkpoint, Interval, IntervalStatus};

/// Shard index marking a directory hole (an interval lease slot that was
/// never filled because the guess answered `AlreadyFalse`).
pub(crate) const NO_SHARD: u32 = u32::MAX;

/// Directory entry: which shard owns a record, and the record's absolute
/// per-shard ordinal (its live index is `ord - collected`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Loc {
    pub(crate) shard: u32,
    pub(crate) ord: u64,
}

impl Loc {
    pub(crate) const SENTINEL: Loc = Loc {
        shard: NO_SHARD,
        ord: 0,
    };
}

/// Per-process interval bookkeeping (the paper's per-process history).
#[derive(Debug, Clone)]
pub(crate) struct Proc {
    /// Live intervals, chronological. Rollback truncates a suffix; fossil
    /// collection truncates a definite prefix.
    pub(crate) history: Vec<IntervalId>,
    /// Total intervals ever discarded from this process (for stats/tests).
    pub(crate) discarded: u64,
    /// Definite intervals reclaimed from the front of `history` by fossil
    /// collection. Added to `history.len()` wherever a position in the
    /// *full* live history is needed (interval `seq` numbers), so a
    /// collecting engine assigns exactly the values an uncollected twin
    /// would.
    pub(crate) collected: u64,
}

/// One shard of the engine: the records of the processes it hosts.
///
/// `aids` and `intervals` are always sorted by id — sequential transitions
/// append in global id order, and phase leases hand each shard a contiguous
/// ascending block above every pre-phase id — so a worker thread holding
/// `&mut EngineShard` can address its own records by binary search without
/// the coordinator's directory.
#[derive(Debug, Clone, Default)]
pub(crate) struct EngineShard {
    pub(crate) aids: Vec<Aid>,
    /// AID records reclaimed from the front of `aids` by fossil collection.
    pub(crate) aid_collected: u64,
    pub(crate) intervals: Vec<Interval>,
    /// Interval records reclaimed from the front of `intervals`.
    pub(crate) itv_collected: u64,
    pub(crate) procs: BTreeMap<ProcessId, Proc>,
}

impl EngineShard {
    pub(crate) fn new() -> Self {
        EngineShard {
            aids: Vec::new(),
            aid_collected: 0,
            intervals: Vec::new(),
            itv_collected: 0,
            procs: BTreeMap::new(),
        }
    }

    /// Shard-local AID lookup by id (worker-side addressing).
    pub(crate) fn aid_local(&self, x: AidId) -> Option<&Aid> {
        self.aids
            .binary_search_by_key(&x, |a| a.id)
            .ok()
            .map(|i| &self.aids[i])
    }

    pub(crate) fn aid_local_mut(&mut self, x: AidId) -> Option<&mut Aid> {
        self.aids
            .binary_search_by_key(&x, |a| a.id)
            .ok()
            .map(move |i| &mut self.aids[i])
    }

    /// Shard-local interval lookup by id (worker-side addressing).
    pub(crate) fn itv_local(&self, a: IntervalId) -> Option<&Interval> {
        self.intervals
            .binary_search_by_key(&a, |i| i.id)
            .ok()
            .map(|i| &self.intervals[i])
    }
}

/// Cross-shard tracking-traffic counters.
///
/// Under a multi-shard engine these record how often dependence bookkeeping
/// crossed an ownership boundary: in sequential (eager) mode each boundary
/// touch counts as one message that a distributed engine would have sent; in
/// phase mode ([`Engine::run_phase`](crate::Engine::run_phase)) they count
/// the actual batched queue traffic. A single-shard engine leaves every
/// counter at zero.
///
/// Like the DepSet cow/spill deltas, these are *excluded* from the runtime's
/// determinism fingerprint: the same program on a 1-shard and a 4-shard
/// engine commits identical outputs but necessarily differs in boundary
/// crossings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct TrackingStats {
    /// Dependence-tracking updates that crossed a shard-ownership boundary
    /// (DOM registrations, finalize/rollback cascade touches).
    pub cross_shard_messages: u64,
    /// Queue drains performed at phase quiescent points (one per non-empty
    /// shard-pair queue).
    pub batch_flushes: u64,
    /// Largest batch any single cross-shard queue accumulated before a
    /// drain.
    pub max_queue_depth: u64,
    /// Phases executed by [`Engine::run_phase`](crate::Engine::run_phase).
    pub phases: u64,
    /// Ops a phase worker could not prove shard-local and deferred to the
    /// quiescent drain (all decisions defer; a guess defers only when it
    /// involves a speculatively-affirmed assumption or follows a deferred
    /// op of the same process).
    pub deferred_ops: u64,
}

/// Reference to an AID from inside a phase script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpAid {
    /// The `k`-th AID created by **this shard's script** in this phase
    /// (0-based, counting its `AidInit` ops in order).
    New(usize),
    /// An AID that existed before the phase started. Phase scripts may name
    /// any pre-phase AID, owned by any shard; same-phase AIDs of *other*
    /// shards are not addressable (batch boundaries are phase boundaries).
    Id(AidId),
}

/// One operation of a per-shard phase script.
///
/// Every op names the process executing it; the process must be hosted by
/// the shard the script is submitted for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardOp {
    /// `aid_init`: create a fresh AID owned by `pid`'s shard.
    AidInit {
        /// Creating process.
        pid: ProcessId,
    },
    /// `guess` on one or more AIDs with checkpoint `ps`.
    Guess {
        /// Guessing process.
        pid: ProcessId,
        /// The named assumptions.
        aids: Vec<OpAid>,
        /// Checkpoint token recorded in the new interval.
        ps: Checkpoint,
    },
    /// `affirm` (always deferred to the quiescent drain).
    Affirm {
        /// Affirming process.
        pid: ProcessId,
        /// The assumption.
        aid: OpAid,
    },
    /// `deny` (always deferred to the quiescent drain).
    Deny {
        /// Denying process.
        pid: ProcessId,
        /// The assumption.
        aid: OpAid,
    },
    /// `free_of` (always deferred to the quiescent drain).
    FreeOf {
        /// Asserting process.
        pid: ProcessId,
        /// The assumption.
        aid: OpAid,
    },
}

impl ShardOp {
    /// The process executing this op.
    pub fn pid(&self) -> ProcessId {
        match *self {
            ShardOp::AidInit { pid }
            | ShardOp::Guess { pid, .. }
            | ShardOp::Affirm { pid, .. }
            | ShardOp::Deny { pid, .. }
            | ShardOp::FreeOf { pid, .. } => pid,
        }
    }
}

/// The order in which destination shards drain their inbound queues at a
/// phase's quiescent point.
///
/// The default ([`DrainOrder::identity`]) drains destinations `0, 1, …` in
/// order; any permutation is legal, and for single-decider workloads the
/// committed outcome is invariant under the choice (the commit-equivalence
/// `hope-mc` machine-checks) — property-tested in
/// `tests/sharded_differential.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainOrder {
    dsts: Vec<usize>,
}

impl DrainOrder {
    /// The identity order over `n` shards: destination 0 first.
    pub fn identity(n: usize) -> Self {
        DrainOrder {
            dsts: (0..n).collect(),
        }
    }

    /// A custom destination permutation. Returns `None` if `dsts` is not a
    /// permutation of `0..dsts.len()`.
    pub fn from_permutation(dsts: Vec<usize>) -> Option<Self> {
        let mut seen = vec![false; dsts.len()];
        for &d in &dsts {
            if d >= dsts.len() || seen[d] {
                return None;
            }
            seen[d] = true;
        }
        Some(DrainOrder { dsts })
    }

    /// Number of shards this order covers.
    pub fn len(&self) -> usize {
        self.dsts.len()
    }

    /// `true` if the order covers zero shards.
    pub fn is_empty(&self) -> bool {
        self.dsts.is_empty()
    }

    pub(crate) fn dsts(&self) -> &[usize] {
        &self.dsts
    }
}

/// What one [`Engine::run_phase`](crate::Engine::run_phase) call did.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct PhaseReport {
    /// Effects produced, worker-inline effects first (grouped by shard
    /// index, each shard's in script order), then quiescent-drain effects
    /// in drain order.
    pub effects: Vec<Effect>,
    /// Ops executed across all scripts.
    pub ops: u64,
    /// Ops deferred to the quiescent drain.
    pub deferred_ops: u64,
    /// Cross-shard messages batched through the queues (excluding
    /// deferred ops, which stay on their own shard's queue).
    pub cross_shard_messages: u64,
    /// Non-empty shard-pair queues drained.
    pub batch_flushes: u64,
    /// Deepest queue at drain time.
    pub max_queue_depth: u64,
    /// Host nanoseconds each shard's script took inside its worker —
    /// indexed by shard. Timing only; never part of any fingerprint.
    pub busy_ns: Vec<u64>,
    /// Host nanoseconds the quiescent drain took.
    pub drain_ns: u64,
}

/// A shard-script op with every `OpAid` resolved, carried on a queue to the
/// quiescent drain and replayed through the full sequential engine there.
#[derive(Debug, Clone)]
pub(crate) enum ResolvedOp {
    Guess {
        pid: ProcessId,
        aids: Vec<AidId>,
        ps: Checkpoint,
    },
    Affirm {
        pid: ProcessId,
        aid: AidId,
    },
    Deny {
        pid: ProcessId,
        aid: AidId,
    },
    FreeOf {
        pid: ProcessId,
        aid: AidId,
    },
}

/// One message on a shard-pair queue.
#[derive(Debug, Clone)]
pub(crate) enum CrossShardMsg {
    /// Complete Lemma 5.1 symmetry for a worker-created interval whose IDO
    /// contains an AID owned by another shard: insert `interval` into
    /// `aid.DOM` (the interval's IDO already holds the AID).
    DomInsert { aid: AidId, interval: IntervalId },
    /// Replay a deferred op through the full engine at the drain.
    Deferred(ResolvedOp),
}

/// Pre-phase decision snapshot of one AID (indexed by `id - aid_base`).
/// Valid for the whole phase: no assumption changes state while workers
/// run, because every decision defers to the drain.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SnapAid {
    pub(crate) state: AidState,
    pub(crate) spec_affirmed: bool,
}

/// Read-only phase context shared by every worker.
pub(crate) struct WorkerCtx<'a> {
    /// This worker's shard index.
    pub(crate) shard_idx: usize,
    pub(crate) nshards: usize,
    pub(crate) aid_base: u64,
    /// Full AID directory — pre-phase entries plus the exact leases for
    /// every shard's phase-created AIDs (AID leases are exact: `AidInit`
    /// always allocates).
    pub(crate) aid_dir: &'a [Loc],
    /// Pre-phase AID decision states, indexed by `id - aid_base`.
    pub(crate) snapshot: &'a [SnapAid],
    /// First id *not* covered by the snapshot (pre-phase `next_aid`).
    pub(crate) snapshot_end: u64,
    /// Reclaimed-but-denied AIDs (ids below `aid_base` absent from this set
    /// were affirmed).
    pub(crate) fossil_denied: &'a BTreeSet<AidId>,
    /// First AID id of this shard's lease block.
    pub(crate) aid_lease_start: u64,
    /// First interval id of this shard's lease block.
    pub(crate) itv_lease_start: u64,
}

/// What one worker produced for one shard.
pub(crate) struct WorkerOut {
    /// AIDs created, in order (ids are `aid_lease_start + k`).
    pub(crate) created_aids: u64,
    /// Intervals created, in order (ids ascend from `itv_lease_start`).
    pub(crate) created_itvs: Vec<IntervalId>,
    /// Outbound messages, indexed by destination shard. Deferred ops ride
    /// the self-queue (`dst == shard_idx`).
    pub(crate) queues: Vec<Vec<CrossShardMsg>>,
    pub(crate) effects: Vec<Effect>,
    pub(crate) guesses: u64,
    pub(crate) failed_guesses: u64,
    pub(crate) finalized: u64,
    pub(crate) deferred: u64,
    pub(crate) busy_ns: u64,
}

/// How a named AID looks to a worker mid-phase.
enum AidLook {
    /// Undecided, not speculatively affirmed: guessing it adds dependence.
    Open,
    /// Definitively affirmed (live or fossil): contributes no dependence.
    Affirmed,
    /// Definitively denied (live or fossil): the guess is `AlreadyFalse`.
    Denied,
    /// Speculatively affirmed — resolving dependence needs the affirmer's
    /// interval, which may live anywhere: defer the op.
    SpecAffirmed,
}

/// Execute one shard's script against its own shard only.
///
/// Anything not provably shard-local defers to the quiescent drain: all
/// decisions, any guess touching a speculatively-affirmed AID, and every
/// later op of a process once one of its ops deferred (per-process program
/// order is preserved). The caller (the coordinator) pre-validates scripts,
/// so this function cannot fail.
pub(crate) fn run_shard_script(
    shard: &mut EngineShard,
    ctx: &WorkerCtx<'_>,
    script: &[ShardOp],
) -> WorkerOut {
    let t0 = std::time::Instant::now();
    let mut out = WorkerOut {
        created_aids: 0,
        created_itvs: Vec::new(),
        queues: (0..ctx.nshards).map(|_| Vec::new()).collect(),
        effects: Vec::new(),
        guesses: 0,
        failed_guesses: 0,
        finalized: 0,
        deferred: 0,
        busy_ns: 0,
    };
    // Processes with a deferred op: all their later ops defer too.
    let mut deferred_pids: BTreeSet<ProcessId> = BTreeSet::new();

    let look = |shard: &EngineShard, x: AidId| -> AidLook {
        if x.0 < ctx.aid_base {
            return if ctx.fossil_denied.contains(&x) {
                AidLook::Denied
            } else {
                AidLook::Affirmed
            };
        }
        let loc = ctx.aid_dir[(x.0 - ctx.aid_base) as usize];
        if loc.shard as usize == ctx.shard_idx {
            // Own record — live, whether pre-phase or phase-created.
            let a = shard.aid_local(x).expect("own AID is in shard storage");
            match a.state {
                AidState::Undecided if a.spec_affirmed_by.is_some() => AidLook::SpecAffirmed,
                AidState::Undecided => AidLook::Open,
                AidState::Affirmed => AidLook::Affirmed,
                AidState::Denied => AidLook::Denied,
            }
        } else {
            // Remote: pre-phase by validation, so the snapshot answers.
            debug_assert!(x.0 < ctx.snapshot_end, "remote AID created this phase");
            let s = ctx.snapshot[(x.0 - ctx.aid_base) as usize];
            match s.state {
                AidState::Undecided if s.spec_affirmed => AidLook::SpecAffirmed,
                AidState::Undecided => AidLook::Open,
                AidState::Affirmed => AidLook::Affirmed,
                AidState::Denied => AidLook::Denied,
            }
        }
    };

    for op in script {
        if let ShardOp::AidInit { pid } = *op {
            // Always shard-local: the id was leased before the phase, the
            // record lives here, and nothing else can observe it mid-phase.
            let id = AidId(ctx.aid_lease_start + out.created_aids);
            shard.aids.push(Aid::new(id, pid));
            out.created_aids += 1;
            continue;
        }
        let pid = op.pid();
        if deferred_pids.contains(&pid) {
            defer(&mut out, ctx, op, shard);
            continue;
        }
        match op {
            ShardOp::AidInit { .. } => unreachable!("handled above"),
            ShardOp::Guess { pid, aids, ps } => {
                let resolved: Vec<AidId> = aids.iter().map(|a| resolve(ctx, *a)).collect();
                // Mirror of `Engine::guess`, first pass: any definitively
                // denied AID fails the guess before dependence is built.
                if resolved
                    .iter()
                    .any(|&x| matches!(look(shard, x), AidLook::Denied))
                {
                    out.failed_guesses += 1;
                    continue;
                }
                // A speculatively affirmed AID dissolves into its
                // affirmer's IDO (Equations 10–14) — the affirmer's
                // interval may live on any shard, so the op defers.
                if resolved
                    .iter()
                    .any(|&x| matches!(look(shard, x), AidLook::SpecAffirmed))
                {
                    deferred_pids.insert(*pid);
                    defer(&mut out, ctx, op, shard);
                    continue;
                }
                let mut guessed: DepSet<AidId> = DepSet::new();
                for &x in &resolved {
                    if matches!(look(shard, x), AidLook::Open) {
                        guessed.insert(x);
                    }
                }
                // Inherit the parent's IDO (Eq. 4–5). The process's whole
                // history is on this shard.
                let proc = shard.procs.get(pid).expect("validated: pid on shard");
                let mut ido = match proc.history.last().copied() {
                    Some(a)
                        if shard
                            .itv_local(a)
                            .expect("history interval on shard")
                            .status
                            == IntervalStatus::Speculative =>
                    {
                        shard.itv_local(a).expect("just looked up").ido.clone()
                    }
                    _ => DepSet::new(),
                };
                ido.union_with(&guessed);

                let id = IntervalId(ctx.itv_lease_start + out.created_itvs.len() as u64);
                // DOM registration: local AIDs directly, remote AIDs via
                // the batched queue (the one inline step `guess` would
                // otherwise take another shard's lock for).
                for x in &ido {
                    let dst = ctx.aid_dir[(x.0 - ctx.aid_base) as usize].shard as usize;
                    if dst == ctx.shard_idx {
                        shard
                            .aid_local_mut(x)
                            .expect("local IDO member is live")
                            .dom
                            .insert(id);
                    } else {
                        out.queues[dst].push(CrossShardMsg::DomInsert {
                            aid: x,
                            interval: id,
                        });
                    }
                }
                let ido_empty = ido.is_empty();
                let proc = shard.procs.get_mut(pid).expect("validated above");
                let seq = proc.collected as usize + proc.history.len();
                proc.history.push(id);
                shard.intervals.push(Interval {
                    id,
                    pid: *pid,
                    ps: *ps,
                    ido,
                    ihd: DepSet::new(),
                    iha: DepSet::new(),
                    guessed,
                    status: IntervalStatus::Speculative,
                    seq,
                });
                out.created_itvs.push(id);
                out.effects.push(Effect::IntervalStarted {
                    interval: id,
                    process: *pid,
                });
                out.guesses += 1;
                if ido_empty {
                    // Definite from birth (every named AID already
                    // affirmed, process definite). The new interval has
                    // empty IHA/IHD, so the finalize cascade is exactly
                    // this status flip.
                    let itv = shard.intervals.last_mut().expect("just pushed");
                    itv.status = IntervalStatus::Definite;
                    out.finalized += 1;
                    out.effects.push(Effect::Finalized {
                        interval: id,
                        process: *pid,
                    });
                }
            }
            ShardOp::Affirm { pid, .. }
            | ShardOp::Deny { pid, .. }
            | ShardOp::FreeOf { pid, .. } => {
                // Decisions can cascade across arbitrary shards
                // (finalize walks DOM sets, deny rolls back histories):
                // always deferred to the quiescent drain, where the full
                // sequential engine replays them.
                deferred_pids.insert(*pid);
                defer(&mut out, ctx, op, shard);
            }
        }
    }
    out.busy_ns = t0.elapsed().as_nanos() as u64;
    out
}

fn resolve(ctx: &WorkerCtx<'_>, a: OpAid) -> AidId {
    match a {
        OpAid::New(k) => AidId(ctx.aid_lease_start + k as u64),
        OpAid::Id(x) => x,
    }
}

fn defer(out: &mut WorkerOut, ctx: &WorkerCtx<'_>, op: &ShardOp, _shard: &EngineShard) {
    let resolved = match op {
        ShardOp::AidInit { .. } => unreachable!("aid_init never defers"),
        ShardOp::Guess { pid, aids, ps } => ResolvedOp::Guess {
            pid: *pid,
            aids: aids.iter().map(|a| resolve(ctx, *a)).collect(),
            ps: *ps,
        },
        ShardOp::Affirm { pid, aid } => ResolvedOp::Affirm {
            pid: *pid,
            aid: resolve(ctx, *aid),
        },
        ShardOp::Deny { pid, aid } => ResolvedOp::Deny {
            pid: *pid,
            aid: resolve(ctx, *aid),
        },
        ShardOp::FreeOf { pid, aid } => ResolvedOp::FreeOf {
            pid: *pid,
            aid: resolve(ctx, *aid),
        },
    };
    out.deferred += 1;
    out.queues[ctx.shard_idx].push(CrossShardMsg::Deferred(resolved));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_order_validates_permutations() {
        assert!(DrainOrder::from_permutation(vec![2, 0, 1]).is_some());
        assert!(DrainOrder::from_permutation(vec![0, 0, 1]).is_none());
        assert!(DrainOrder::from_permutation(vec![0, 3]).is_none());
        let id = DrainOrder::identity(3);
        assert_eq!(id.dsts(), &[0, 1, 2]);
        assert_eq!(id.len(), 3);
        assert!(!id.is_empty());
        assert!(DrainOrder::identity(0).is_empty());
    }

    #[test]
    fn shard_op_pid_accessor() {
        let p = ProcessId(4);
        assert_eq!(ShardOp::AidInit { pid: p }.pid(), p);
        assert_eq!(
            ShardOp::Deny {
                pid: p,
                aid: OpAid::New(0)
            }
            .pid(),
            p
        );
    }

    #[test]
    fn loc_sentinel_is_distinct() {
        assert_eq!(Loc::SENTINEL.shard, NO_SHARD);
        assert_ne!(Loc::SENTINEL, Loc { shard: 0, ord: 0 });
    }
}
