//! Differential oracle for the `DepSet` representation swap.
//!
//! A reference engine (`RefEngine`) transcribes the engine's algorithm on
//! plain `BTreeSet`s — the pre-`DepSet` representation, including its
//! iteration orders — and random primitive sequences are driven against
//! both engines in lockstep. Every operation must produce identical
//! results and effect streams, and the final control-variable state
//! (histories, statuses, `IDO`/`IHD`/`IHA`/`guessed`, `DOM`, tags) must be
//! identical. Any divergence introduced by the hybrid inline/bitset
//! representation — ordering, COW aliasing, spill boundaries — fails here.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use hope_core::{
    AidId, AidState, Checkpoint, Effect, Engine, GuessOutcome, IntervalId, IntervalStatus,
    ProcessId, ReceiveOutcome, Tag,
};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Reference engine: the original BTreeSet-based algorithm.
// ---------------------------------------------------------------------

#[derive(Clone)]
struct RefAid {
    state: AidState,
    dom: BTreeSet<IntervalId>,
    consumed: bool,
    spec_affirmed_by: Option<IntervalId>,
    spec_denied_by: Option<IntervalId>,
}

#[derive(Clone)]
struct RefInterval {
    pid: ProcessId,
    ps: Checkpoint,
    ido: BTreeSet<AidId>,
    ihd: BTreeSet<AidId>,
    iha: BTreeSet<AidId>,
    guessed: BTreeSet<AidId>,
    status: IntervalStatus,
}

enum Task {
    Finalize(IntervalId),
    Rollback(IntervalId),
}

/// Operation results, shape-compatible with the real engine's.
type RefResult<T> = Result<T, String>;

#[derive(Default)]
struct RefEngine {
    aids: Vec<RefAid>,
    intervals: Vec<RefInterval>,
    procs: BTreeMap<ProcessId, Vec<IntervalId>>,
    next_pid: u32,
}

impl RefEngine {
    fn register_process(&mut self) -> ProcessId {
        let pid = ProcessId(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(pid, Vec::new());
        pid
    }

    fn aid_init(&mut self) -> AidId {
        let id = AidId::from_index(self.aids.len() as u64);
        self.aids.push(RefAid {
            state: AidState::Undecided,
            dom: BTreeSet::new(),
            consumed: false,
            spec_affirmed_by: None,
            spec_denied_by: None,
        });
        id
    }

    fn aid_mut(&mut self, x: AidId) -> &mut RefAid {
        &mut self.aids[x.index() as usize]
    }

    fn current_interval(&self, pid: ProcessId) -> Option<IntervalId> {
        self.procs[&pid]
            .last()
            .copied()
            .filter(|a| self.intervals[a.index() as usize].status == IntervalStatus::Speculative)
    }

    fn dependence_tag(&self, pid: ProcessId) -> BTreeSet<AidId> {
        match self.current_interval(pid) {
            Some(a) => self.intervals[a.index() as usize].ido.clone(),
            None => BTreeSet::new(),
        }
    }

    fn guess(
        &mut self,
        pid: ProcessId,
        aids: &[AidId],
        ps: Checkpoint,
    ) -> RefResult<(Option<IntervalId>, Vec<Effect>)> {
        if aids.is_empty() {
            return Err("EmptyGuess".into());
        }
        if let Some(&denied) = aids
            .iter()
            .find(|&&x| self.aids[x.index() as usize].state == AidState::Denied)
        {
            let _ = denied;
            return Ok((None, Vec::new()));
        }
        // The original hot path: clone the parent IDO (clone #1), resolve
        // the guessed set, store a second clone in the interval (clone #2).
        let parent_ido: BTreeSet<AidId> = match self.current_interval(pid) {
            Some(a) => self.intervals[a.index() as usize].ido.clone(),
            None => BTreeSet::new(),
        };
        let mut guessed: BTreeSet<AidId> = BTreeSet::new();
        for &x in aids {
            let aid = &self.aids[x.index() as usize];
            if aid.state != AidState::Undecided {
                continue;
            }
            match aid.spec_affirmed_by {
                Some(a) => guessed.extend(self.intervals[a.index() as usize].ido.iter().copied()),
                None => {
                    guessed.insert(x);
                }
            }
        }
        let mut ido = parent_ido;
        ido.extend(guessed.iter().copied());

        let id = IntervalId::from_index(self.intervals.len() as u64);
        self.procs.get_mut(&pid).unwrap().push(id);
        self.intervals.push(RefInterval {
            pid,
            ps,
            ido: ido.clone(),
            ihd: BTreeSet::new(),
            iha: BTreeSet::new(),
            guessed,
            status: IntervalStatus::Speculative,
        });
        for &x in &ido {
            self.aids[x.index() as usize].dom.insert(id);
        }

        let mut effects = vec![Effect::IntervalStarted {
            interval: id,
            process: pid,
        }];
        if ido.is_empty() {
            let mut wl = VecDeque::new();
            self.do_finalize(id, &mut effects, &mut wl);
            self.drain(&mut wl, &mut effects);
        }
        Ok((Some(id), effects))
    }

    fn implicit_guess(
        &mut self,
        pid: ProcessId,
        tag: &BTreeSet<AidId>,
        ps: Checkpoint,
    ) -> RefResult<(ReceiveOutcome, Vec<Effect>)> {
        if let Some(&denied) = tag
            .iter()
            .find(|&&x| self.aids[x.index() as usize].state == AidState::Denied)
        {
            return Ok((ReceiveOutcome::Ghost(denied), Vec::new()));
        }
        let undecided: Vec<AidId> = tag
            .iter()
            .copied()
            .filter(|&x| self.aids[x.index() as usize].state == AidState::Undecided)
            .collect();
        if undecided.is_empty() {
            return Ok((ReceiveOutcome::Clean, Vec::new()));
        }
        let (outcome, effects) = self.guess(pid, &undecided, ps)?;
        match outcome {
            Some(a) => Ok((ReceiveOutcome::Speculative(a), effects)),
            None => unreachable!("denied AIDs were filtered above"),
        }
    }

    fn consume(&mut self, x: AidId) -> RefResult<()> {
        let aid = self.aid_mut(x);
        if aid.consumed {
            return Err("AidConsumed".into());
        }
        aid.consumed = true;
        Ok(())
    }

    fn affirm(&mut self, pid: ProcessId, x: AidId) -> RefResult<Vec<Effect>> {
        self.consume(x)?;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        self.affirm_inner(pid, x, &mut effects, &mut wl);
        self.drain(&mut wl, &mut effects);
        Ok(effects)
    }

    fn deny(&mut self, pid: ProcessId, x: AidId) -> RefResult<Vec<Effect>> {
        self.consume(x)?;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        self.deny_inner(pid, x, &mut effects, &mut wl);
        self.drain(&mut wl, &mut effects);
        Ok(effects)
    }

    fn free_of(&mut self, pid: ProcessId, x: AidId) -> RefResult<Vec<Effect>> {
        self.consume(x)?;
        let mut effects = Vec::new();
        let mut wl = VecDeque::new();
        let depends = self
            .current_interval(pid)
            .map(|a| self.intervals[a.index() as usize].ido.contains(&x));
        match depends {
            None | Some(false) => self.affirm_inner(pid, x, &mut effects, &mut wl),
            Some(true) => self.deny_inner(pid, x, &mut effects, &mut wl),
        }
        self.drain(&mut wl, &mut effects);
        Ok(effects)
    }

    fn affirm_inner(
        &mut self,
        pid: ProcessId,
        x: AidId,
        effects: &mut Vec<Effect>,
        wl: &mut VecDeque<Task>,
    ) {
        match self.current_interval(pid) {
            None => {
                effects.push(Effect::AidAffirmed { aid: x });
                self.definite_affirm_aid(x, wl);
            }
            Some(a) => {
                let a_idx = a.index() as usize;
                let a_ido: Vec<AidId> = self.intervals[a_idx]
                    .ido
                    .iter()
                    .copied()
                    .filter(|&y| y != x)
                    .collect();
                let x_dom: Vec<IntervalId> = std::mem::take(&mut self.aid_mut(x).dom)
                    .into_iter()
                    .collect();
                for &y in &a_ido {
                    self.aids[y.index() as usize]
                        .dom
                        .extend(x_dom.iter().copied());
                }
                for &b in &x_dom {
                    let b_idx = b.index() as usize;
                    self.intervals[b_idx].ido.remove(&x);
                    self.intervals[b_idx].ido.extend(a_ido.iter().copied());
                    if self.intervals[b_idx].ido.is_empty() {
                        wl.push_back(Task::Finalize(b));
                    }
                }
                self.aid_mut(x).spec_affirmed_by = Some(a);
                self.intervals[a_idx].iha.insert(x);
                effects.push(Effect::SpeculativelyAffirmed { aid: x, by: a });
            }
        }
    }

    fn deny_inner(
        &mut self,
        pid: ProcessId,
        x: AidId,
        effects: &mut Vec<Effect>,
        wl: &mut VecDeque<Task>,
    ) {
        let cur = self.current_interval(pid);
        let definite = match cur {
            None => true,
            Some(a) => self.intervals[a.index() as usize].ido.contains(&x),
        };
        if definite {
            effects.push(Effect::AidDenied { aid: x });
            self.definite_deny_aid(x, wl);
        } else {
            let a = cur.unwrap();
            self.intervals[a.index() as usize].ihd.insert(x);
            self.aid_mut(x).spec_denied_by = Some(a);
            effects.push(Effect::SpeculativelyDenied { aid: x, by: a });
        }
    }

    fn definite_affirm_aid(&mut self, x: AidId, wl: &mut VecDeque<Task>) {
        let aid = self.aid_mut(x);
        aid.state = AidState::Affirmed;
        aid.spec_affirmed_by = None;
        aid.consumed = true;
        let dom: Vec<IntervalId> = std::mem::take(&mut aid.dom).into_iter().collect();
        for b in dom {
            let b_idx = b.index() as usize;
            self.intervals[b_idx].ido.remove(&x);
            if self.intervals[b_idx].ido.is_empty() {
                wl.push_back(Task::Finalize(b));
            }
        }
    }

    fn definite_deny_aid(&mut self, x: AidId, wl: &mut VecDeque<Task>) {
        let aid = self.aid_mut(x);
        aid.state = AidState::Denied;
        aid.spec_affirmed_by = None;
        aid.spec_denied_by = None;
        aid.consumed = true;
        let dom: Vec<IntervalId> = std::mem::take(&mut aid.dom).into_iter().collect();
        for b in dom {
            wl.push_back(Task::Rollback(b));
        }
    }

    fn drain(&mut self, wl: &mut VecDeque<Task>, effects: &mut Vec<Effect>) {
        while let Some(task) = wl.pop_front() {
            match task {
                Task::Finalize(a) => self.do_finalize(a, effects, wl),
                Task::Rollback(a) => self.do_rollback(a, effects, wl),
            }
        }
    }

    fn do_finalize(&mut self, a: IntervalId, effects: &mut Vec<Effect>, wl: &mut VecDeque<Task>) {
        let idx = a.index() as usize;
        if self.intervals[idx].status != IntervalStatus::Speculative {
            return;
        }
        self.intervals[idx].status = IntervalStatus::Definite;
        effects.push(Effect::Finalized {
            interval: a,
            process: self.intervals[idx].pid,
        });
        let iha: Vec<AidId> = self.intervals[idx].iha.iter().copied().collect();
        for x in iha {
            if self.aids[x.index() as usize].state == AidState::Undecided {
                effects.push(Effect::AidAffirmed { aid: x });
                self.definite_affirm_aid(x, wl);
            }
        }
        let ihd: Vec<AidId> = self.intervals[idx].ihd.iter().copied().collect();
        for x in ihd {
            if self.aids[x.index() as usize].state == AidState::Undecided {
                effects.push(Effect::AidDenied { aid: x });
                self.definite_deny_aid(x, wl);
            }
        }
    }

    fn do_rollback(&mut self, a: IntervalId, effects: &mut Vec<Effect>, wl: &mut VecDeque<Task>) {
        let idx = a.index() as usize;
        match self.intervals[idx].status {
            IntervalStatus::RolledBack | IntervalStatus::Definite => return,
            IntervalStatus::Speculative => {}
        }
        let pid = self.intervals[idx].pid;
        let history = self.procs.get_mut(&pid).unwrap();
        let pos = match history.iter().position(|&i| i == a) {
            Some(p) => p,
            None => return,
        };
        let discarded = history.split_off(pos);
        let checkpoint = self.intervals[idx].ps;

        for &c in discarded.iter().rev() {
            let c_idx = c.index() as usize;
            self.intervals[c_idx].status = IntervalStatus::RolledBack;
            let ido: Vec<AidId> = self.intervals[c_idx].ido.iter().copied().collect();
            for x in ido {
                self.aids[x.index() as usize].dom.remove(&c);
            }
            let iha: Vec<AidId> = self.intervals[c_idx].iha.iter().copied().collect();
            for x in iha {
                self.aid_mut(x).spec_affirmed_by = None;
                if self.aids[x.index() as usize].state == AidState::Undecided {
                    effects.push(Effect::AidDenied { aid: x });
                    self.definite_deny_aid(x, wl);
                }
            }
            let ihd: Vec<AidId> = self.intervals[c_idx].ihd.iter().copied().collect();
            for x in ihd {
                if self.aids[x.index() as usize].spec_denied_by == Some(c) {
                    self.aid_mut(x).spec_denied_by = None;
                    if self.aids[x.index() as usize].state == AidState::Undecided {
                        self.aid_mut(x).consumed = false;
                    }
                }
            }
        }
        effects.push(Effect::RolledBack {
            process: pid,
            intervals: discarded,
            checkpoint,
        });
    }
}

// ---------------------------------------------------------------------
// Lockstep driver.
// ---------------------------------------------------------------------

const N_PROCS: u32 = 3;
const N_AIDS: u64 = 6;

/// One random primitive. Raw indices are mapped onto live ids at play time.
#[derive(Debug, Clone, Copy)]
enum Op {
    Guess(u32, u64),
    Affirm(u32, u64),
    Deny(u32, u64),
    FreeOf(u32, u64),
    Send(u32),
    Recv(u32, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, 0u32..N_PROCS, 0u64..N_AIDS).prop_map(|(k, p, x)| match k {
        0 | 1 => Op::Guess(p, x),
        2 => Op::Affirm(p, x),
        3 => Op::Deny(p, x),
        4 => Op::FreeOf(p, x),
        5 => Op::Send(p),
        _ => Op::Recv(p, x),
    })
}

/// Assert the real engine and the reference agree on every observable.
fn assert_state_agrees(engine: &Engine, reference: &RefEngine, step: usize) {
    for p in 0..N_PROCS {
        let pid = ProcessId(p);
        assert_eq!(
            engine.history(pid).unwrap(),
            reference.procs[&pid].as_slice(),
            "history of {pid} diverged at step {step}"
        );
        let tag: Vec<AidId> = engine.dependence_tag(pid).unwrap().iter().collect();
        let ref_tag: Vec<AidId> = reference.dependence_tag(pid).into_iter().collect();
        assert_eq!(tag, ref_tag, "tag of {pid} diverged at step {step}");
    }
    for i in 0..engine.interval_count() {
        let id = IntervalId::from_index(i as u64);
        let view = engine.interval(id).unwrap();
        let r = &reference.intervals[i];
        assert_eq!(view.status(), r.status, "status of {id} at step {step}");
        assert!(
            view.ido().iter().eq(r.ido.iter().copied()),
            "IDO of {id} diverged at step {step}: {:?} vs {:?}",
            view.ido(),
            r.ido
        );
        assert!(view.ihd().iter().eq(r.ihd.iter().copied()), "IHD of {id}");
        assert!(view.iha().iter().eq(r.iha.iter().copied()), "IHA of {id}");
        assert!(
            view.guessed().iter().eq(r.guessed.iter().copied()),
            "guessed of {id}"
        );
    }
    for x in 0..N_AIDS {
        let id = AidId::from_index(x);
        let view = engine.aid(id).unwrap();
        let r = &reference.aids[x as usize];
        assert_eq!(view.state(), r.state, "state of {id} at step {step}");
        assert_eq!(view.is_consumed(), r.consumed, "consumed of {id}");
        assert_eq!(view.speculatively_affirmed_by(), r.spec_affirmed_by);
        assert_eq!(view.speculatively_denied_by(), r.spec_denied_by);
        assert!(
            view.dom().iter().eq(r.dom.iter().copied()),
            "DOM of {id} diverged at step {step}: {:?} vs {:?}",
            view.dom(),
            r.dom
        );
    }
}

fn play(ops: &[Op]) {
    let mut engine = Engine::new();
    engine.set_invariant_checking(true);
    let mut reference = RefEngine::default();
    for _ in 0..N_PROCS {
        let a = engine.register_process();
        let b = reference.register_process();
        assert_eq!(a, b);
    }
    for _ in 0..N_AIDS {
        let a = engine.aid_init(ProcessId(0));
        let b = reference.aid_init();
        assert_eq!(a, b);
    }

    // Tag pools captured by Send and replayed by Recv.
    let mut tags: Vec<Tag> = Vec::new();
    let mut ref_tags: Vec<BTreeSet<AidId>> = Vec::new();
    let mut ck = 0u64;

    for (step, &op) in ops.iter().enumerate() {
        ck += 1;
        match op {
            Op::Guess(p, x) => {
                let pid = ProcessId(p);
                let x = AidId::from_index(x);
                let got = engine.guess(pid, &[x], Checkpoint(ck));
                let want = reference.guess(pid, &[x], Checkpoint(ck));
                match (got, want) {
                    (Ok((out, fx)), Ok((ref_out, ref_fx))) => {
                        assert_eq!(out.interval(), ref_out, "guess outcome at step {step}");
                        assert!(matches!(out, GuessOutcome::AlreadyFalse(_)) == ref_out.is_none());
                        assert_eq!(fx, ref_fx, "guess effects at step {step}");
                    }
                    (got, want) => panic!("guess disagreement at {step}: {got:?} vs {want:?}"),
                }
            }
            Op::Affirm(p, x) => {
                let pid = ProcessId(p);
                let x = AidId::from_index(x);
                match (engine.affirm(pid, x), reference.affirm(pid, x)) {
                    (Ok(fx), Ok(ref_fx)) => assert_eq!(fx, ref_fx, "affirm fx at {step}"),
                    (Err(_), Err(_)) => {}
                    (got, want) => panic!("affirm disagreement at {step}: {got:?} vs {want:?}"),
                }
            }
            Op::Deny(p, x) => {
                let pid = ProcessId(p);
                let x = AidId::from_index(x);
                match (engine.deny(pid, x), reference.deny(pid, x)) {
                    (Ok(fx), Ok(ref_fx)) => assert_eq!(fx, ref_fx, "deny fx at {step}"),
                    (Err(_), Err(_)) => {}
                    (got, want) => panic!("deny disagreement at {step}: {got:?} vs {want:?}"),
                }
            }
            Op::FreeOf(p, x) => {
                let pid = ProcessId(p);
                let x = AidId::from_index(x);
                match (engine.free_of(pid, x), reference.free_of(pid, x)) {
                    (Ok(fx), Ok(ref_fx)) => assert_eq!(fx, ref_fx, "free_of fx at {step}"),
                    (Err(_), Err(_)) => {}
                    (got, want) => panic!("free_of disagreement at {step}: {got:?} vs {want:?}"),
                }
            }
            Op::Send(p) => {
                let pid = ProcessId(p);
                let tag = engine.dependence_tag(pid).unwrap();
                let ref_tag = reference.dependence_tag(pid);
                assert!(
                    tag.iter().eq(ref_tag.iter().copied()),
                    "send tag diverged at step {step}"
                );
                tags.push(tag);
                ref_tags.push(ref_tag);
            }
            Op::Recv(p, i) => {
                if tags.is_empty() {
                    continue;
                }
                let pid = ProcessId(p);
                let idx = (i as usize) % tags.len();
                let got = engine.implicit_guess(pid, &tags[idx], Checkpoint(ck));
                let want = reference.implicit_guess(pid, &ref_tags[idx], Checkpoint(ck));
                match (got, want) {
                    (Ok((out, fx)), Ok((ref_out, ref_fx))) => {
                        assert_eq!(out, ref_out, "recv outcome at step {step}");
                        assert_eq!(fx, ref_fx, "recv effects at step {step}");
                    }
                    (got, want) => panic!("recv disagreement at {step}: {got:?} vs {want:?}"),
                }
            }
        }
        assert_state_agrees(&engine, &reference, step);
    }
    engine.verify_invariants().unwrap();
}

/// Twin-engine fossil-collection oracle: the same op stream drives two
/// real engines, one sweeping [`Engine::collect_fossils`] after *every*
/// step (the most hostile cadence) and one never. Every primitive result,
/// effect stream, dependence tag and AID state must stay bit-identical —
/// collection is storage reclamation, not semantics — and the collected
/// engine's surviving history must be exactly the uncollected one's
/// suffix above the horizon.
fn play_collected_twin(ops: &[Op]) {
    let mut plain = Engine::new();
    let mut collected = Engine::new();
    collected.set_invariant_checking(true);
    for _ in 0..N_PROCS {
        assert_eq!(plain.register_process(), collected.register_process());
    }
    for _ in 0..N_AIDS {
        assert_eq!(
            plain.aid_init(ProcessId(0)),
            collected.aid_init(ProcessId(0))
        );
    }
    let mut tags: Vec<(Tag, Tag)> = Vec::new();
    let mut ck = 0u64;
    for (step, &op) in ops.iter().enumerate() {
        ck += 1;
        match op {
            Op::Guess(p, x) => {
                let (pid, x) = (ProcessId(p), AidId::from_index(x));
                let a = plain.guess(pid, &[x], Checkpoint(ck));
                let b = collected.guess(pid, &[x], Checkpoint(ck));
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "guess diverged at step {step}"
                );
            }
            Op::Affirm(p, x) => {
                let (pid, x) = (ProcessId(p), AidId::from_index(x));
                let a = plain.affirm(pid, x);
                let b = collected.affirm(pid, x);
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "affirm diverged at step {step}"
                );
            }
            Op::Deny(p, x) => {
                let (pid, x) = (ProcessId(p), AidId::from_index(x));
                let a = plain.deny(pid, x);
                let b = collected.deny(pid, x);
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "deny diverged at step {step}"
                );
            }
            Op::FreeOf(p, x) => {
                let (pid, x) = (ProcessId(p), AidId::from_index(x));
                let a = plain.free_of(pid, x);
                let b = collected.free_of(pid, x);
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "free_of diverged at step {step}"
                );
            }
            Op::Send(p) => {
                let pid = ProcessId(p);
                let a = plain.dependence_tag(pid).unwrap();
                let b = collected.dependence_tag(pid).unwrap();
                assert!(a.iter().eq(b.iter()), "send tag diverged at step {step}");
                tags.push((a, b));
            }
            Op::Recv(p, i) => {
                if tags.is_empty() {
                    continue;
                }
                let pid = ProcessId(p);
                let idx = (i as usize) % tags.len();
                let a = plain.implicit_guess(pid, &tags[idx].0, Checkpoint(ck));
                let b = collected.implicit_guess(pid, &tags[idx].1, Checkpoint(ck));
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "recv diverged at step {step}"
                );
            }
        }
        collected.collect_fossils();
        // Program-facing state stays identical despite reclamation…
        for x in 0..N_AIDS {
            let id = AidId::from_index(x);
            assert_eq!(
                plain.aid_state(id).unwrap(),
                collected.aid_state(id).unwrap(),
                "aid_state of {id} diverged at step {step}"
            );
        }
        for p in 0..N_PROCS {
            let pid = ProcessId(p);
            let a: Vec<AidId> = plain.dependence_tag(pid).unwrap().iter().collect();
            let b: Vec<AidId> = collected.dependence_tag(pid).unwrap().iter().collect();
            assert_eq!(a, b, "tag of {pid} diverged at step {step}");
            // …and the surviving history is exactly the uncollected
            // suffix above the horizon.
            let horizon = collected.interval_horizon();
            let suffix: Vec<IntervalId> = plain
                .history(pid)
                .unwrap()
                .iter()
                .copied()
                .filter(|id| id.index() >= horizon)
                .collect();
            assert_eq!(
                suffix,
                collected.history(pid).unwrap(),
                "history of {pid} diverged at step {step}"
            );
        }
    }
    plain.verify_invariants().unwrap();
    collected.verify_invariants().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn depset_engine_agrees_with_btreeset_reference(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        play(&ops);
    }

    #[test]
    fn fossil_collected_twin_agrees_with_uncollected(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        play_collected_twin(&ops);
    }
}

/// A directed deep-inheritance chain — the exact shape the perf work
/// optimizes — checked against the reference beyond the random sweeps.
#[test]
fn deep_chain_agrees_with_reference() {
    let mut ops = Vec::new();
    for x in 0..N_AIDS {
        ops.push(Op::Guess(0, x));
    }
    ops.push(Op::Send(0));
    ops.push(Op::Recv(1, 0));
    for x in 0..N_AIDS - 1 {
        ops.push(Op::Affirm(2, x));
    }
    ops.push(Op::Deny(2, N_AIDS - 1));
    play(&ops);
    play_collected_twin(&ops);
}
