//! Sharded-vs-unsharded differential oracle.
//!
//! The engine's sequential path must be **bit-identical** for any shard
//! count: sharding only changes where records live, never what a primitive
//! returns, which effects it emits, or which ids it allocates. This suite
//! drives twin engines (1, 2 and 4 shards) in lockstep over seeded random
//! programs — the same shape as `differential_depset.rs` — and asserts
//! every per-call observable equal, including across fossil collections.
//!
//! The phase path ([`Engine::run_phase`]) has two determinism obligations
//! of its own, both checked here:
//!
//! * **worker-count invariance** — the same scripts with 1, 2 or 4 worker
//!   threads produce identical effects, identical engine state and
//!   identical queue-traffic counters (only `busy_ns`/`drain_ns` may
//!   differ: they are host timing, excluded from every fingerprint);
//! * **drain-order invariance** — for single-decider workloads, any
//!   permutation of the quiescent drain's destination order commits the
//!   same outcome (the commit-equivalence that `hope-mc` machine-checks
//!   for the runtime layer), property-tested with seeded
//!   [`hope_sim::drain_permutation`] orders.

use hope_core::{
    AidId, AidState, Checkpoint, DrainOrder, Engine, IntervalId, OpAid, ProcessId, ShardOp,
};
use hope_sim::{drain_permutation, SimRng};
use proptest::prelude::*;

const NPROCS: usize = 6;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

/// One op of the seeded sequential driver program.
#[derive(Debug, Clone)]
enum SeqOp {
    Init { p: usize },
    Guess { p: usize, picks: Vec<usize> },
    Affirm { p: usize, x: usize },
    Deny { p: usize, x: usize },
    FreeOf { p: usize, x: usize },
    Implicit { from: usize, to: usize },
    Collect,
}

/// Generate a seeded random program over `NPROCS` processes. Ops reference
/// AIDs by creation index so the same program applies to every twin.
fn gen_seq_program(seed: u64, len: usize) -> Vec<SeqOp> {
    let mut rng = SimRng::new(seed);
    let mut n_aids = 0usize;
    let mut ops = Vec::with_capacity(len);
    for _ in 0..len {
        let p = rng.index(NPROCS);
        let roll = rng.index(100);
        let op = if n_aids == 0 || roll < 22 {
            n_aids += 1;
            SeqOp::Init { p }
        } else if roll < 50 {
            let k = 1 + rng.index(2.min(n_aids));
            let picks = (0..k).map(|_| rng.index(n_aids)).collect();
            SeqOp::Guess { p, picks }
        } else if roll < 65 {
            SeqOp::Affirm {
                p,
                x: rng.index(n_aids),
            }
        } else if roll < 78 {
            SeqOp::Deny {
                p,
                x: rng.index(n_aids),
            }
        } else if roll < 88 {
            SeqOp::FreeOf {
                p,
                x: rng.index(n_aids),
            }
        } else if roll < 96 {
            SeqOp::Implicit {
                from: rng.index(NPROCS),
                to: p,
            }
        } else {
            SeqOp::Collect
        };
        ops.push(op);
    }
    ops
}

/// Apply one sequential op to an engine and render every observable the
/// call produced (outcome/error and effect list) as a comparable string.
fn apply_seq_op(e: &mut Engine, pids: &[ProcessId], aids: &mut Vec<AidId>, op: &SeqOp) -> String {
    match op {
        SeqOp::Init { p } => {
            let x = e.aid_init(pids[*p]);
            aids.push(x);
            format!("init {x:?}")
        }
        SeqOp::Guess { p, picks } => {
            let named: Vec<AidId> = picks.iter().map(|&i| aids[i]).collect();
            let ps = Checkpoint(aids.len() as u64);
            format!("guess {:?}", e.guess(pids[*p], &named, ps))
        }
        SeqOp::Affirm { p, x } => format!("affirm {:?}", e.affirm(pids[*p], aids[*x])),
        SeqOp::Deny { p, x } => format!("deny {:?}", e.deny(pids[*p], aids[*x])),
        SeqOp::FreeOf { p, x } => format!("free_of {:?}", e.free_of(pids[*p], aids[*x])),
        SeqOp::Implicit { from, to } => {
            // Message passing: carry `from`'s dependence tag to `to`.
            let tag = e.dependence_tag(pids[*from]).expect("registered");
            let ps = Checkpoint(aids.len() as u64);
            format!("implicit {:?}", e.implicit_guess(pids[*to], &tag, ps))
        }
        SeqOp::Collect => format!("collect {:?}", e.collect_fossils()),
    }
}

/// Full-state digest over the live id space: AID states, open set,
/// histories with interval statuses, and semantic counters. Everything in
/// here must be identical across shard counts.
fn state_digest(e: &Engine, pids: &[ProcessId], aids: &[AidId]) -> String {
    let mut s = String::new();
    for &x in aids {
        s.push_str(&format!("{x:?}:{:?};", e.aid_state(x)));
    }
    s.push_str(&format!("open:{:?};", e.open_aids()));
    s.push_str(&format!(
        "horizons:{}/{};",
        e.interval_horizon(),
        e.aid_horizon()
    ));
    for &p in pids {
        let h = e.history(p).expect("registered");
        s.push_str(&format!("h{p:?}:{h:?}="));
        for &iv in h {
            s.push_str(&format!("{:?},", e.interval(iv).expect("live").status()));
        }
        s.push(';');
    }
    s.push_str(&format!("stats:{:?};", e.stats()));
    s
}

/// Drive twin engines (one per shard count) through the same program in
/// lockstep, asserting every per-call observable and the running state
/// digest equal. Returns per-engine tracking stats for callers that want
/// to look at the queue counters.
fn run_twins(seed: u64, len: usize) {
    let mut twins: Vec<(Engine, Vec<ProcessId>, Vec<AidId>)> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let mut e = Engine::with_shards(n);
            let pids = (0..NPROCS).map(|_| e.register_process()).collect();
            (e, pids, Vec::new())
        })
        .collect();

    for (i, op) in gen_seq_program(seed, len).iter().enumerate() {
        let obs: Vec<String> = twins
            .iter_mut()
            .map(|(e, pids, aids)| apply_seq_op(e, pids, aids, op))
            .collect();
        for w in obs.windows(2) {
            assert_eq!(w[0], w[1], "seed {seed} op {i} {op:?} diverged");
        }
        if i % 16 == 0 {
            let digests: Vec<String> = twins
                .iter()
                .map(|(e, pids, aids)| state_digest(e, pids, aids))
                .collect();
            for w in digests.windows(2) {
                assert_eq!(w[0], w[1], "seed {seed} op {i} state diverged");
            }
        }
    }
    let digests: Vec<String> = twins
        .iter()
        .map(|(e, pids, aids)| state_digest(e, pids, aids))
        .collect();
    for w in digests.windows(2) {
        assert_eq!(w[0], w[1], "seed {seed} final state diverged");
    }
    for (e, _, _) in &twins {
        e.verify_invariants().expect("invariants hold");
    }
}

#[test]
fn sequential_path_is_bit_identical_across_shard_counts() {
    for seed in 0..40 {
        run_twins(seed, 160);
    }
}

#[test]
fn sequential_path_long_program_with_fossils() {
    // Longer programs push past fossil horizons repeatedly, exercising the
    // per-shard base-offset addressing on both sides of collections.
    for seed in 1000..1008 {
        run_twins(seed, 600);
    }
}

#[test]
fn single_shard_engine_counts_no_cross_shard_traffic() {
    let mut e = Engine::with_shards(1);
    let p0 = e.register_process();
    let p1 = e.register_process();
    let x = e.aid_init(p0);
    e.guess(p1, &[x], Checkpoint(0)).unwrap();
    e.affirm(p0, x).unwrap();
    assert_eq!(e.tracking_stats().cross_shard_messages, 0);
}

#[test]
fn cross_shard_dependence_counts_boundary_crossings() {
    // p0 on shard 0 owns the AID; p1 on shard 1 guesses on it — the DOM
    // registration, and later the affirm's finalize notification, cross
    // the ownership boundary.
    let mut e = Engine::with_shards(2);
    let p0 = e.register_process_on(0);
    let p1 = e.register_process_on(1);
    let x = e.aid_init(p0);
    e.guess(p1, &[x], Checkpoint(0)).unwrap();
    e.affirm(p0, x).unwrap();
    let t = e.tracking_stats();
    assert!(
        t.cross_shard_messages >= 2,
        "DOM insert + decide cascade should each cross: {t:?}"
    );
}

// ----------------------------------------------------------------------
// phase path
// ----------------------------------------------------------------------

const NSHARDS: usize = 4;

/// A phase fixture: a 4-shard engine with one worker process and one
/// decider process per shard, plus two pre-phase AIDs per shard.
struct Fixture {
    engine: Engine,
    workers: Vec<ProcessId>,
    deciders: Vec<ProcessId>,
    pre_aids: Vec<AidId>,
}

fn fixture() -> Fixture {
    let mut engine = Engine::with_shards(NSHARDS);
    let workers: Vec<ProcessId> = (0..NSHARDS)
        .map(|s| engine.register_process_on(s))
        .collect();
    let deciders: Vec<ProcessId> = (0..NSHARDS)
        .map(|s| engine.register_process_on(s))
        .collect();
    let mut pre_aids = Vec::new();
    for w in &workers {
        for _ in 0..2 {
            pre_aids.push(engine.aid_init(*w));
        }
    }
    Fixture {
        engine,
        workers,
        deciders,
        pre_aids,
    }
}

/// Generate seeded per-shard phase scripts under the **single-decider
/// discipline**: worker processes only `aid_init`/`guess`, decider
/// processes only decide, and each AID is decided by at most one op —
/// the workload class whose committed outcome is drain-order invariant.
fn gen_phase_scripts(fx: &Fixture, seed: u64) -> Vec<Vec<ShardOp>> {
    let mut rng = SimRng::new(seed);
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    let mut new_per_shard = [0usize; NSHARDS];

    // Two fresh AIDs per shard, then guesses mixing own-new and pre-phase
    // (possibly remote) AIDs.
    for s in 0..NSHARDS {
        for _ in 0..2 {
            scripts[s].push(ShardOp::AidInit { pid: fx.workers[s] });
            new_per_shard[s] += 1;
        }
    }
    for s in 0..NSHARDS {
        let n_guesses = 2 + rng.index(3);
        for g in 0..n_guesses {
            let k = 1 + rng.index(2);
            let mut aids = Vec::with_capacity(k);
            for _ in 0..k {
                if rng.chance(0.5) {
                    aids.push(OpAid::New(rng.index(new_per_shard[s])));
                } else {
                    aids.push(OpAid::Id(fx.pre_aids[rng.index(fx.pre_aids.len())]));
                }
            }
            scripts[s].push(ShardOp::Guess {
                pid: fx.workers[s],
                aids,
                ps: Checkpoint(g as u64),
            });
        }
    }
    // Single-decider discipline: walk every decidable AID once, decide a
    // random subset, each from exactly one decider op. Own-new AIDs are
    // only addressable from their shard's script; pre-phase AIDs from any.
    for s in 0..NSHARDS {
        for k in 0..new_per_shard[s] {
            if rng.chance(0.7) {
                scripts[s].push(decide_op(&mut rng, fx.deciders[s], OpAid::New(k)));
            }
        }
    }
    for &x in &fx.pre_aids {
        if rng.chance(0.7) {
            let s = rng.index(NSHARDS);
            scripts[s].push(decide_op(&mut rng, fx.deciders[s], OpAid::Id(x)));
        }
    }
    scripts
}

fn decide_op(rng: &mut SimRng, pid: ProcessId, aid: OpAid) -> ShardOp {
    match rng.index(3) {
        0 => ShardOp::Affirm { pid, aid },
        1 => ShardOp::Deny { pid, aid },
        _ => ShardOp::FreeOf { pid, aid },
    }
}

/// Digest of everything that must be invariant across worker counts:
/// the full state digest plus the phase report minus host timing.
fn phase_digest(e: &Engine, fx_pids: &[ProcessId], n_aids: u64) -> String {
    let aids: Vec<AidId> = (0..n_aids).map(AidId::from_index).collect();
    state_digest(e, fx_pids, &aids)
}

#[test]
fn phase_outcome_is_invariant_under_worker_count() {
    for seed in 0..24 {
        let fx = fixture();
        let scripts = gen_phase_scripts(&fx, seed);
        let order = DrainOrder::identity(NSHARDS);
        let pids: Vec<ProcessId> = fx.workers.iter().chain(&fx.deciders).copied().collect();
        let n_aids = fx.pre_aids.len() as u64 + 2 * NSHARDS as u64;

        let mut runs = Vec::new();
        for workers in [1usize, 2, 4] {
            let mut e = fx.engine.clone();
            let report = e
                .run_phase(scripts.clone(), workers, &order)
                .expect("valid scripts");
            e.verify_invariants().expect("invariants hold post-phase");
            let rep_digest = format!(
                "effects:{:?};ops:{};deferred:{};msgs:{};flushes:{};depth:{}",
                report.effects,
                report.ops,
                report.deferred_ops,
                report.cross_shard_messages,
                report.batch_flushes,
                report.max_queue_depth
            );
            assert_eq!(report.busy_ns.len(), NSHARDS);
            runs.push((
                workers,
                rep_digest,
                phase_digest(&e, &pids, n_aids),
                format!("{:?}", e.tracking_stats()),
            ));
        }
        for w in runs.windows(2) {
            assert_eq!(
                w[0].1, w[1].1,
                "seed {seed}: report diverged between workers={} and workers={}",
                w[0].0, w[1].0
            );
            assert_eq!(
                w[0].2, w[1].2,
                "seed {seed}: engine state diverged between workers={} and workers={}",
                w[0].0, w[1].0
            );
            assert_eq!(
                w[0].3, w[1].3,
                "seed {seed}: tracking stats diverged between workers={} and workers={}",
                w[0].0, w[1].0
            );
        }
    }
}

/// Committed outcome for drain-order comparisons: final AID states,
/// per-process live histories and their statuses. (Cascade *grouping* —
/// rollback-event counts, effect order — legitimately varies with drain
/// order; the committed state may not.)
fn committed_digest(e: &Engine, pids: &[ProcessId], n_aids: u64) -> String {
    let mut s = String::new();
    for i in 0..n_aids {
        let x = AidId::from_index(i);
        s.push_str(&format!("{x:?}:{:?};", e.aid_state(x)));
    }
    s.push_str(&format!("open:{:?};", e.open_aids()));
    for &p in pids {
        let h = e.history(p).expect("registered");
        s.push_str(&format!("h{p:?}:{h:?}="));
        for &iv in h {
            s.push_str(&format!("{:?},", e.interval(iv).expect("live").status()));
        }
        s.push(';');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Satellite 3: any drain interleaving of the per-shard queues yields
    /// the same committed outputs (single-decider discipline).
    #[test]
    fn phase_outcome_is_invariant_under_drain_order(seed in 0u64..10_000, perm_seed in 0u64..10_000) {
        let fx = fixture();
        let scripts = gen_phase_scripts(&fx, seed);
        let pids: Vec<ProcessId> = fx.workers.iter().chain(&fx.deciders).copied().collect();
        let n_aids = fx.pre_aids.len() as u64 + 2 * NSHARDS as u64;

        let mut baseline = None;
        let mut prng = SimRng::new(perm_seed);
        for round in 0..4 {
            let order = if round == 0 {
                DrainOrder::identity(NSHARDS)
            } else {
                DrainOrder::from_permutation(drain_permutation(&mut prng, NSHARDS))
                    .expect("valid permutation")
            };
            let mut e = fx.engine.clone();
            e.run_phase(scripts.clone(), 2, &order).expect("valid scripts");
            e.verify_invariants().expect("invariants hold post-phase");
            let digest = committed_digest(&e, &pids, n_aids);
            match &baseline {
                None => baseline = Some(digest),
                Some(b) => prop_assert_eq!(
                    b, &digest,
                    "seed {} perm_seed {} round {}: committed outcome diverged",
                    seed, perm_seed, round
                ),
            }
        }
    }
}

#[test]
fn phase_guess_and_decide_in_one_phase_commits() {
    // Worker on shard 1 guesses on shard 0's pre-phase AID; shard 0's
    // decider affirms it in the same phase. The deferred affirm replays at
    // the drain and finalizes the cross-shard dependent.
    let fx = fixture();
    let mut e = fx.engine.clone();
    let x = fx.pre_aids[0]; // owned by shard 0
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    scripts[1].push(ShardOp::Guess {
        pid: fx.workers[1],
        aids: vec![OpAid::Id(x)],
        ps: Checkpoint(0),
    });
    scripts[0].push(ShardOp::Affirm {
        pid: fx.deciders[0],
        aid: OpAid::Id(x),
    });
    let report = e
        .run_phase(scripts, 2, &DrainOrder::identity(NSHARDS))
        .unwrap();
    assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
    assert_eq!(report.deferred_ops, 1, "the affirm deferred");
    assert!(report.cross_shard_messages >= 1, "DOM insert crossed");
    assert!(report.batch_flushes >= 1);
    let h = e.history(fx.workers[1]).unwrap();
    assert_eq!(h.len(), 1);
    assert_eq!(
        e.interval(h[0]).unwrap().status(),
        hope_core::IntervalStatus::Definite
    );
    // Tracking stats absorbed the phase traffic.
    let t = e.tracking_stats();
    assert_eq!(t.phases, 1);
    assert_eq!(t.deferred_ops, 1);
}

#[test]
fn phase_deny_rolls_back_cross_shard_dependent() {
    let fx = fixture();
    let mut e = fx.engine.clone();
    let x = fx.pre_aids[0];
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    scripts[3].push(ShardOp::Guess {
        pid: fx.workers[3],
        aids: vec![OpAid::Id(x)],
        ps: Checkpoint(7),
    });
    scripts[0].push(ShardOp::Deny {
        pid: fx.deciders[0],
        aid: OpAid::Id(x),
    });
    e.run_phase(scripts, 4, &DrainOrder::identity(NSHARDS))
        .unwrap();
    assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
    assert!(
        e.history(fx.workers[3]).unwrap().is_empty(),
        "speculative interval rolled back out of the history"
    );
    assert_eq!(e.stats().rolled_back_intervals, 1);
}

#[test]
fn phase_validation_rejects_unknown_aid_without_mutating() {
    let fx = fixture();
    let mut e = fx.engine.clone();
    let before = state_digest(&e, &fx.workers, &fx.pre_aids);
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    scripts[0].push(ShardOp::Guess {
        pid: fx.workers[0],
        aids: vec![OpAid::Id(AidId::from_index(9999))],
        ps: Checkpoint(0),
    });
    assert!(e
        .run_phase(scripts, 1, &DrainOrder::identity(NSHARDS))
        .is_err());
    assert_eq!(
        state_digest(&e, &fx.workers, &fx.pre_aids),
        before,
        "failed validation must leave the engine untouched"
    );
    assert_eq!(e.tracking_stats().phases, 0);
}

#[test]
#[should_panic(expected = "one script per shard")]
fn phase_requires_one_script_per_shard() {
    let fx = fixture();
    let mut e = fx.engine.clone();
    let _ = e.run_phase(vec![Vec::new()], 1, &DrainOrder::identity(NSHARDS));
}

#[test]
#[should_panic]
fn phase_rejects_op_on_wrong_shard() {
    let fx = fixture();
    let mut e = fx.engine.clone();
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    // workers[1] lives on shard 1, not shard 0.
    scripts[0].push(ShardOp::AidInit { pid: fx.workers[1] });
    let _ = e.run_phase(scripts, 1, &DrainOrder::identity(NSHARDS));
}

#[test]
fn phase_ids_continue_seamlessly_into_sequential_path() {
    // After a phase, the eager path must keep allocating dense ids above
    // the leased blocks, and a 1-vs-4-shard twin keeps agreeing on them.
    let fx = fixture();
    let mut e = fx.engine.clone();
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    for (script, worker) in scripts.iter_mut().zip(&fx.workers) {
        script.push(ShardOp::AidInit { pid: *worker });
    }
    e.run_phase(scripts, 2, &DrainOrder::identity(NSHARDS))
        .unwrap();
    let next = e.aid_init(fx.workers[0]);
    assert_eq!(next.index(), fx.pre_aids.len() as u64 + NSHARDS as u64);
    // The phase-created AIDs are usable by the eager path.
    let phase_aid = AidId::from_index(fx.pre_aids.len() as u64 + 2);
    let (out, _) = e.guess(fx.workers[2], &[phase_aid], Checkpoint(1)).unwrap();
    assert!(out.value());
    e.affirm(fx.deciders[0], phase_aid).unwrap();
    assert_eq!(e.aid_state(phase_aid).unwrap(), AidState::Affirmed);
    e.verify_invariants().expect("invariants hold");
}

#[test]
fn interval_ids_lease_holes_are_not_observable_as_live_records() {
    // A deferred guess consumes a drain-time id; worker-side leases leave
    // sentinel holes. Holes must never surface as live intervals.
    let fx = fixture();
    let mut e = fx.engine.clone();
    let x = fx.pre_aids[0];
    let mut scripts: Vec<Vec<ShardOp>> = vec![Vec::new(); NSHARDS];
    // Decider affirms x speculatively? No — deciders are definite. Instead:
    // worker 0 guesses x (inline), worker 1's guess also names x (inline),
    // then a deny of x at the drain rolls both back, leaving holes where
    // their rolled-back intervals were.
    scripts[0].push(ShardOp::Guess {
        pid: fx.workers[0],
        aids: vec![OpAid::Id(x)],
        ps: Checkpoint(0),
    });
    scripts[1].push(ShardOp::Guess {
        pid: fx.workers[1],
        aids: vec![OpAid::Id(x)],
        ps: Checkpoint(0),
    });
    scripts[2].push(ShardOp::Deny {
        pid: fx.deciders[2],
        aid: OpAid::Id(x),
    });
    e.run_phase(scripts, 2, &DrainOrder::identity(NSHARDS))
        .unwrap();
    assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
    assert!(e.history(fx.workers[0]).unwrap().is_empty());
    assert!(e.history(fx.workers[1]).unwrap().is_empty());
    // Probing any interval id must never panic; rolled-back ids report an
    // error or a RolledBack view, never garbage.
    for i in 0..e.interval_count() as u64 {
        let _ = e.interval(IntervalId::from_index(i));
    }
    e.verify_invariants().expect("invariants hold");
}
