//! Directed engine-level scenarios: the paper's worked examples and the
//! corner cases its prose glosses over, each encoded as an explicit
//! transition script with exact expectations.

use hope_core::{
    AidId, AidState, Checkpoint, Effect, Engine, GuessOutcome, IntervalStatus, ProcessId,
    ReceiveOutcome, Tag,
};

fn engine(n: usize) -> (Engine, Vec<ProcessId>) {
    let mut e = Engine::new();
    e.set_invariant_checking(true);
    let pids = (0..n).map(|_| e.register_process()).collect();
    (e, pids)
}

/// The §3.1 example at engine level: Worker, WorryWart, print server,
/// with the Order violation (S3 overtaking S1) and its repair.
#[test]
fn paper_section_3_1_order_violation() {
    let (mut e, p) = engine(3);
    let (worker, worrywart, printer) = (p[0], p[1], p[2]);

    // Worker: PartPage = aid_init(); Order = aid_init();
    let part_page = e.aid_init(worker);
    let order = e.aid_init(worker);
    // send(WorryWart, PartPage, Order, total) — before any guess: clean.
    let tag0 = e.dependence_tag(worker).unwrap();
    assert!(tag0.is_empty());
    let (out, _) = e.implicit_guess(worrywart, &tag0, Checkpoint(0)).unwrap();
    assert_eq!(out, ReceiveOutcome::Clean);

    // Worker: guess(PartPage); guess(Order).
    e.guess(worker, &[part_page], Checkpoint(1)).unwrap();
    e.guess(worker, &[order], Checkpoint(2)).unwrap();

    // S3's message reaches the printer first: the printer becomes
    // dependent on both assumptions.
    let s3_tag = e.dependence_tag(worker).unwrap();
    assert!(s3_tag.contains(part_page) && s3_tag.contains(order));
    let (out, _) = e.implicit_guess(printer, &s3_tag, Checkpoint(0)).unwrap();
    assert!(matches!(out, ReceiveOutcome::Speculative(_)));

    // S1 (from the WorryWart, still definite) reaches the printer.
    let s1_tag = e.dependence_tag(worrywart).unwrap();
    assert!(s1_tag.is_empty());

    // The printer's *reply* to S1 carries the printer's dependence —
    // including Order — back to the WorryWart.
    let reply_tag = e.dependence_tag(printer).unwrap();
    assert!(reply_tag.contains(order));
    let (out, _) = e
        .implicit_guess(worrywart, &reply_tag, Checkpoint(1))
        .unwrap();
    assert!(matches!(out, ReceiveOutcome::Speculative(_)));

    // free_of(Order) in the WorryWart: the constraint is violated, so the
    // equivalent of deny(Order) executes, rolling back everything
    // dependent on it (Worker from guess(Order), printer, WorryWart).
    let fx = e.free_of(worrywart, order).unwrap();
    assert!(fx.contains(&Effect::AidDenied { aid: order }));
    let victims: Vec<ProcessId> = fx
        .iter()
        .filter_map(|f| match f {
            Effect::RolledBack { process, .. } => Some(*process),
            _ => None,
        })
        .collect();
    assert!(victims.contains(&worker));
    assert!(victims.contains(&printer));
    assert!(victims.contains(&worrywart));
    assert_eq!(e.aid_state(order).unwrap(), AidState::Denied);
    // PartPage survives: the worker's first interval is still live.
    assert_eq!(e.aid_state(part_page).unwrap(), AidState::Undecided);
    assert_eq!(e.history(worker).unwrap().len(), 1);

    // Re-execution: guess(Order) now returns False; the ordering is fixed
    // by construction. The WorryWart then affirms PartPage.
    let (out, _) = e.guess(worker, &[order], Checkpoint(2)).unwrap();
    assert_eq!(out, GuessOutcome::AlreadyFalse(order));
    let fx = e.affirm(worrywart, part_page).unwrap();
    assert!(fx.iter().any(|f| matches!(f, Effect::Finalized { .. })));
    assert!(!e.is_speculative(worker).unwrap());
}

#[test]
fn multi_aid_guess_mixed_states() {
    // One guess over {affirmed, undecided}: only the undecided AID binds.
    let (mut e, p) = engine(2);
    let a = e.aid_init(p[0]);
    let b = e.aid_init(p[0]);
    e.affirm(p[1], a).unwrap();
    let (out, _) = e.guess(p[0], &[a, b], Checkpoint(0)).unwrap();
    let itv = out.interval().unwrap();
    let view = e.interval(itv).unwrap();
    assert!(!view.ido().contains(&a));
    assert!(view.ido().contains(&b));

    // One guess over {denied, undecided}: immediately false, no interval.
    let c = e.aid_init(p[0]);
    let d = e.aid_init(p[0]);
    e.deny(p[1], c).unwrap();
    let before = e.interval_count();
    let (out, fx) = e.guess(p[1], &[d, c], Checkpoint(0)).unwrap();
    assert_eq!(out, GuessOutcome::AlreadyFalse(c));
    assert!(fx.is_empty());
    assert_eq!(e.interval_count(), before);
}

#[test]
fn implicit_guess_deduplicates_against_current_dependence() {
    // Receiving a tag you already depend on adds no new dependence edges
    // but does open a new interval (a fresh rollback granule).
    let (mut e, p) = engine(2);
    let x = e.aid_init(p[0]);
    e.guess(p[0], &[x], Checkpoint(0)).unwrap();
    let tag = e.dependence_tag(p[0]).unwrap();
    e.implicit_guess(p[1], &tag, Checkpoint(0)).unwrap();
    // P1 sends back to P0: P0 re-receives its own dependence.
    let back = e.dependence_tag(p[1]).unwrap();
    assert!(back.contains(x));
    let before = e.history(p[0]).unwrap().len();
    let (out, _) = e.implicit_guess(p[0], &back, Checkpoint(1)).unwrap();
    assert!(matches!(out, ReceiveOutcome::Speculative(_)));
    assert_eq!(e.history(p[0]).unwrap().len(), before + 1);
    // Still exactly one underlying assumption.
    let cur = e.current_interval(p[0]).unwrap().unwrap();
    assert_eq!(e.interval(cur).unwrap().ido().len(), 1);
}

#[test]
fn chained_replacement_keeps_sets_exact() {
    // B ← X; A(Y) affirms X; C guesses X afterwards (resolution rule):
    // everyone must end with IDO = {Y}.
    let (mut e, p) = engine(4);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    let (ob, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
    let b = ob.interval().unwrap();
    e.guess(p[2], &[y], Checkpoint(0)).unwrap();
    e.affirm(p[2], x).unwrap(); // speculative: X ↦ {Y}
    let (oc, _) = e.guess(p[3], &[x], Checkpoint(0)).unwrap();
    let c = oc.interval().unwrap();
    for itv in [b, c] {
        let view = e.interval(itv).unwrap();
        assert_eq!(view.ido().iter().collect::<Vec<_>>(), vec![y]);
    }
    // Definite affirm of Y settles the world.
    let fx = e.affirm(p[0], y).unwrap();
    let finalized = fx
        .iter()
        .filter(|f| matches!(f, Effect::Finalized { .. }))
        .count();
    assert!(finalized >= 3, "{fx:?}");
    assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);
}

#[test]
fn deny_of_replaced_aid_reaches_transferred_dependents() {
    let (mut e, p) = engine(3);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    let (ob, _) = e.guess(p[1], &[x], Checkpoint(0)).unwrap();
    let b = ob.interval().unwrap();
    e.guess(p[2], &[y], Checkpoint(0)).unwrap();
    e.affirm(p[2], x).unwrap(); // B now depends on Y instead
    let fx = e.deny(p[0], y).unwrap();
    assert_eq!(e.interval(b).unwrap().status(), IntervalStatus::RolledBack);
    // Footnote 2: the speculative affirm's AID is conservatively denied.
    assert_eq!(e.aid_state(x).unwrap(), AidState::Denied);
    assert!(fx
        .iter()
        .any(|f| matches!(f, Effect::AidDenied { aid } if *aid == x)));
}

#[test]
fn tags_survive_partial_decisions() {
    // A tag captured while depending on {X, Y}; X is affirmed before
    // delivery: the receiver depends only on Y.
    let (mut e, p) = engine(3);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    e.guess(p[0], &[x], Checkpoint(0)).unwrap();
    e.guess(p[0], &[y], Checkpoint(1)).unwrap();
    let tag = e.dependence_tag(p[0]).unwrap();
    assert_eq!(tag.len(), 2);
    e.affirm(p[1], x).unwrap();
    let (out, _) = e.implicit_guess(p[2], &tag, Checkpoint(0)).unwrap();
    let itv = match out {
        ReceiveOutcome::Speculative(i) => i,
        other => panic!("{other:?}"),
    };
    let view = e.interval(itv).unwrap();
    assert!(!view.ido().contains(&x));
    assert!(view.ido().contains(&y));
    // And once Y is denied the same tag is a ghost.
    e.deny(p[1], y).unwrap();
    let (out, _) = e.implicit_guess(p[2], &tag, Checkpoint(1)).unwrap();
    assert_eq!(out, ReceiveOutcome::Ghost(y));
}

#[test]
fn tag_round_trips_through_raw_indices() {
    // What the runtime does when a tag crosses a simulated wire.
    let (mut e, p) = engine(1);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    e.guess(p[0], &[x], Checkpoint(0)).unwrap();
    e.guess(p[0], &[y], Checkpoint(1)).unwrap();
    let tag = e.dependence_tag(p[0]).unwrap();
    let wire: Vec<u64> = tag.iter().map(AidId::index).collect();
    let back: Tag = wire.into_iter().map(AidId::from_index).collect();
    assert_eq!(tag, back);
}

#[test]
fn interval_views_expose_control_variables() {
    let (mut e, p) = engine(2);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    let (oa, _) = e.guess(p[0], &[x], Checkpoint(7)).unwrap();
    let a = oa.interval().unwrap();
    e.deny(p[0], y).unwrap(); // speculative: lands in A.IHD
    e.affirm(p[0], x).unwrap(); // self-affirm: lands in A.IHA... and
                                // finalizes A (sole dependence), which then
                                // applies the IHD deny of y definitively.
    let view = e.interval(a).unwrap();
    assert_eq!(view.process(), p[0]);
    assert_eq!(view.checkpoint(), Checkpoint(7));
    assert_eq!(view.seq(), 0);
    assert_eq!(view.status(), IntervalStatus::Definite);
    assert!(view.ihd().contains(&y));
    assert!(view.iha().contains(&x));
    assert!(view.guessed().contains(&x));
    assert_eq!(e.aid_state(y).unwrap(), AidState::Denied);
    assert_eq!(e.aid_state(x).unwrap(), AidState::Affirmed);

    // AID views likewise.
    let xv = e.aid(x).unwrap();
    assert_eq!(xv.id(), x);
    assert_eq!(xv.creator(), p[0]);
    assert!(xv.is_consumed());
    assert!(xv.dom().is_empty());
    assert!(xv.speculatively_affirmed_by().is_none());
    assert!(xv.speculatively_denied_by().is_none());
}

#[test]
fn open_aids_tracks_decidability() {
    let (mut e, p) = engine(2);
    let x = e.aid_init(p[0]);
    let y = e.aid_init(p[0]);
    let z = e.aid_init(p[0]);
    assert_eq!(e.open_aids(), vec![x, y, z]);
    e.affirm(p[1], x).unwrap();
    assert_eq!(e.open_aids(), vec![y, z]);
    e.guess(p[0], &[y], Checkpoint(0)).unwrap();
    assert_eq!(e.open_aids(), vec![y, z], "guessing does not consume");
    e.deny(p[0], z).unwrap(); // speculative deny: consumed
    assert_eq!(e.open_aids(), vec![y]);
}

#[test]
fn self_send_tag_is_not_a_ghost_source() {
    // A process receiving its own speculative tag must not be treated as a
    // ghost, and the rollback point is the receive.
    let (mut e, p) = engine(1);
    let x = e.aid_init(p[0]);
    e.guess(p[0], &[x], Checkpoint(0)).unwrap();
    let tag = e.dependence_tag(p[0]).unwrap();
    let (out, _) = e.implicit_guess(p[0], &tag, Checkpoint(1)).unwrap();
    assert!(matches!(out, ReceiveOutcome::Speculative(_)));
    let fx = e.deny(p[0], x).unwrap();
    let rb = fx
        .iter()
        .find_map(|f| match f {
            Effect::RolledBack {
                intervals,
                checkpoint,
                ..
            } => Some((intervals.len(), *checkpoint)),
            _ => None,
        })
        .unwrap();
    // Both intervals discarded, resume at the *first* guess.
    assert_eq!(rb, (2, Checkpoint(0)));
}
