//! Sharded-vs-unsharded differential at the *runtime* layer.
//!
//! The core crate's `sharded_differential` suite proves the engine itself
//! is bit-identical across shard counts; this suite proves the property
//! survives everything the runtime stacks on top — journaling, rollback
//! re-execution, output commit, fault injection, race detection, and the
//! chaos oracle. Every test runs the same scenario with
//! `engine_shards` ∈ {1, 2, 4} and demands the full
//! [`RunReport::fingerprint`] (which already masks the shard-dependent
//! contention counters) be identical, so sharding can never change a
//! committed observable.
//!
//! It also pins the Ctx hot-path lock discipline: one `Shared` lock
//! acquisition per live primitive, measured by the
//! `ctx_lock_acquisitions` counter.

use hope_core::AidId;
use hope_runtime::{
    chaos_sweep, committed_outputs, Ctx, FaultPlan, ProcessId, RunReport, SimConfig, Simulation,
    Value, VirtualDuration,
};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

// ---------------------------------------------------------------------
// scenario corpus
// ---------------------------------------------------------------------

/// Worker/verifier pipeline: four workers each advertise a fresh AID to a
/// verifier, guess it, and speculate; the verifier affirms or denies each.
/// Denied workers roll back and re-execute down the rejected branch, so
/// the scenario exercises cross-process dependence registration, rollback
/// cascades, and output commit — with the verifier and workers landing on
/// different shards whenever `engine_shards > 1`.
fn pipeline(cfg: SimConfig) -> Simulation {
    const WORKERS: u32 = 4;
    let mut sim = Simulation::new(cfg);
    sim.spawn("verifier", move |ctx: &mut Ctx| {
        for _ in 0..WORKERS {
            let m = ctx.recv()?;
            let aid = AidId::from_index(m.payload.as_int().expect("aid advert") as u64);
            if ctx.chance(0.6)? {
                ctx.affirm(aid)?;
                ctx.output(format!("verdict ok {aid}"))?;
            } else {
                ctx.deny(aid)?;
                ctx.output(format!("verdict no {aid}"))?;
            }
        }
        Ok(())
    });
    for w in 0..WORKERS {
        sim.spawn(format!("worker{w}"), move |ctx: &mut Ctx| {
            let verifier = ProcessId(0);
            let aid = ctx.aid_init()?;
            if ctx.guess(aid)? {
                // Advertise from inside the guessed branch: the message tag
                // carries the AID, so the verifier's implicit guess creates
                // a dependence edge that crosses shards when the verifier
                // and worker live on different ones.
                ctx.send(verifier, Value::Int(aid.index() as i64))?;
                ctx.compute(VirtualDuration::from_micros(200 + 50 * w as u64))?;
                ctx.output(format!("worker{w} speculated on {aid}"))?;
            } else {
                ctx.output(format!("worker{w} rejected"))?;
            }
            Ok(())
        });
    }
    sim
}

/// Reliable delivery: HOPE-built retransmission (guess/ack-affirm/timeout-
/// deny) under whatever fault plan the config installs.
fn reliable(cfg: SimConfig) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let receiver = ProcessId(1);
    sim.spawn("sender", move |ctx: &mut Ctx| {
        for i in 0..3 {
            ctx.send_reliable(receiver, Value::Int(i))?;
        }
        Ok(())
    });
    sim.spawn("receiver", |ctx: &mut Ctx| {
        for _ in 0..3 {
            let m = ctx.recv()?;
            ctx.output(format!("got {:?}", m.payload.as_int()))?;
        }
        Ok(())
    });
    sim
}

/// Seeded random scripts over the whole primitive surface, with AIDs
/// shared across processes through message payloads (shape of the chaos
/// suite, compacted). No meaning — just maximal interleaving pressure.
fn chaos(cfg: SimConfig, n_procs: u32) -> Simulation {
    let mut sim = Simulation::new(cfg);
    for i in 0..n_procs {
        sim.spawn(format!("chaos{i}"), move |ctx: &mut Ctx| {
            let me = ctx.pid();
            let mut known: Vec<AidId> = Vec::new();
            for step in 0..12u64 {
                while let Some(m) = ctx.try_recv()? {
                    if let Some(v) = m.payload.as_int() {
                        if v >= 0 {
                            known.push(AidId::from_index(v as u64));
                        }
                    }
                }
                match ctx.random_u64()? % 8 {
                    0..=2 => {
                        let aid = ctx.aid_init()?;
                        let target = ProcessId((ctx.random_u64()? % n_procs as u64) as u32);
                        if target != me {
                            ctx.send(target, Value::Int(aid.index() as i64))?;
                        }
                        if ctx.guess(aid)? {
                            known.push(aid);
                            ctx.output(format!("{me} guessed {aid} at {step}"))?;
                        }
                    }
                    3..=4 => {
                        if !known.is_empty() {
                            let aid = known[(ctx.random_u64()? % known.len() as u64) as usize];
                            if ctx.chance(0.7)? {
                                ctx.affirm(aid)?;
                            } else {
                                ctx.deny(aid)?;
                            }
                        }
                    }
                    5 => {
                        let target = ProcessId((ctx.random_u64()? % n_procs as u64) as u32);
                        ctx.send(target, Value::Int(-1))?;
                    }
                    _ => {
                        let micros = 50 + ctx.random_u64()? % 300;
                        ctx.compute(VirtualDuration::from_micros(micros))?;
                    }
                }
            }
            ctx.output(format!("{me} done"))?;
            Ok(())
        });
    }
    sim
}

// ---------------------------------------------------------------------
// twin-run fingerprint differential
// ---------------------------------------------------------------------

/// Run `scenario` once per shard count and assert every committed
/// observable — the whole fingerprint, the committed output map, the race
/// reports — is identical to the 1-shard reference run.
fn assert_twins(
    label: &str,
    scenario: impl Fn(SimConfig) -> Simulation,
    cfg: impl Fn() -> SimConfig,
) {
    let reference: RunReport = scenario(cfg().with_engine_shards(1)).run();
    for shards in SHARD_COUNTS.into_iter().skip(1) {
        let twin = scenario(cfg().with_engine_shards(shards)).run();
        assert_eq!(
            reference.fingerprint(),
            twin.fingerprint(),
            "{label}: fingerprint diverged at {shards} shards"
        );
        assert_eq!(
            committed_outputs(&reference),
            committed_outputs(&twin),
            "{label}: committed outputs diverged at {shards} shards"
        );
        assert_eq!(
            format!("{:?}", reference.races()),
            format!("{:?}", twin.races()),
            "{label}: race reports diverged at {shards} shards"
        );
    }
}

#[test]
fn pipeline_is_bit_identical_across_shard_counts() {
    for seed in 0..10 {
        assert_twins("pipeline", pipeline, || {
            SimConfig::with_seed(seed).commit_at_quiescence()
        });
    }
}

#[test]
fn reliable_under_faults_is_bit_identical_across_shard_counts() {
    for seed in 0..6 {
        assert_twins("reliable", reliable, || {
            SimConfig::with_seed(seed)
                .with_faults(FaultPlan::new(seed).drop_rate(0.3).dupe_rate(0.1))
        });
    }
}

#[test]
fn chaos_is_bit_identical_across_shard_counts() {
    for seed in 0..8 {
        assert_twins(
            "chaos",
            |cfg| chaos(cfg, 4),
            || SimConfig::with_seed(seed).commit_at_quiescence(),
        );
    }
}

#[test]
fn race_detection_is_bit_identical_across_shard_counts() {
    for seed in 0..6 {
        assert_twins(
            "races",
            |cfg| chaos(cfg, 3),
            || SimConfig::with_seed(seed).detect_races(true),
        );
    }
}

// ---------------------------------------------------------------------
// chaos oracle with sharding enabled
// ---------------------------------------------------------------------

/// The full chaos oracle (fault-plan equivalence + per-plan replayability)
/// holds with the sharded engine underneath, and the sharded sweep commits
/// exactly what the unsharded sweep commits.
#[test]
fn chaos_sweep_agrees_between_sharded_and_unsharded() {
    let plans = || (0..5).map(|s| FaultPlan::new(s).drop_rate(0.25).dupe_rate(0.15));
    let single = chaos_sweep(SimConfig::with_seed(11), plans(), reliable);
    let sharded = chaos_sweep(
        SimConfig::with_seed(11).with_engine_shards(4),
        plans(),
        reliable,
    );
    single.assert_ok();
    sharded.assert_ok();
    assert_eq!(single.baseline, sharded.baseline);
}

// ---------------------------------------------------------------------
// tracking counters
// ---------------------------------------------------------------------

/// With one shard there is no boundary to cross; with four, the pipeline's
/// cross-process dependence edges must be counted as cross-shard traffic.
/// Either way the counters stay out of the fingerprint (asserted above).
#[test]
fn tracking_counters_reflect_shard_boundaries() {
    let cfg = || SimConfig::with_seed(3).commit_at_quiescence();
    let single = pipeline(cfg().with_engine_shards(1)).run();
    assert_eq!(single.stats().tracking.cross_shard_messages, 0);
    let sharded = pipeline(cfg().with_engine_shards(4)).run();
    assert!(
        sharded.stats().tracking.cross_shard_messages > 0,
        "verifier deciding worker-hosted AIDs must cross shards: {:?}",
        sharded.stats().tracking
    );
}

// ---------------------------------------------------------------------
// Ctx hot-path lock discipline (pinned)
// ---------------------------------------------------------------------

/// Every live primitive takes the `Shared` lock exactly once. The body
/// below issues 4 × 50 = 200 non-blocking primitives and nothing else; the
/// pre-audit hot path (budget check and primitive each locking separately)
/// would report ≥ 400 acquisitions, so the 220 ceiling pins the fix.
#[test]
fn ctx_takes_one_lock_per_live_primitive() {
    let mut sim = Simulation::new(SimConfig::with_seed(1));
    sim.spawn("counter", |ctx: &mut Ctx| {
        for _ in 0..50 {
            let aid = ctx.aid_init()?;
            ctx.guess(aid)?;
            ctx.affirm(aid)?;
            ctx.output("line")?;
        }
        Ok(())
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{:?}", report.errors());
    let locks = report.stats().ctx_lock_acquisitions;
    assert!(
        (200..=220).contains(&locks),
        "expected one Shared lock per live primitive (200 primitives, \
         small scheduler slack), measured {locks}"
    );
}

/// The lock counter is diagnostics, not semantics: it must not perturb the
/// determinism fingerprint (twin runs of the same seed already share a
/// count, but the fingerprint must also ignore it entirely, like the
/// DepSet cow/spill deltas).
#[test]
fn lock_counter_is_excluded_from_fingerprint() {
    let run = || {
        let mut sim = Simulation::new(SimConfig::with_seed(5));
        sim.spawn("p", |ctx: &mut Ctx| {
            let aid = ctx.aid_init()?;
            ctx.guess(aid)?;
            ctx.affirm(aid)?;
            ctx.output("done")?;
            Ok(())
        });
        sim.run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert!(a.stats().ctx_lock_acquisitions > 0);
}
