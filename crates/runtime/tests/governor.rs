//! Behavioural and determinism suite for the speculation admission
//! governor (`hope_runtime::governor`).
//!
//! Three properties are pinned here:
//!
//! 1. **Engagement** — a sustained deny storm really does escalate the
//!    stormed site Optimistic → Throttled → Conservative, and a return to
//!    calm demotes it again (hysteresis): the governor is not decorative.
//! 2. **Inertness when calm** — with no denies the governor never leaves
//!    Optimistic, holds nothing, converts nothing, and the run's
//!    fingerprint is bit-identical to the governor-off run: enabling the
//!    feature on a healthy system costs exactly one branch per guess.
//! 3. **Determinism** — the mode-transition trace is a pure function of
//!    `(seed, config)`: identical across reruns, across 1/2/4 engine
//!    shards, and invariant under fossil collection (proptest-driven).
//!
//! The fault-space half of the transparency claim (committed outputs
//! governor-on ≡ governor-off under seeded fault plans) lives in
//! `tests/chaos_equivalence.rs`; the schedule-space half in
//! `hope_runtime::mc`'s `governor_preserves_outcome_set`.

use hope_core::AidId;
use hope_runtime::{
    Ctx, GovernorConfig, GovernorMode, ProcessId, RunReport, SimConfig, Simulation, Value,
    VirtualDuration,
};
use proptest::prelude::*;

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

/// An aggressive governor: evaluates from the first observed outcome and
/// escalates quickly, so short scenarios still cross every mode boundary.
fn aggressive() -> GovernorConfig {
    GovernorConfig::default()
        .with_window(6)
        .with_min_samples(2)
        .with_thresholds(150, 700)
        .with_hold(ms(1))
        .with_probe_after(4)
}

/// Guesser/verifier loop with a scripted verdict pattern: the verifier
/// denies round `r` iff `deny_rounds` has bit `r % 64` set, so a run is a
/// deterministic storm/calm schedule. Rounds ride `checkpoint`/`restore`
/// so the same scenario is valid under fossil collection, and the AID
/// advert rides `send_reliable` so fault plans cannot lose it.
fn scripted_scenario(cfg: SimConfig, rounds: i64, deny_rounds: u64) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let verifier = ProcessId(1);
    sim.spawn("guesser", move |ctx: &mut Ctx| {
        let mut i = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while i < rounds {
            ctx.checkpoint(Value::Int(i))?;
            let aid = ctx.aid_init()?;
            ctx.send_reliable(verifier, Value::Int(aid.index() as i64))?;
            if ctx.guess(aid)? {
                ctx.output(format!("round {i}: fast path"))?;
            } else {
                ctx.output(format!("round {i}: slow path"))?;
            }
            ctx.compute(VirtualDuration::from_micros(150))?;
            i += 1;
        }
        ctx.output("guesser done")?;
        Ok(())
    });
    sim.spawn("verifier", move |ctx: &mut Ctx| {
        let mut seen = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while seen < rounds {
            ctx.checkpoint(Value::Int(seen))?;
            let m = ctx.recv()?;
            let aid = AidId::from_index(m.payload.expect_int() as u64);
            if deny_rounds >> (seen as u64 % 64) & 1 == 1 {
                ctx.deny(aid)?;
            } else {
                ctx.affirm(aid)?;
            }
            seen += 1;
        }
        Ok(())
    });
    sim
}

/// Moderate deny pressure throttles: with the circuit breaker pushed out
/// of reach, a one-in-three deny pattern (pressure ≈ 333‰ × damage,
/// comfortably above the 150 throttle threshold, far below the breaker)
/// drives the guess site to Throttled — every subsequent guess is held
/// for the configured duration before admission — and the calm tail
/// demotes it back to Optimistic via hysteresis.
#[test]
fn moderate_denies_throttle_and_calm_demotes() {
    // rounds 0..21: deny every 3rd; rounds 21..36: all affirmed.
    let deny_every_3rd = 0b001_001_001_001_001_001_001u64;
    let cfg = aggressive().with_thresholds(150, 50_000);
    let report = scripted_scenario(
        SimConfig::with_seed(7).with_governor(cfg),
        36,
        deny_every_3rd,
    )
    .run();
    assert!(report.completed(), "{:?}", report.errors());
    let g = report.stats().governor;
    assert!(g.denials_observed >= 7, "{g:?}");
    assert!(g.held > 0, "moderate storm never throttled: {g:?}");
    assert_eq!(g.converted, 0, "breaker must stay out of reach: {g:?}");
    assert!(g.rollback_damage > 0, "denies must charge damage: {g:?}");
    let trs = report.governor_transitions();
    assert!(
        trs.iter().any(|t| t.to == GovernorMode::Throttled),
        "no Throttled transition: {trs:?}"
    );
    assert_eq!(
        trs.last().map(|t| t.to),
        Some(GovernorMode::Optimistic),
        "calm tail must demote back to Optimistic: {trs:?}"
    );
    // Degradation never changes what commits: denied rounds took the slow
    // branch, the calm tail the fast branch, nothing was lost.
    let lines = report.output_lines();
    assert!(lines.contains(&"round 0: slow path"));
    assert!(lines.contains(&"round 1: fast path"));
    assert!(lines.contains(&"round 35: fast path"));
    assert!(lines.contains(&"guesser done"));
}

/// A dense deny storm breaks the circuit: twenty denies back-to-back
/// trip the site straight to Conservative (guesses become waits, bar the
/// periodic probe), and the calm tail demotes it. Probing is what lets
/// the demotion happen at all — a Conservative site only learns the
/// storm ended because waits and probes keep feeding its window.
#[test]
fn dense_storm_degrades_to_conservative_and_recovers() {
    let deny_first_20 = (1u64 << 20) - 1;
    let report = scripted_scenario(
        SimConfig::with_seed(7).with_governor(aggressive()),
        40,
        deny_first_20,
    )
    .run();
    assert!(report.completed(), "{:?}", report.errors());
    let g = report.stats().governor;
    assert!(g.denials_observed >= 20, "{g:?}");
    assert!(g.affirms_observed >= 20, "{g:?}");
    assert!(g.converted > 0, "storm never degraded to waits: {g:?}");
    assert!(g.probes > 0, "conservative site never probed: {g:?}");
    assert!(g.rollback_damage > 0, "denies must charge damage: {g:?}");
    let trs = report.governor_transitions();
    assert!(
        trs.iter().any(|t| t.to == GovernorMode::Conservative),
        "breaker never tripped: {trs:?}"
    );
    assert_eq!(
        trs.last().map(|t| t.to),
        Some(GovernorMode::Optimistic),
        "calm tail must demote back to Optimistic: {trs:?}"
    );
    // Full degradation never changes what commits: the storm rounds all
    // took the denied branch — by waiting for the verdict instead of
    // speculating and rolling back — and the calm rounds the fast branch.
    let lines = report.output_lines();
    assert!(lines.contains(&"round 0: slow path"));
    assert!(lines.contains(&"round 19: slow path"));
    assert!(lines.contains(&"round 39: fast path"));
    assert!(lines.contains(&"guesser done"));
}

/// Transparency when healthy: an all-affirm run with the governor on has
/// zero holds, zero conversions, zero transitions — and the same
/// fingerprint as the governor-off run, because `RunReport::fingerprint`
/// masks the (intentionally observational) governor counters and an
/// inert governor perturbs nothing else.
#[test]
fn fault_free_governor_is_inert_and_fingerprint_invisible() {
    let on = scripted_scenario(SimConfig::with_seed(9).with_governor(aggressive()), 24, 0).run();
    let off = scripted_scenario(SimConfig::with_seed(9), 24, 0).run();
    assert!(on.completed(), "{:?}", on.errors());
    let g = on.stats().governor;
    assert_eq!(g.held, 0, "{g:?}");
    assert_eq!(g.converted, 0, "{g:?}");
    assert_eq!(g.transitions, 0, "{g:?}");
    // 24 explicit guesses plus 24 reliable-send delivery guesses: the
    // governor watches both sites.
    assert_eq!(g.admitted, 48, "{g:?}");
    assert!(on.governor_transitions().is_empty());
    assert_eq!(
        on.fingerprint(),
        off.fingerprint(),
        "an inert governor must be invisible to the determinism fingerprint"
    );
}

/// Collect the transition trace of one configured run, plus its
/// fingerprint, for the determinism differentials below.
fn trace_of(cfg: SimConfig, rounds: i64, deny_rounds: u64) -> (RunReport, String) {
    let report = scripted_scenario(cfg, rounds, deny_rounds).run();
    let rendered = report
        .governor_transitions()
        .iter()
        .map(|t| format!("{}/{}@{:?}:{}->{}", t.process.0, t.site, t.at, t.from, t.to))
        .collect::<Vec<_>>()
        .join(";");
    (report, rendered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The mode-transition trace is a pure function of `(seed, config)`:
    /// rerunning the same configuration reproduces it bit-for-bit, engine
    /// sharding (1/2/4) does not reorder or rename a single transition,
    /// and fossil collection — which truncates the very journals whose
    /// suffix lengths feed the damage EWMA — never perturbs it either,
    /// because damage is charged at rollback time, not read back from
    /// retained journals.
    #[test]
    fn transition_trace_is_pure_function_of_seed_and_config(
        seed in 0u64..500,
        deny_rounds in 0u64..u64::MAX,
        window in 2usize..10,
        threshold in 100u64..600,
    ) {
        let cfg = || {
            SimConfig::with_seed(seed).with_governor(
                GovernorConfig::default()
                    .with_window(window)
                    .with_min_samples(2)
                    .with_thresholds(threshold, threshold * 4)
                    .with_hold(ms(1)),
            )
        };
        let (reference, ref_trace) = trace_of(cfg(), 24, deny_rounds);
        let (rerun, rerun_trace) = trace_of(cfg(), 24, deny_rounds);
        prop_assert_eq!(&ref_trace, &rerun_trace, "rerun diverged");
        prop_assert_eq!(reference.fingerprint(), rerun.fingerprint());
        for shards in [2usize, 4] {
            let (twin, twin_trace) =
                trace_of(cfg().with_engine_shards(shards), 24, deny_rounds);
            prop_assert_eq!(&ref_trace, &twin_trace, "diverged at {} shards", shards);
            prop_assert_eq!(reference.fingerprint(), twin.fingerprint());
        }
        let (collected, collected_trace) =
            trace_of(cfg().with_fossil_collection(true), 24, deny_rounds);
        prop_assert_eq!(&ref_trace, &collected_trace, "fossil collection diverged");
        prop_assert_eq!(reference.fingerprint(), collected.fingerprint());
    }
}
