//! Safety-limit behaviour: runaway simulations stop cleanly.

use hope_runtime::{SimConfig, Simulation, Value};
use hope_sim::{VirtualDuration, VirtualTime};

#[test]
fn max_virtual_time_stops_the_clock() {
    let cfg = SimConfig::default()
        .with_max_virtual_time(VirtualTime::ZERO + VirtualDuration::from_millis(10));
    let mut sim = Simulation::new(cfg);
    sim.spawn("ticker", |ctx| loop {
        ctx.compute(VirtualDuration::from_millis(1))?;
        ctx.output("tick")?;
    });
    let report = sim.run();
    assert!(report.hit_limits());
    assert!(!report.completed());
    assert!(report.end_time() <= VirtualTime::ZERO + VirtualDuration::from_millis(10));
    // Roughly ten ticks committed before the horizon.
    assert!(report.outputs().len() >= 9, "{report}");
    assert!(report.outputs().len() <= 11, "{report}");
}

#[test]
fn limits_do_not_corrupt_partial_results() {
    // Two processes ping-pong forever; stopping at the event cap must
    // still leave consistent, committed prefixes.
    let cfg = SimConfig::with_seed(5).with_max_events(40);
    let mut sim = Simulation::new(cfg);
    let b = hope_runtime::ProcessId(1);
    sim.spawn("a", move |ctx| {
        let mut i = 0i64;
        loop {
            let r = ctx.rpc(b, Value::Int(i))?;
            i = r.expect_int();
            ctx.output(format!("a got {i}"))?;
        }
    });
    sim.spawn("b", |ctx| loop {
        let req = ctx.recv()?;
        ctx.reply(&req, Value::Int(req.payload.expect_int() + 1))?;
    });
    let report = sim.run();
    assert!(report.hit_limits());
    // The committed lines are an uninterrupted prefix 1, 2, 3, …
    for (idx, line) in report.output_lines().iter().enumerate() {
        assert_eq!(*line, format!("a got {}", idx + 1));
    }
    assert!(!report.outputs().is_empty());
}

#[test]
fn zero_process_simulation_with_limits_is_trivially_complete() {
    let report = Simulation::new(SimConfig::default().with_max_events(1)).run();
    assert!(report.completed());
    assert_eq!(report.events(), 0);
}
