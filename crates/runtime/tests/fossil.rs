//! Fossil collection: bounded memory on open-loop runs, truncation-safe
//! crash recovery, and the typed journal-overflow crash.
//!
//! The engine's commit horizon (GVT analogue) finalizes a growing prefix
//! of every process's history; with
//! [`SimConfig::with_fossil_collection`] the scheduler periodically
//! reclaims everything at or below it — engine interval/AID records and,
//! for bodies using the [`Ctx::restore`]/[`Ctx::checkpoint`] protocol,
//! journal prefixes. Collection must be *transparent*: committed outputs
//! and fault statistics are bit-identical with collection on or off.

use hope_core::AidId;
use hope_runtime::{ProcessId, RunReport, SimConfig, Simulation, Value};
use hope_sim::{FaultPlan, LatencyModel, Topology, VirtualDuration};

fn us(v: u64) -> VirtualDuration {
    VirtualDuration::from_micros(v)
}

/// The open-loop pair: a guesser that checkpoints at every iteration and
/// a definite verifier that affirms each announced assumption. The
/// affirm stream keeps the commit horizon trailing a small constant
/// distance behind the guesser, so live state is O(window), not O(iters).
fn open_loop(cfg: SimConfig, iters: i64) -> Simulation {
    let mut sim = Simulation::new(cfg);
    let verifier = ProcessId(1);
    sim.spawn("guesser", move |ctx| {
        let mut i = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while i < iters {
            ctx.checkpoint(Value::Int(i))?;
            let aid = ctx.aid_init()?;
            ctx.send(verifier, Value::Int(aid.index() as i64))?;
            let _ = ctx.guess(aid)?;
            ctx.compute(us(100))?;
            i += 1;
        }
        ctx.output(format!("guessed {iters}"))?;
        Ok(())
    });
    sim.spawn("verifier", move |ctx| {
        let mut seen = match ctx.restore()? {
            Some(v) => v.expect_int(),
            None => 0,
        };
        while seen < iters {
            ctx.checkpoint(Value::Int(seen))?;
            let m = ctx.recv()?;
            ctx.affirm(AidId::from_index(m.payload.expect_int() as u64))?;
            seen += 1;
        }
        ctx.output(format!("affirmed {iters}"))?;
        Ok(())
    });
    sim
}

fn fast_lan(seed: u64) -> SimConfig {
    SimConfig::with_seed(seed).with_topology(Topology::uniform(LatencyModel::Fixed(us(50))))
}

/// Everything the oracle compares across collection on/off. Memory
/// counters are deliberately excluded — they are the one thing collection
/// is *supposed* to change.
fn visible_outcome(r: &RunReport) -> (Vec<String>, u64, u64, u64, String) {
    (
        r.output_lines().iter().map(|s| s.to_string()).collect(),
        r.stats().rollback_events,
        r.stats().replays,
        r.stats().ghosts_dropped,
        format!("{:?}", r.stats().faults),
    )
}

#[test]
fn open_loop_memory_is_bounded_by_the_horizon() {
    const ITERS: i64 = 5000;
    let report = open_loop(fast_lan(7).with_fossil_collection(true), ITERS).run();
    assert!(report.completed(), "{report}");
    let mem = report.stats().memory;
    // The horizon swept past (almost) the whole run…
    assert!(
        mem.reclaimed_intervals > (ITERS as u64) / 2,
        "horizon never advanced: {mem:?}"
    );
    assert!(mem.reclaimed_aids > (ITERS as u64) / 2, "{mem:?}");
    assert!(mem.reclaimed_journal_entries > (ITERS as u64), "{mem:?}");
    assert!(mem.interval_horizon > 0 && mem.aid_horizon > 0, "{mem:?}");
    // …leaving live state bounded by the speculation window plus one sweep
    // period, independent of ITERS.
    assert!(
        mem.live_intervals < 2048,
        "live intervals not bounded: {mem:?}"
    );
    assert!(mem.live_aids < 2048, "{mem:?}");
    assert!(
        mem.live_journal_entries < 8192,
        "journal prefixes not reclaimed: {mem:?}"
    );
    // Nothing here was denied, so no denied-fossil residue accumulates.
    assert_eq!(mem.fossil_denied, 0, "{mem:?}");
}

#[test]
fn collection_is_transparent_on_the_fault_free_run() {
    const ITERS: i64 = 800;
    let on = open_loop(fast_lan(11).with_fossil_collection(true), ITERS).run();
    let off = open_loop(fast_lan(11), ITERS).run();
    assert!(on.completed() && off.completed(), "{on}\n{off}");
    assert_eq!(visible_outcome(&on), visible_outcome(&off));
    assert_eq!(
        on.end_time(),
        off.end_time(),
        "collection cost virtual time"
    );
    // The off run kept everything; the on run reclaimed most of it.
    assert_eq!(off.stats().memory.reclaimed_intervals, 0);
    assert!(on.stats().memory.reclaimed_intervals > 0);
    assert!(on.stats().memory.live_intervals < off.stats().memory.live_intervals);
}

#[test]
fn checkpointing_body_survives_a_journal_limit_that_kills_the_naive_one() {
    const ITERS: i64 = 2000;
    // ~5 journal entries per iteration: far past 512 total, comfortably
    // under 512 live once prefixes are reclaimed.
    let cfg = || fast_lan(3).with_max_journal_entries(512);
    let with = open_loop(cfg().with_fossil_collection(true), ITERS).run();
    assert!(with.completed(), "{with}");
    assert!(with.stats().memory.reclaimed_journal_entries > 0);

    let without = open_loop(cfg(), ITERS).run();
    assert!(!without.completed());
    assert!(
        without
            .crash_reasons()
            .values()
            .any(|r| matches!(r, hope_runtime::CrashReason::JournalOverflow { limit: 512 })),
        "{:?}",
        without.crash_reasons()
    );
}

#[test]
fn journal_overflow_is_a_typed_recoverable_error() {
    let mut sim = Simulation::new(SimConfig::with_seed(1).with_max_journal_entries(64));
    let p = sim.spawn("spinner", |ctx| loop {
        ctx.compute(us(10))?;
    });
    sim.spawn("bystander", |ctx| {
        ctx.compute(us(5))?;
        ctx.output("bystander fine")?;
        Ok(())
    });
    let report = sim.run();
    assert!(!report.completed());
    assert_eq!(
        report.crash_reasons().get(&p),
        Some(&hope_runtime::CrashReason::JournalOverflow { limit: 64 })
    );
    assert_eq!(
        report.errors().get(&p).map(String::as_str),
        Some("journal grew past 64 live entries")
    );
    // The overflow is contained: the other process still committed.
    assert_eq!(report.output_lines(), vec!["bystander fine"]);
    assert!(
        !report.hit_limits(),
        "overflow must not be an event-cap spin"
    );
}

#[test]
fn crash_restart_replays_from_the_horizon_snapshot() {
    const ITERS: i64 = 600;
    // Kill the guesser mid-run (restarting after a delay), with enough
    // iterations behind the kill that collection has certainly truncated
    // its journal prefix — recovery must resume from the snapshot.
    let plan = || FaultPlan::new(5).kill(0, 1200, Some(VirtualDuration::from_millis(2)));
    let faulty_on = open_loop(
        fast_lan(13)
            .with_fossil_collection(true)
            .with_faults(plan()),
        ITERS,
    )
    .run();
    let faulty_off = open_loop(fast_lan(13).with_faults(plan()), ITERS).run();
    let clean = open_loop(fast_lan(13), ITERS).run();
    assert!(faulty_on.completed(), "{faulty_on}");
    assert!(faulty_on.stats().faults.kills == 1 && faulty_on.stats().faults.restarts == 1);
    // Same faults, same visible outcome, with and without collection…
    assert_eq!(visible_outcome(&faulty_on), visible_outcome(&faulty_off));
    // …and the committed lines match the fault-free run (the chaos
    // equivalence property, now compatible with truncated journals).
    assert_eq!(faulty_on.output_lines(), clean.output_lines());
    // The restart actually exercised the truncated-prefix path.
    assert!(
        faulty_on.stats().memory.reclaimed_journal_entries > 0,
        "{:?}",
        faulty_on.stats().memory
    );
}

#[test]
fn determinism_holds_with_collection_enabled() {
    let fp = |seed| {
        open_loop(fast_lan(seed).with_fossil_collection(true), 400)
            .run()
            .fingerprint()
    };
    for seed in [2, 9, 21] {
        assert_eq!(fp(seed), fp(seed), "seed {seed}");
    }
}
