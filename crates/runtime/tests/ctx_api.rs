//! Integration tests for the full `Ctx` API surface, including the parts
//! the in-crate scenario tests don't reach: non-blocking receives,
//! selective receives, journaled queries, and replay behaviour of each.

use hope_core::AidId;
use hope_runtime::{MsgKind, ProcessId, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, Topology, VirtualDuration, VirtualTime};

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

#[test]
fn try_recv_returns_none_when_empty_and_some_when_queued() {
    let mut sim = Simulation::new(SimConfig::default());
    let receiver = ProcessId(0);
    sim.spawn("receiver", |ctx| {
        // Nothing queued yet.
        assert!(ctx.try_recv()?.is_none());
        // Wait long enough for the sender's message.
        ctx.compute(ms(10))?;
        let m = ctx.try_recv()?.expect("message queued by now");
        assert_eq!(m.payload, Value::Int(5));
        assert!(ctx.try_recv()?.is_none());
        ctx.output("try_recv exercised")?;
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.send(receiver, Value::Int(5))?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.output_lines(), vec!["try_recv exercised"]);
}

#[test]
fn recv_matching_leaves_non_matching_messages() {
    let mut sim = Simulation::new(SimConfig::default());
    let receiver = ProcessId(0);
    sim.spawn("receiver", |ctx| {
        // Take the Int(2) first even though Int(1) arrives earlier.
        let two = ctx.recv_matching(|m| m.payload == Value::Int(2))?;
        assert_eq!(two.payload, Value::Int(2));
        let one = ctx.recv()?;
        assert_eq!(one.payload, Value::Int(1));
        ctx.output("selective receive ok")?;
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.send(receiver, Value::Int(1))?;
        ctx.compute(ms(1))?;
        ctx.send(receiver, Value::Int(2))?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.output_lines(), vec!["selective receive ok"]);
}

#[test]
fn try_recv_matching_is_selective_and_non_blocking() {
    let mut sim = Simulation::new(SimConfig::default());
    let receiver = ProcessId(0);
    sim.spawn("receiver", |ctx| {
        ctx.compute(ms(5))?;
        // Both queued; only the matching one is taken.
        assert!(ctx
            .try_recv_matching(|m| m.payload == Value::Int(9))?
            .is_none());
        let m = ctx
            .try_recv_matching(|m| m.payload == Value::Int(2))?
            .expect("two is queued");
        assert_eq!(m.payload, Value::Int(2));
        // Int(1) still queued.
        assert_eq!(ctx.recv()?.payload, Value::Int(1));
        Ok(())
    });
    sim.spawn("sender", move |ctx| {
        ctx.send(receiver, Value::Int(1))?;
        ctx.send(receiver, Value::Int(2))?;
        Ok(())
    });
    assert!(sim.run().completed());
}

#[test]
fn now_random_and_flags_replay_identically() {
    // A process samples time/randomness/speculation state, then is rolled
    // back; the replayed prefix must return identical values (summed into
    // the committed output).
    let mut sim = Simulation::new(SimConfig::with_seed(8));
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let t0: VirtualTime = ctx.now()?;
        let r0 = ctx.random_u64()?;
        let spec0 = ctx.is_speculative()?;
        assert!(!spec0);
        ctx.compute(ms(2))?;
        let t1 = ctx.now()?;
        assert!(t1 > t0);
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        let flag = ctx.guess(aid)?;
        let spec1 = ctx.is_speculative()?;
        if flag {
            assert!(spec1);
            ctx.compute(ms(1))?;
        }
        // After the deny, this line re-executes with the *same* t0/r0 via
        // replay; committing it pins the values.
        ctx.output(format!("t0={} r0={} flag={flag}", t0.as_nanos(), r0 % 1000))?;
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.stats().replays, 1);
    let line = report.output_lines()[0].to_string();
    assert!(line.contains("t0=0 "), "{line}");
    assert!(line.ends_with("flag=false"), "{line}");

    // Re-run the identical world: the committed line is bit-identical,
    // proving now()/random_u64() replay rather than re-sample.
    let mut sim2 = Simulation::new(SimConfig::with_seed(8));
    sim2.spawn("worker", move |ctx| {
        let t0: VirtualTime = ctx.now()?;
        let r0 = ctx.random_u64()?;
        let _ = ctx.is_speculative()?;
        ctx.compute(ms(2))?;
        let _ = ctx.now()?;
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        let flag = ctx.guess(aid)?;
        let _ = ctx.is_speculative()?;
        if flag {
            ctx.compute(ms(1))?;
        }
        ctx.output(format!("t0={} r0={} flag={flag}", t0.as_nanos(), r0 % 1000))?;
        Ok(())
    });
    sim2.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report2 = sim2.run();
    assert_eq!(report2.output_lines()[0], line);
}

#[test]
fn chance_is_journaled_through_rollback() {
    let mut sim = Simulation::new(SimConfig::with_seed(21));
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let draws: Vec<bool> = (0..8).map(|_| ctx.chance(0.5)).collect::<Result<_, _>>()?;
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        let _ = ctx.guess(aid)?;
        // Re-draw after the guess: these journal entries are truncated by
        // the rollback and re-drawn live, while `draws` replays.
        let post: Vec<bool> = (0..4).map(|_| ctx.chance(0.5)).collect::<Result<_, _>>()?;
        ctx.output(format!("pre={draws:?} post={post:?}"))?;
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    // One committed line; the prefix draws survived the rollback.
    assert_eq!(report.outputs().len(), 1);
    assert_eq!(report.stats().replays, 1);
}

#[test]
fn rpc_roundtrips_values_and_kinds() {
    let mut sim = Simulation::new(SimConfig::default());
    let server = ProcessId(1);
    sim.spawn("client", move |ctx| {
        let r = ctx.rpc(server, Value::Str("ping".into()))?;
        assert_eq!(r, Value::Str("pong".into()));
        // send_request without collecting the reply is also legal.
        let call = ctx.send_request(server, Value::Str("ping".into()))?;
        let m = ctx.recv_matching(move |m| m.is_reply_to(call))?;
        assert_eq!(m.kind, MsgKind::Reply(call));
        ctx.output("rpc ok")?;
        Ok(())
    });
    sim.spawn("server", |ctx| {
        for _ in 0..2 {
            let req = ctx.recv()?;
            assert!(matches!(req.kind, MsgKind::Request(_)));
            ctx.reply(&req, Value::Str("pong".into()))?;
        }
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.output_lines(), vec!["rpc ok"]);
}

#[test]
fn replaying_flag_is_visible_only_during_replay() {
    let mut sim = Simulation::new(SimConfig::default());
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        // On the first run this is live; after rollback it replays.
        let was_replaying_at_start = ctx.replaying();
        ctx.compute(ms(1))?;
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        if ctx.guess(aid)? {
            ctx.compute(ms(1))?;
        } else {
            // Live again by the time the re-executed guess returns.
            assert!(!ctx.replaying());
            ctx.output(format!("started replaying={was_replaying_at_start}"))?;
        }
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(2))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    assert_eq!(report.output_lines(), vec!["started replaying=true"]);
}

#[test]
fn self_send_is_delivered_immediately() {
    let mut sim = Simulation::new(
        SimConfig::default().topology(Topology::uniform(LatencyModel::Fixed(ms(50)))),
    );
    let me = ProcessId(0);
    sim.spawn("loner", move |ctx| {
        ctx.send(me, Value::Int(7))?;
        let m = ctx.recv()?;
        assert_eq!(m.payload, Value::Int(7));
        assert_eq!(m.from, me);
        // Self-sends bypass the 50ms links.
        assert_eq!(ctx.now()?, VirtualTime::ZERO);
        ctx.output("self-send ok")?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
}

#[test]
fn pid_matches_spawn_order() {
    let mut sim = Simulation::new(SimConfig::default());
    let a = sim.spawn("a", |ctx| {
        assert_eq!(ctx.pid(), ProcessId(0));
        Ok(())
    });
    let b = sim.spawn("b", |ctx| {
        assert_eq!(ctx.pid(), ProcessId(1));
        Ok(())
    });
    assert_eq!((a, b), (ProcessId(0), ProcessId(1)));
    assert_eq!(sim.process_count(), 2);
    assert!(sim.run().completed());
}

#[test]
fn deep_nested_speculation_unwinds_to_the_right_guess() {
    // Five nested guesses; deny the middle one: the process re-executes
    // from guess 3 with the outer two intact.
    let mut sim = Simulation::new(SimConfig::with_seed(2));
    let judge = ProcessId(1);
    sim.spawn("nester", move |ctx| {
        let mut flags = Vec::new();
        for i in 0..5 {
            let aid = ctx.aid_init()?;
            // Ship every AID to the (definite) judge *before* guessing, so
            // the judge can settle them without becoming speculative.
            ctx.send(
                judge,
                Value::List(vec![Value::Int(i), Value::Int(aid.index() as i64)]),
            )?;
            flags.push(ctx.guess(aid)?);
            ctx.compute(ms(1))?;
        }
        ctx.output(format!("flags={flags:?}"))?;
        Ok(())
    });
    sim.spawn("judge", |ctx| {
        // Collect all five AIDs first (their tags carry the nester's
        // earlier guards, but FIFO + the final settle order keeps us
        // definite for the deny: process them after a delay, denying #2
        // first, then affirming the rest).
        let mut aids = vec![None; 5];
        let mut seen = 0;
        while seen < 5 {
            let m = ctx.recv()?;
            let items = m.payload.expect_list();
            let i = items[0].expect_int() as usize;
            aids[i] = Some(AidId::from_index(items[1].expect_int() as u64));
            seen += 1;
        }
        ctx.compute(ms(10))?;
        ctx.deny(aids[2].unwrap())?;
        for (i, aid) in aids.into_iter().enumerate() {
            if i != 2 {
                ctx.affirm(aid.unwrap())?;
            }
        }
        Ok(())
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    assert_eq!(
        report.output_lines(),
        vec!["flags=[true, true, false, true, true]"],
        "{report}"
    );
    // Both the nester and the judge (which was speculative through the
    // announcement tags when it issued the self-denying deny) re-execute.
    assert_eq!(report.stats().replays, 2);
}

#[test]
fn trace_records_the_full_story() {
    let mut sim = Simulation::new(SimConfig::with_seed(3).traced());
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        if ctx.guess(aid)? {
            ctx.output("optimistic")?;
        } else {
            ctx.output("pessimistic")?;
        }
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.completed(), "{report}");
    let trace = report.trace().join("\n");
    for needle in [
        "guess(X0) -> true",
        "deny(X0)",
        "ROLLBACK",
        "guess(X0) -> false",
        "send m0 -> P1",
        "deliver m0 P0 -> P1",
        "recv m0 from P0",
    ] {
        assert!(
            trace.contains(needle),
            "missing {needle:?} in trace:\n{trace}"
        );
    }

    // Affirmed scenario: the speculative output's commit is traced.
    let mut sim = Simulation::new(SimConfig::with_seed(3).traced());
    sim.spawn("worker", move |ctx| {
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        if ctx.guess(aid)? {
            ctx.output("optimistic")?;
        }
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(1))?;
        ctx.affirm(aid)?;
        Ok(())
    });
    let affirmed = sim.run();
    let trace = affirmed.trace().join("\n");
    for needle in ["affirm(X0)", "finalized", "1 output line(s) committed"] {
        assert!(
            trace.contains(needle),
            "missing {needle:?} in trace:\n{trace}"
        );
    }

    // Untraced runs stay empty.
    let mut sim = Simulation::new(SimConfig::with_seed(3));
    sim.spawn("solo", |ctx| ctx.output("x"));
    let quiet = sim.run();
    assert!(quiet.trace().is_empty());
}

#[test]
fn quiescence_oracle_commits_surviving_speculation() {
    // Nobody ever affirms: the worker's output stays buffered forever…
    let build = |commit: bool| {
        let cfg = if commit {
            SimConfig::with_seed(4).commit_at_quiescence()
        } else {
            SimConfig::with_seed(4)
        };
        let mut sim = Simulation::new(cfg);
        sim.spawn("worker", |ctx| {
            let aid = ctx.aid_init()?;
            if ctx.guess(aid)? {
                ctx.output("speculative forever")?;
            }
            Ok(())
        });
        sim.run()
    };
    let plain = build(false);
    assert!(plain.outputs().is_empty(), "{plain}");
    assert_eq!(plain.stats().engine.finalized, 0);

    // …unless the definite external observer settles it at quiescence.
    let committed = build(true);
    assert_eq!(committed.output_lines(), vec!["speculative forever"]);
    assert!(committed.stats().engine.finalized >= 1);
    assert_eq!(committed.stats().rollback_events, 0);
}

#[test]
fn quiescence_oracle_applies_pending_speculative_denies() {
    // A speculative deny pends on its issuer finalizing; the oracle's
    // affirms finalize the issuer, the deny fires, and the victim rolls
    // back — all *after* apparent quiescence.
    let build = |commit: bool| {
        let cfg = if commit {
            SimConfig::with_seed(4).commit_at_quiescence()
        } else {
            SimConfig::with_seed(4)
        };
        let mut sim = Simulation::new(cfg);
        let denier = ProcessId(1);
        sim.spawn("victim", move |ctx| {
            let x = ctx.aid_init()?;
            ctx.send(denier, Value::Int(x.index() as i64))?;
            if ctx.guess(x)? {
                ctx.output("victim: optimistic")?;
            } else {
                ctx.output("victim: denied after quiescence")?;
            }
            Ok(())
        });
        sim.spawn("denier", |ctx| {
            let m = ctx.recv()?;
            let x = AidId::from_index(m.payload.expect_int() as u64);
            let y = ctx.aid_init()?;
            // Become speculative on our own assumption, then deny x:
            // speculative (x is not among our dependencies).
            let _ = ctx.guess(y)?;
            ctx.deny(x)?;
            Ok(())
        });
        sim.run()
    };
    let plain = build(false);
    assert!(plain.outputs().is_empty(), "{plain}");

    let committed = build(true);
    assert_eq!(
        committed.output_lines(),
        vec!["victim: denied after quiescence"],
        "{committed}"
    );
    assert!(committed.stats().rollback_events >= 1);
}

/// A second deny can land while the victim is still parked charging
/// [`SimConfig::rollback_overhead`] for the first: the deeper truncation
/// invalidates the replay length captured for the first re-execution, so
/// the wrapper must restart its restart. Regression for a crash
/// ("replay cursor within journal") under storms of closely spaced
/// denies with a nonzero restoration charge.
#[test]
fn second_rollback_during_restoration_hold_replays_cleanly() {
    let mut sim = Simulation::new(
        SimConfig::with_seed(5)
            .with_topology(Topology::uniform(LatencyModel::Fixed(ms(2))))
            .with_rollback_overhead(ms(10)),
    );
    let verifier = ProcessId(1);
    sim.spawn("guesser", move |ctx| {
        let outer = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(outer.index() as i64))?;
        let a = ctx.guess(outer)?;
        let inner = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(inner.index() as i64))?;
        let b = ctx.guess(inner)?;
        ctx.output(format!("outer={a} inner={b}"))?;
        Ok(())
    });
    sim.spawn("verifier", move |ctx| {
        let outer = AidId::from_index(ctx.recv()?.payload.expect_int() as u64);
        let inner = AidId::from_index(ctx.recv()?.payload.expect_int() as u64);
        // Deny the inner guess first; while the guesser holds for the
        // 10ms restoration charge, deny the outer one 2ms later —
        // truncating the journal below the first rollback's checkpoint.
        ctx.deny(inner)?;
        ctx.compute(ms(2))?;
        ctx.deny(outer)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.errors().is_empty(), "{report}");
    assert_eq!(report.output_lines(), vec!["outer=false inner=false"]);
    assert!(report.stats().rollback_events >= 2, "{report}");
    assert!(report.stats().replays >= 2, "{report}");
}
