//! End-to-end tests for `SimConfig::detect_races`: the online race
//! detector riding the scheduler's observer hook, with its findings
//! surfaced through `RunReport::races`.

use hope_runtime::{AidId, ProcessId, RaceKind, SimConfig, Simulation, Value, VirtualDuration};

/// A speculative send condemned as a ghost by a later deny is reported as
/// a `SendAfterDeny` race charged to the sender.
#[test]
fn ghost_condemnation_is_reported_as_send_after_deny() {
    let mut sim = Simulation::new(SimConfig::with_seed(7).detect_races(true));
    let relay = ProcessId(1);
    let judge = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(judge, Value::Int(x.index() as i64))?;
        if ctx.guess(x)? {
            ctx.send(relay, Value::Str("speculative hello".into()))?;
        }
        Ok(())
    });
    sim.spawn("relay", |ctx| {
        // Never receives anything definite: the only message aimed at it
        // becomes a ghost, so it parks at `recv` until quiescence.
        let _ = ctx.recv()?;
        Ok(())
    });
    sim.spawn("judge", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(VirtualDuration::from_millis(1))?;
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();

    assert!(report.stats().ghosts_dropped >= 1);
    let ghosts: Vec<_> = report
        .races()
        .iter()
        .filter(|r| r.kind == RaceKind::SendAfterDeny)
        .collect();
    assert_eq!(ghosts.len(), 1, "races: {:?}", report.races());
    assert_eq!(ghosts[0].process, ProcessId(0), "charged to the sender");
}

/// Two judges deciding the same AID: the loser's decider is skipped under
/// the one-shot rule and reported as `DecidedAidReuse`.
#[test]
fn competing_deciders_report_decided_aid_reuse() {
    let mut sim = Simulation::new(SimConfig::with_seed(3).detect_races(true));
    let judge_a = ProcessId(1);
    let judge_b = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(judge_a, Value::Int(x.index() as i64))?;
        ctx.send(judge_b, Value::Int(x.index() as i64))?;
        let _ = ctx.guess(x)?;
        Ok(())
    });
    for name in ["judge-a", "judge-b"] {
        sim.spawn(name, |ctx| {
            let m = ctx.recv()?;
            let aid = AidId::from_index(m.payload.expect_int() as u64);
            ctx.affirm(aid)?;
            Ok(())
        });
    }
    let report = sim.run();

    let reuses: Vec<_> = report
        .races()
        .iter()
        .filter(|r| r.kind == RaceKind::DecidedAidReuse)
        .collect();
    assert_eq!(reuses.len(), 1, "races: {:?}", report.races());
    assert_eq!(reuses[0].aid, AidId::from_index(0));
}

/// With the flag off (the default), the same racy program yields an empty
/// race list — the detector is never constructed.
#[test]
fn detection_is_off_by_default() {
    let mut sim = Simulation::new(SimConfig::with_seed(7));
    let relay = ProcessId(1);
    let judge = ProcessId(2);
    sim.spawn("origin", move |ctx| {
        let x = ctx.aid_init()?;
        ctx.send(judge, Value::Int(x.index() as i64))?;
        if ctx.guess(x)? {
            ctx.send(relay, Value::Str("speculative hello".into()))?;
        }
        Ok(())
    });
    sim.spawn("relay", |ctx| {
        let _ = ctx.recv()?;
        Ok(())
    });
    sim.spawn("judge", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.deny(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert!(report.stats().ghosts_dropped >= 1);
    assert!(report.races().is_empty());
}
