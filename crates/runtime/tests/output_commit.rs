//! Focused tests for output commit: the runtime's answer to the paper's
//! requirement that speculative effects must not escape to the external
//! world.

use hope_core::AidId;
use hope_runtime::{ProcessId, SimConfig, Simulation, Value};
use hope_sim::{VirtualDuration, VirtualTime};

fn ms(v: u64) -> VirtualDuration {
    VirtualDuration::from_millis(v)
}

#[test]
fn commit_time_is_the_affirm_time_not_the_produce_time() {
    let mut sim = Simulation::new(SimConfig::with_seed(1));
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let aid = ctx.aid_init()?;
        ctx.send(verifier, Value::Int(aid.index() as i64))?;
        if ctx.guess(aid)? {
            ctx.output("speculative line")?; // produced at t≈0
        }
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let aid = AidId::from_index(m.payload.expect_int() as u64);
        ctx.compute(ms(25))?; // a slow verification
        ctx.affirm(aid)?;
        Ok(())
    });
    let report = sim.run();
    assert_eq!(report.output_lines(), vec!["speculative line"]);
    let line = &report.outputs()[0];
    assert_eq!(line.time, VirtualTime::ZERO, "produced immediately");
    assert!(
        line.committed_at >= VirtualTime::ZERO + ms(25),
        "committed only once affirmed: {}",
        line.committed_at
    );
    assert_eq!(report.commit_time(ProcessId(0)), Some(line.committed_at));
}

#[test]
fn outputs_under_distinct_intervals_commit_separately() {
    // Two nested assumptions; the inner is affirmed later than the outer.
    // The outer interval's line commits as soon as *its* assumption chain
    // resolves; the inner's waits for both.
    let mut sim = Simulation::new(SimConfig::with_seed(2));
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        let a = ctx.aid_init()?;
        let b = ctx.aid_init()?;
        ctx.send(
            verifier,
            Value::List(vec![
                Value::Int(a.index() as i64),
                Value::Int(b.index() as i64),
            ]),
        )?;
        let _ = ctx.guess(a)?;
        ctx.output("outer")?;
        let _ = ctx.guess(b)?;
        ctx.output("inner")?;
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let m = ctx.recv()?;
        let items = m.payload.expect_list();
        let a = AidId::from_index(items[0].expect_int() as u64);
        let b = AidId::from_index(items[1].expect_int() as u64);
        ctx.compute(ms(5))?;
        ctx.affirm(a)?;
        ctx.compute(ms(10))?;
        ctx.affirm(b)?;
        Ok(())
    });
    let report = sim.run();
    assert_eq!(report.output_lines(), vec!["outer", "inner"]);
    let outer = &report.outputs()[0];
    let inner = &report.outputs()[1];
    assert!(
        outer.committed_at < inner.committed_at,
        "outer {} !< inner {}",
        outer.committed_at,
        inner.committed_at
    );
}

#[test]
fn discarded_and_released_counters_balance() {
    // A worker retries a denied step twice before an affirmed one: the
    // discarded count must equal the speculative lines that died, and the
    // released count the lines that survived.
    let mut sim = Simulation::new(SimConfig::with_seed(3));
    let verifier = ProcessId(1);
    sim.spawn("worker", move |ctx| {
        for _ in 0..3 {
            loop {
                let aid = ctx.aid_init()?;
                ctx.send(verifier, Value::Int(aid.index() as i64))?;
                if ctx.guess(aid)? {
                    break;
                }
            }
            ctx.output("step")?;
            ctx.compute(ms(1))?;
        }
        Ok(())
    });
    sim.spawn("verifier", |ctx| {
        let mut n = 0u32;
        loop {
            let m = ctx.recv()?;
            let aid = AidId::from_index(m.payload.expect_int() as u64);
            ctx.compute(ms(1))?;
            n += 1;
            // Deny every third proposal.
            if n.is_multiple_of(3) {
                ctx.deny(aid)?;
            } else {
                ctx.affirm(aid)?;
            }
        }
    });
    let report = sim.run();
    assert_eq!(
        report.output_lines(),
        vec!["step", "step", "step"],
        "{report}"
    );
    assert_eq!(report.stats().outputs_released, 3);
    assert_eq!(
        report.stats().outputs_discarded,
        report.stats().rollback_events,
        "one speculative line died per denied step: {report}"
    );
    assert!(report.stats().rollback_events >= 1);
}

#[test]
fn definite_output_is_immediate_and_uncounted_as_discardable() {
    let mut sim = Simulation::new(SimConfig::with_seed(4));
    sim.spawn("plain", |ctx| {
        ctx.compute(ms(2))?;
        ctx.output("definite")?;
        Ok(())
    });
    let report = sim.run();
    let line = &report.outputs()[0];
    assert_eq!(line.time, line.committed_at);
    assert_eq!(report.stats().outputs_discarded, 0);
    assert_eq!(report.stats().outputs_released, 1);
}

#[test]
fn last_commit_time_tracks_the_slowest_process() {
    let mut sim = Simulation::new(SimConfig::with_seed(5));
    sim.spawn("fast", |ctx| {
        ctx.output("fast done")?;
        Ok(())
    });
    sim.spawn("slow", |ctx| {
        ctx.compute(ms(40))?;
        ctx.output("slow done")?;
        Ok(())
    });
    let report = sim.run();
    assert_eq!(report.last_commit_time(), Some(VirtualTime::ZERO + ms(40)));
    assert_eq!(
        report.completion_time(ProcessId(0)),
        Some(VirtualTime::ZERO)
    );
    assert_eq!(
        report.completion_time(ProcessId(1)),
        Some(VirtualTime::ZERO + ms(40))
    );
}
