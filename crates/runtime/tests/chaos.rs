//! Chaos tests: arbitrary interleavings of every runtime facility.
//!
//! Each process runs a seeded random script of guesses, affirms, denies,
//! sends, receives and computes, with assumptions shared across processes
//! through message payloads. The scripts have no meaning — the point is
//! that no interleaving may crash a process body, wedge the scheduler,
//! corrupt the journal (replay divergence panics), violate engine
//! invariants, or break determinism.

use hope_core::AidId;
use hope_runtime::{Ctx, Hope, ProcessId, RunReport, SimConfig, Simulation, Value};
use hope_sim::{LatencyModel, SimRng, Topology, VirtualDuration};

const OPS_PER_PROC: u64 = 18;

/// One chaotic process: a deterministic random script driven by the
/// journaled RNG (so replays after rollback follow the same path).
fn chaos_body(ctx: &mut Ctx, n_procs: u32) -> Hope<()> {
    let me = ctx.pid();
    let mut my_aids: Vec<AidId> = Vec::new();
    let mut known: Vec<AidId> = Vec::new();
    for step in 0..OPS_PER_PROC {
        // Absorb anything queued; remember advertised AIDs.
        while let Some(m) = ctx.try_recv()? {
            if let Some(items) = m.payload.as_list() {
                if items.len() == 2 && items[0].as_str() == Some("aid") {
                    if let Some(v) = items[1].as_int() {
                        known.push(AidId::from_index(v as u64));
                    }
                }
            }
        }
        match ctx.random_u64()? % 10 {
            0..=2 => {
                // Fresh assumption: advertise, then guess it.
                let aid = ctx.aid_init()?;
                let target = ProcessId((ctx.random_u64()? % n_procs as u64) as u32);
                if target != me {
                    ctx.send(
                        target,
                        Value::List(vec![
                            Value::Str("aid".into()),
                            Value::Int(aid.index() as i64),
                        ]),
                    )?;
                }
                if ctx.guess(aid)? {
                    my_aids.push(aid);
                    ctx.output(format!("{me} step {step}: guessed {aid}"))?;
                }
            }
            3..=4 => {
                // Decide something we know about.
                let pool: Vec<AidId> = known.iter().chain(my_aids.iter()).copied().collect();
                if !pool.is_empty() {
                    let aid = pool[(ctx.random_u64()? % pool.len() as u64) as usize];
                    if ctx.chance(0.7)? {
                        ctx.affirm(aid)?;
                    } else {
                        ctx.deny(aid)?;
                    }
                }
            }
            5 => {
                let pool: Vec<AidId> = known.clone();
                if !pool.is_empty() {
                    let aid = pool[(ctx.random_u64()? % pool.len() as u64) as usize];
                    ctx.free_of(aid)?;
                }
            }
            6..=7 => {
                // Plain chatter (tagged with whatever we depend on).
                let target = ProcessId((ctx.random_u64()? % n_procs as u64) as u32);
                ctx.send(target, Value::Int(step as i64))?;
            }
            _ => {
                let micros = 50 + ctx.random_u64()? % 500;
                ctx.compute(VirtualDuration::from_micros(micros))?;
            }
        }
    }
    ctx.output(format!("{me} done"))?;
    Ok(())
}

fn run_chaos(seed: u64, n_procs: u32, commit: bool) -> RunReport {
    let mut rng = SimRng::new(seed);
    let topo = Topology::uniform(LatencyModel::Uniform {
        lo: VirtualDuration::from_micros(100 + rng.next_u64() % 500),
        hi: VirtualDuration::from_millis(2 + rng.next_u64() % 5),
    });
    let mut cfg = SimConfig::with_seed(seed).topology(topo);
    if commit {
        cfg = cfg.commit_at_quiescence();
    }
    let mut sim = Simulation::new(cfg);
    for i in 0..n_procs {
        sim.spawn(format!("chaos{i}"), move |ctx| chaos_body(ctx, n_procs));
    }
    sim.run()
}

fn fingerprint(r: &RunReport) -> String {
    format!(
        "{} {} {} {} {} {} {:?}",
        r.end_time(),
        r.events(),
        r.stats().rollback_events,
        r.stats().replays,
        r.stats().ghosts_dropped,
        r.stats().outputs_released,
        r.output_lines()
    )
}

#[test]
fn chaos_never_crashes_or_wedges() {
    for seed in 0..12 {
        let report = run_chaos(seed, 4, false);
        assert!(
            report.errors().is_empty(),
            "seed {seed}: {:?}",
            report.errors()
        );
        assert!(!report.hit_limits(), "seed {seed} ran away: {report}");
    }
}

#[test]
fn chaos_is_deterministic() {
    for seed in [3, 17, 99] {
        let a = fingerprint(&run_chaos(seed, 3, false));
        let b = fingerprint(&run_chaos(seed, 3, false));
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn chaos_with_commit_oracle_settles_everything() {
    for seed in 0..8 {
        let report = run_chaos(seed, 3, true);
        assert!(
            report.errors().is_empty(),
            "seed {seed}: {:?}",
            report.errors()
        );
        assert!(!report.hit_limits(), "seed {seed}: {report}");
        // With the oracle, every process's "done" line must commit
        // (whatever speculative residue remained was settled).
        let lines = report.output_lines();
        for p in 0..3 {
            assert!(
                lines.iter().any(|l| *l == format!("P{p} done")),
                "seed {seed}: P{p}'s completion never committed: {lines:?}"
            );
        }
    }
}

#[test]
fn chaos_scales_to_more_processes() {
    let report = run_chaos(42, 8, true);
    assert!(report.errors().is_empty(), "{:?}", report.errors());
    assert!(!report.hit_limits());
    assert!(report.stats().messages_sent > 0);
}
