//! Messages and mailboxes.
//!
//! Every message carries the dependence [`Tag`] its sender had at send time
//! (§3 of the paper); receipt implicitly guesses the tag's undecided AIDs,
//! and messages whose tag contains a denied AID are ghosts, dropped before
//! delivery. Mailboxes are ordered by `(delivery time, sequence)` so runs
//! are deterministic, and per-link FIFO is enforced by the scheduler.

use std::collections::BTreeMap;
use std::fmt;

use hope_core::{AidId, ProcessId, Tag};
use hope_sim::VirtualTime;

use crate::value::Value;

/// How a message participates in the request/reply protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MsgKind {
    /// A one-way message.
    Plain,
    /// An RPC request; the call id correlates the reply.
    Request(u64),
    /// An RPC reply to the request with the same call id.
    Reply(u64),
    /// A [`Ctx::send_reliable`](crate::Ctx::send_reliable) message: `seq`
    /// is the sender's per-process logical sequence number (stable across
    /// retransmissions, used for receiver-side deduplication) and `aid` is
    /// the sender's "delivered" assumption, which the runtime's ack
    /// affirms on delivery.
    Reliable {
        /// Per-sender logical sequence number.
        seq: u64,
        /// The sender's "delivered" assumption for this attempt.
        aid: AidId,
    },
}

impl MsgKind {
    /// The call id, for requests and replies.
    pub fn call_id(&self) -> Option<u64> {
        match self {
            MsgKind::Plain | MsgKind::Reliable { .. } => None,
            MsgKind::Request(id) | MsgKind::Reply(id) => Some(*id),
        }
    }
}

/// Mailbox ordering key: delivery time, then global sequence number.
pub(crate) type MailKey = (VirtualTime, u64);

/// A message as delivered to a receiving process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Globally unique message id.
    pub id: u64,
    /// The sending process.
    pub from: ProcessId,
    /// The destination process.
    pub to: ProcessId,
    /// Protocol role.
    pub kind: MsgKind,
    /// Payload.
    pub payload: Value,
    /// The sender's dependence set at send time.
    pub tag: Tag,
    /// When the message reached the destination's mailbox.
    pub delivered_at: VirtualTime,
    /// Mailbox tiebreak sequence (set by the scheduler).
    pub(crate) seq: u64,
}

impl Message {
    pub(crate) fn mail_key(&self) -> MailKey {
        (self.delivered_at, self.seq)
    }

    /// Construct a free-standing message, for testing protocol decoders
    /// outside a running simulation. Messages delivered by the runtime are
    /// always built by the scheduler.
    pub fn synthetic(from: ProcessId, to: ProcessId, kind: MsgKind, payload: Value) -> Message {
        Message {
            id: 0,
            from,
            to,
            kind,
            payload,
            tag: Tag::new(),
            delivered_at: VirtualTime::ZERO,
            seq: 0,
        }
    }

    /// `true` if this message replies to the call with `call_id`.
    pub fn is_reply_to(&self, call_id: u64) -> bool {
        self.kind == MsgKind::Reply(call_id)
    }

    /// The sender's logical sequence number, for messages sent with
    /// [`Ctx::send_reliable`](crate::Ctx::send_reliable). Retransmissions
    /// of one logical send keep their number (the deduplication key), but
    /// numbers are *not* dense: a send rolled back by a cascade re-executes
    /// under a fresh number (reuse would collide with the receiver's dedup
    /// memory of the dead copy). Receivers expecting in-order data should
    /// therefore match on an index carried in the payload, not on this.
    pub fn reliable_seq(&self) -> Option<u64> {
        match self.kind {
            MsgKind::Reliable { seq, .. } => Some(seq),
            _ => None,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "m{} {}→{} {:?} {} tag={}",
            self.id, self.from, self.to, self.kind, self.payload, self.tag
        )
    }
}

/// A process's inbound queue, ordered by delivery.
pub(crate) type Mailbox = BTreeMap<MailKey, Message>;

#[cfg(test)]
mod tests {
    use super::*;
    use hope_sim::VirtualDuration;

    fn msg(id: u64, ms: u64, seq: u64) -> Message {
        Message {
            id,
            from: ProcessId(0),
            to: ProcessId(1),
            kind: MsgKind::Plain,
            payload: Value::Int(id as i64),
            tag: Tag::new(),
            delivered_at: VirtualTime::ZERO + VirtualDuration::from_millis(ms),
            seq,
        }
    }

    #[test]
    fn mailbox_orders_by_delivery_then_seq() {
        let mut mb: Mailbox = BTreeMap::new();
        for m in [msg(1, 5, 2), msg(2, 3, 1), msg(3, 5, 0)] {
            mb.insert(m.mail_key(), m);
        }
        let order: Vec<u64> = mb.values().map(|m| m.id).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn kinds_and_call_ids() {
        assert_eq!(MsgKind::Plain.call_id(), None);
        assert_eq!(MsgKind::Request(7).call_id(), Some(7));
        assert_eq!(MsgKind::Reply(7).call_id(), Some(7));
        let mut m = msg(1, 1, 0);
        m.kind = MsgKind::Reply(9);
        assert!(m.is_reply_to(9));
        assert!(!m.is_reply_to(8));
    }

    #[test]
    fn reliable_kind_exposes_seq_but_no_call_id() {
        let mut m = msg(1, 1, 0);
        assert_eq!(m.reliable_seq(), None);
        m.kind = MsgKind::Reliable {
            seq: 42,
            aid: hope_core::AidId::from_index(3),
        };
        assert_eq!(m.reliable_seq(), Some(42));
        assert_eq!(m.kind.call_id(), None);
    }

    #[test]
    fn display_mentions_route() {
        let m = msg(4, 1, 0);
        let s = m.to_string();
        assert!(s.contains("m4"), "{s}");
        assert!(s.contains("P0→P1"), "{s}");
    }
}
