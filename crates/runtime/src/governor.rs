//! The optimism governor: deny-storm admission control for speculation.
//!
//! HOPE makes speculation cheap to *express*; nothing in the semantics says
//! when it is *wise*. Under a lossy link or a hostile verifier, deny
//! cascades can do more rollback work than the optimism saves. This module
//! closes the loop the cost model opened: a per-site admission controller
//! that watches a sliding window of recent deny/affirm outcomes and the
//! rollback damage they caused (seeded by the static
//! [`hope_analysis::cost`] damage ranks, corrected online by observed
//! truncation work), and drives a deterministic three-state machine per
//! guess site:
//!
//! * [`GovernorMode::Optimistic`] — admit guesses immediately (the
//!   ungoverned behaviour);
//! * [`GovernorMode::Throttled`] — delay each guess behind a virtual-time
//!   hold, circuit-breaker style, so a storm of high-damage guesses is
//!   spent more slowly than it is denied;
//! * [`GovernorMode::Conservative`] — convert guesses into definite waits:
//!   the process parks until the assumption is decided and then takes the
//!   *known* branch, i.e. full degradation to non-speculative execution.
//!
//! The load-bearing property is **transparency**: the governor reshapes
//! *when* optimism is spent, never *what* commits. A held guess is the same
//! guess a little later; a converted guess commits the same branch the
//! optimistic run would eventually have committed (a denied assumption
//! yields `false` either way — directly, or after a rollback). Holds and
//! wait wake-ups ride the ordinary epoch-guarded [`Wake`] events, so
//! [`mc::check_scenario`](crate::mc::check_scenario) exhaustion and
//! [`FaultPlan`](hope_sim::FaultPlan) replay stay sound with the governor
//! enabled. [`chaos::governor_sweep`](crate::chaos::governor_sweep) turns
//! the transparency claim into an executable oracle.
//!
//! [`Wake`]: crate::SimConfig
//!
//! # Obligation on conservative waits
//!
//! A guess converted to a wait parks until *someone else* decides the
//! assumption. The decider must therefore not depend on the guesser's
//! post-guess progress — true for [`Ctx::send_reliable`](crate::Ctx), whose
//! assumptions are decided by the runtime's ack/timeout injector, and for
//! any verifier that reads only pre-guess messages. A site whose decider
//! waits on the guesser would deadlock under full degradation exactly as
//! the equivalent non-speculative protocol would.

use std::collections::{BTreeMap, HashMap, VecDeque};

use hope_analysis::cost::SitePrior;
use hope_core::{AidId, AidState, ProcessId};
use hope_sim::{VirtualDuration, VirtualTime};

use crate::shared::Shared;

/// The site id [`Ctx::guess`](crate::Ctx::guess) reports to the governor.
/// Programs that want per-site control use
/// [`Ctx::guess_at`](crate::Ctx::guess_at) with their own ids (the static
/// analyzer's statement indices, via [`hope_analysis::cost::site_priors`],
/// are the intended vocabulary).
pub const DEFAULT_GUESS_SITE: u32 = 0;

/// The reserved site id of the "delivered" guesses inside
/// [`Ctx::send_reliable`](crate::Ctx::send_reliable), kept out of the
/// statement-index range so reliable-send pressure is governed separately
/// from program guesses.
pub const RELIABLE_SEND_SITE: u32 = u32::MAX;

/// Admission-control state machine position of one guess site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GovernorMode {
    /// Admit guesses immediately (the ungoverned behaviour).
    Optimistic,
    /// Delay each admitted guess behind a virtual-time hold
    /// ([`GovernorConfig::hold`]).
    Throttled,
    /// Convert guesses into definite waits; every
    /// [`GovernorConfig::probe_after`]-th guess is admitted optimistically
    /// as a half-open probe so the site can discover that a storm ended.
    Conservative,
}

impl std::fmt::Display for GovernorMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GovernorMode::Optimistic => "optimistic",
            GovernorMode::Throttled => "throttled",
            GovernorMode::Conservative => "conservative",
        })
    }
}

/// Configuration of the optimism governor (see the module docs), installed
/// with [`SimConfig::with_governor`](crate::SimConfig::with_governor).
///
/// Pressure is measured in **milli-entries of expected rollback damage per
/// admitted guess**: the deny rate over the sliding window (per-mille)
/// times the site's damage estimate (journal entries, EWMA-corrected from
/// observed truncations, seeded by [`priors`](GovernorConfig::priors) or
/// [`default_damage`](GovernorConfig::default_damage)), divided by 1000. A
/// site whose guesses are denied 50% of the time and cost 4 discarded
/// journal entries each sits at pressure 2000.
#[derive(Debug, Clone, PartialEq)]
pub struct GovernorConfig {
    /// Sliding-window length: how many recent decided outcomes (affirms
    /// and denies) each site remembers.
    pub window: usize,
    /// Minimum decided outcomes in the window before the mode may change;
    /// below it the site holds its current mode.
    pub min_samples: usize,
    /// Enter [`GovernorMode::Throttled`] at or above this pressure.
    pub throttle_pressure: u64,
    /// Enter [`GovernorMode::Conservative`] at or above this pressure.
    pub break_pressure: u64,
    /// Hysteresis: a mode is left only when pressure falls below
    /// `entry_threshold * demote_permille / 1000`, so a site oscillating
    /// around a threshold does not flap.
    pub demote_permille: u64,
    /// The virtual-time hold a [`GovernorMode::Throttled`] site inserts
    /// before each admitted guess.
    pub hold: VirtualDuration,
    /// In [`GovernorMode::Conservative`], admit every N-th guess
    /// optimistically as a half-open probe (0 disables probing; the site
    /// then recovers only through outcomes observed on converted waits).
    pub probe_after: u32,
    /// Damage estimate (journal entries) for sites with no matching prior,
    /// until observed rollbacks correct it.
    pub default_damage: u64,
    /// Static per-site damage priors from the analyzer
    /// ([`hope_analysis::cost::site_priors`]); matched by
    /// `(process index, site id)`.
    pub priors: Vec<SitePrior>,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            window: 16,
            min_samples: 8,
            throttle_pressure: 400,
            break_pressure: 1600,
            demote_permille: 500,
            hold: VirtualDuration::from_millis(2),
            probe_after: 8,
            default_damage: 1,
            priors: Vec::new(),
        }
    }
}

impl GovernorConfig {
    /// Replace the sliding-window length (clamped to at least 1).
    #[must_use]
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window.max(1);
        self
    }

    /// Replace the minimum sample count (clamped to at least 1).
    #[must_use]
    pub fn with_min_samples(mut self, min_samples: usize) -> Self {
        self.min_samples = min_samples.max(1);
        self
    }

    /// Replace both pressure thresholds (throttle, then break).
    #[must_use]
    pub fn with_thresholds(mut self, throttle: u64, brk: u64) -> Self {
        self.throttle_pressure = throttle;
        self.break_pressure = brk;
        self
    }

    /// Replace the hysteresis ratio (per-mille of the entry threshold a
    /// site must fall below to demote).
    #[must_use]
    pub fn with_demote_permille(mut self, permille: u64) -> Self {
        self.demote_permille = permille;
        self
    }

    /// Replace the throttled hold duration.
    #[must_use]
    pub fn with_hold(mut self, hold: VirtualDuration) -> Self {
        self.hold = hold;
        self
    }

    /// Replace the half-open probe cadence (0 disables probing).
    #[must_use]
    pub fn with_probe_after(mut self, n: u32) -> Self {
        self.probe_after = n;
        self
    }

    /// Replace the fallback damage estimate.
    #[must_use]
    pub fn with_default_damage(mut self, entries: u64) -> Self {
        self.default_damage = entries.max(1);
        self
    }

    /// Install static damage priors (see
    /// [`hope_analysis::cost::site_priors`]).
    #[must_use]
    pub fn with_priors(mut self, priors: Vec<SitePrior>) -> Self {
        self.priors = priors;
        self
    }
}

/// One mode change of one guess site, in virtual-time order. The full
/// trace is available as
/// [`RunReport::governor_transitions`](crate::RunReport::governor_transitions)
/// and is a pure function of `(seed, config)` — the determinism suite pins
/// that across reruns, engine shard counts, and fossil collection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModeTransition {
    /// The guessing process.
    pub process: ProcessId,
    /// The guess site within that process.
    pub site: u32,
    /// Virtual time of the observation that triggered the change.
    pub at: VirtualTime,
    /// Mode left.
    pub from: GovernorMode,
    /// Mode entered.
    pub to: GovernorMode,
}

/// Counters of the optimism governor, reported in
/// [`RunStats::governor`](crate::RunStats). Like the tracking and lock
/// counters they are excluded from
/// [`RunReport::fingerprint`](crate::RunReport::fingerprint): the
/// transparency oracle compares committed outputs between governor-on and
/// governor-off runs, whose control counters legitimately differ.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct GovernorStats {
    /// Guesses admitted optimistically (probes included).
    pub admitted: u64,
    /// Admitted guesses that were first delayed by a throttled hold.
    pub held: u64,
    /// Guesses converted into definite waits (full degradation).
    pub converted: u64,
    /// Half-open optimistic probes admitted from conservative mode.
    pub probes: u64,
    /// Denies observed on governed assumptions.
    pub denials_observed: u64,
    /// Affirms observed on governed assumptions.
    pub affirms_observed: u64,
    /// Journal entries discarded by rollbacks attributed to governed
    /// denies (the online damage signal).
    pub rollback_damage: u64,
    /// Mode transitions across all sites.
    pub transitions: u64,
}

/// What the governor tells an arriving guess to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Admission {
    /// Proceed immediately.
    Admit,
    /// Park behind a virtual-time hold, then proceed.
    Hold(VirtualDuration),
    /// Park until the assumption is decided, then take the known branch.
    Wait,
}

#[derive(Debug)]
struct SiteState {
    mode: GovernorMode,
    /// Recent decided outcomes, oldest first; `true` = denied.
    window: VecDeque<bool>,
    /// EWMA of rollback damage per denied guess, in milli-entries.
    damage_milli: u64,
    /// Conservative conversions since the last half-open probe.
    since_probe: u32,
}

/// The runtime state of the admission controller: one [`SiteState`] per
/// `(process, site)` pair that has guessed, plus the aid → site map that
/// routes decision effects back to their windows. Lives in
/// [`Shared`](crate::shared::Shared) beside the engine; every update
/// happens at a deterministic point of the (deterministic) event order, so
/// the whole trace is a pure function of `(seed, config)`.
#[derive(Debug)]
pub(crate) struct Governor {
    cfg: GovernorConfig,
    sites: BTreeMap<(ProcessId, u32), SiteState>,
    /// Undecided governed assumptions: aid → owning site.
    pending: HashMap<AidId, (ProcessId, u32)>,
    /// Processes parked in a conservative wait: aid → process index. An
    /// entry is removed when the decision fires (waking the process) or
    /// when a rollback unwinds the waiter.
    pub(crate) waiting: HashMap<AidId, usize>,
    pub(crate) stats: GovernorStats,
    pub(crate) transitions: Vec<ModeTransition>,
}

impl Governor {
    pub(crate) fn new(cfg: GovernorConfig) -> Self {
        Governor {
            cfg,
            sites: BTreeMap::new(),
            pending: HashMap::new(),
            waiting: HashMap::new(),
            stats: GovernorStats::default(),
            transitions: Vec::new(),
        }
    }

    fn site_mut(&mut self, pid: ProcessId, site: u32) -> &mut SiteState {
        let cfg = &self.cfg;
        self.sites.entry((pid, site)).or_insert_with(|| {
            let damage = cfg
                .priors
                .iter()
                .find(|p| p.process == pid.0 && p.site == site)
                .map_or(cfg.default_damage, |p| p.damage)
                .max(1);
            SiteState {
                mode: GovernorMode::Optimistic,
                window: VecDeque::with_capacity(cfg.window),
                damage_milli: damage.saturating_mul(1000),
                since_probe: 0,
            }
        })
    }

    /// Expected rollback damage per admitted guess, in milli-entries.
    fn pressure(s: &SiteState) -> u64 {
        let n = s.window.len() as u64;
        if n == 0 {
            return 0;
        }
        let denies = s.window.iter().filter(|&&d| d).count() as u64;
        (denies * 1000 / n).saturating_mul(s.damage_milli) / 1000
    }

    /// Re-evaluate one site's mode after an observation, recording a
    /// [`ModeTransition`] if it changed.
    fn eval(&mut self, key: (ProcessId, u32), at: VirtualTime) {
        let cfg_min = self.cfg.min_samples;
        let (throttle, brk, demote) = (
            self.cfg.throttle_pressure,
            self.cfg.break_pressure,
            self.cfg.demote_permille,
        );
        let s = self.sites.get_mut(&key).expect("observed site exists");
        if s.window.len() < cfg_min {
            return;
        }
        let p = Self::pressure(s);
        let exit = |entry: u64| entry.saturating_mul(demote) / 1000;
        let to = match s.mode {
            GovernorMode::Optimistic => {
                if p >= brk {
                    GovernorMode::Conservative
                } else if p >= throttle {
                    GovernorMode::Throttled
                } else {
                    GovernorMode::Optimistic
                }
            }
            GovernorMode::Throttled => {
                if p >= brk {
                    GovernorMode::Conservative
                } else if p < exit(throttle) {
                    GovernorMode::Optimistic
                } else {
                    GovernorMode::Throttled
                }
            }
            GovernorMode::Conservative => {
                if p < exit(throttle) {
                    GovernorMode::Optimistic
                } else if p < exit(brk) {
                    GovernorMode::Throttled
                } else {
                    GovernorMode::Conservative
                }
            }
        };
        if to != s.mode {
            let from = s.mode;
            s.mode = to;
            s.since_probe = 0;
            self.stats.transitions += 1;
            self.transitions.push(ModeTransition {
                process: key.0,
                site: key.1,
                at,
                from,
                to,
            });
        }
    }

    /// Admission decision for a live guess at `(pid, site)`.
    fn admit(&mut self, pid: ProcessId, site: u32) -> Admission {
        let probe_after = self.cfg.probe_after;
        let hold = self.cfg.hold;
        let s = self.site_mut(pid, site);
        match s.mode {
            GovernorMode::Optimistic => {
                self.stats.admitted += 1;
                Admission::Admit
            }
            GovernorMode::Throttled => {
                self.stats.admitted += 1;
                self.stats.held += 1;
                Admission::Hold(hold)
            }
            GovernorMode::Conservative => {
                s.since_probe += 1;
                if probe_after > 0 && s.since_probe >= probe_after {
                    s.since_probe = 0;
                    self.stats.admitted += 1;
                    self.stats.probes += 1;
                    Admission::Admit
                } else {
                    self.stats.converted += 1;
                    Admission::Wait
                }
            }
        }
    }

    /// Route a decision on a governed assumption to its site's window.
    /// Returns the site key when the aid was governed (for rollback-damage
    /// attribution), `None` for assumptions the governor never admitted.
    pub(crate) fn observe_decided(
        &mut self,
        aid: AidId,
        denied: bool,
        at: VirtualTime,
    ) -> Option<(ProcessId, u32)> {
        let key = self.pending.remove(&aid)?;
        self.push_outcome(key, denied, at);
        Some(key)
    }

    /// Record an outcome for a site directly (used for guesses that found
    /// their assumption already decided: there is no speculation to govern,
    /// but the outcome is still deny-rate signal).
    fn push_outcome(&mut self, key: (ProcessId, u32), denied: bool, at: VirtualTime) {
        if denied {
            self.stats.denials_observed += 1;
        } else {
            self.stats.affirms_observed += 1;
        }
        let window = self.cfg.window;
        let s = self.site_mut(key.0, key.1);
        if s.window.len() >= window {
            s.window.pop_front();
        }
        s.window.push_back(denied);
        self.eval(key, at);
    }

    /// Charge `entries` journal entries of observed rollback damage to the
    /// sites whose denies appeared in the same effect batch, correcting
    /// each site's damage EWMA online.
    pub(crate) fn charge_damage(
        &mut self,
        keys: &[(ProcessId, u32)],
        entries: u64,
        at: VirtualTime,
    ) {
        if entries == 0 || keys.is_empty() {
            return;
        }
        self.stats.rollback_damage += entries;
        for &key in keys {
            let s = self.site_mut(key.0, key.1);
            let observed = entries.saturating_mul(1000);
            s.damage_milli = s.damage_milli.saturating_mul(3).saturating_add(observed) / 4;
            self.eval(key, at);
        }
    }
}

impl Shared {
    /// The governor's admission decision for a live guess by `procs[idx]`
    /// on `aid` at `site`; registers the assumption as governed so its
    /// decision is routed back to the site's window. Returns
    /// [`Admission::Admit`] (and records the outcome directly) when the
    /// assumption is already decided — there is nothing left to govern.
    pub(crate) fn govern_admit(&mut self, idx: usize, aid: AidId, site: u32) -> Admission {
        if self.governor.is_none() {
            return Admission::Admit;
        }
        let pid = self.procs[idx].pid;
        let now = self.now;
        match self.engine.aid_state(aid) {
            Ok(AidState::Undecided) => {}
            Ok(state) => {
                let gov = self.governor.as_mut().expect("checked above");
                gov.push_outcome((pid, site), state == AidState::Denied, now);
                return Admission::Admit;
            }
            // Fossil: decided long ago; the guess answers definitively.
            Err(_) => return Admission::Admit,
        }
        let gov = self.governor.as_mut().expect("checked above");
        let decision = gov.admit(pid, site);
        gov.pending.insert(aid, (pid, site));
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tight() -> GovernorConfig {
        GovernorConfig::default()
            .with_window(4)
            .with_min_samples(2)
            .with_thresholds(400, 900)
            .with_probe_after(3)
    }

    fn feed(gov: &mut Governor, pid: ProcessId, site: u32, denied: bool, t: u64) {
        let aid = AidId::from_index(t);
        gov.pending.insert(aid, (pid, site));
        gov.observe_decided(aid, denied, VirtualTime::from_nanos(t));
    }

    #[test]
    fn config_builders() {
        let c = GovernorConfig::default()
            .with_window(0)
            .with_min_samples(0)
            .with_thresholds(1, 2)
            .with_demote_permille(250)
            .with_hold(VirtualDuration::from_millis(7))
            .with_probe_after(5)
            .with_default_damage(0)
            .with_priors(vec![SitePrior {
                process: 1,
                site: 2,
                damage: 9,
            }]);
        assert_eq!(c.window, 1);
        assert_eq!(c.min_samples, 1);
        assert_eq!((c.throttle_pressure, c.break_pressure), (1, 2));
        assert_eq!(c.demote_permille, 250);
        assert_eq!(c.hold, VirtualDuration::from_millis(7));
        assert_eq!(c.probe_after, 5);
        assert_eq!(c.default_damage, 1, "clamped to at least one entry");
        assert_eq!(c.priors.len(), 1);
    }

    #[test]
    fn deny_storm_escalates_and_calm_demotes_with_hysteresis() {
        let mut gov = Governor::new(tight());
        let pid = ProcessId(0);
        // All-deny window with damage 1 (1000 milli-entries of pressure):
        // past min_samples this crosses 900 → Conservative.
        for t in 0..4 {
            feed(&mut gov, pid, 0, true, t);
        }
        assert_eq!(
            gov.sites[&(pid, 0)].mode,
            GovernorMode::Conservative,
            "transitions: {:?}",
            gov.transitions
        );
        // Calm: affirms wash the denies out of the window; pressure falls
        // through the demotion thresholds back to Optimistic.
        for t in 4..12 {
            feed(&mut gov, pid, 0, false, t);
        }
        assert_eq!(gov.sites[&(pid, 0)].mode, GovernorMode::Optimistic);
        // The trace went up and came back down, in order.
        let modes: Vec<GovernorMode> = gov.transitions.iter().map(|t| t.to).collect();
        assert!(modes.contains(&GovernorMode::Conservative));
        assert_eq!(*modes.last().unwrap(), GovernorMode::Optimistic);
        assert_eq!(gov.stats.transitions, gov.transitions.len() as u64);
    }

    #[test]
    fn conservative_mode_converts_and_probes() {
        let mut gov = Governor::new(tight());
        let pid = ProcessId(3);
        for t in 0..4 {
            feed(&mut gov, pid, 7, true, t);
        }
        assert_eq!(gov.sites[&(pid, 7)].mode, GovernorMode::Conservative);
        let before = gov.stats;
        // probe_after = 3: two conversions, then a probe, repeating.
        let decisions: Vec<Admission> = (0..6).map(|_| gov.admit(pid, 7)).collect();
        assert_eq!(
            decisions,
            vec![
                Admission::Wait,
                Admission::Wait,
                Admission::Admit,
                Admission::Wait,
                Admission::Wait,
                Admission::Admit,
            ]
        );
        assert_eq!(gov.stats.converted - before.converted, 4);
        assert_eq!(gov.stats.probes - before.probes, 2);
    }

    #[test]
    fn throttled_mode_holds_with_configured_duration() {
        let cfg = tight()
            .with_thresholds(400, 100_000)
            .with_hold(VirtualDuration::from_millis(9));
        let mut gov = Governor::new(cfg);
        let pid = ProcessId(1);
        for t in 0..4 {
            feed(&mut gov, pid, 0, true, t);
        }
        assert_eq!(gov.sites[&(pid, 0)].mode, GovernorMode::Throttled);
        assert_eq!(
            gov.admit(pid, 0),
            Admission::Hold(VirtualDuration::from_millis(9))
        );
        assert!(gov.stats.held > 0);
    }

    #[test]
    fn priors_seed_damage_and_rollbacks_correct_it() {
        let cfg = tight().with_priors(vec![SitePrior {
            process: 0,
            site: 5,
            damage: 10,
        }]);
        let mut gov = Governor::new(cfg);
        let pid = ProcessId(0);
        gov.admit(pid, 5);
        assert_eq!(gov.sites[&(pid, 5)].damage_milli, 10_000);
        gov.admit(pid, 6);
        assert_eq!(
            gov.sites[&(pid, 6)].damage_milli,
            1000,
            "no prior → default damage"
        );
        // Observed damage of 2 entries pulls the EWMA toward 2000.
        gov.charge_damage(&[(pid, 5)], 2, VirtualTime::ZERO);
        assert_eq!(gov.sites[&(pid, 5)].damage_milli, (30_000 + 2000) / 4);
        assert_eq!(gov.stats.rollback_damage, 2);
    }

    #[test]
    fn ungoverned_aids_are_ignored() {
        let mut gov = Governor::new(tight());
        assert_eq!(
            gov.observe_decided(AidId::from_index(99), true, VirtualTime::ZERO),
            None
        );
        assert_eq!(gov.stats.denials_observed, 0);
    }
}
