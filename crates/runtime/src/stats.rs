//! Run reports: what a simulation did, and what it committed.
//!
//! Speculative output must not escape: a line printed under an optimistic
//! assumption is buffered until its interval finalizes (output commit) and
//! discarded if the interval rolls back. [`RunReport::outputs`] therefore
//! contains exactly the lines a real external observer would have seen.

use std::collections::BTreeMap;
use std::fmt;

use hope_analysis::dynamic::RaceReport;
use hope_core::{EngineStats, ProcessId};
use hope_sim::VirtualTime;

/// One committed output line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputLine {
    /// Virtual time at which the line was produced (possibly while
    /// speculative).
    pub time: VirtualTime,
    /// Virtual time at which the line *committed* — when the buffering
    /// interval finalized (equal to `time` for lines produced while
    /// definite). This is the honest completion metric for optimistic
    /// programs, whose bodies often return long before their results are
    /// certain.
    pub committed_at: VirtualTime,
    /// The producing process.
    pub process: ProcessId,
    /// The text.
    pub line: String,
}

impl fmt::Display for OutputLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.time, self.process, self.line)
    }
}

/// Cumulative counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct RunStats {
    /// Messages sent (including those that later became ghosts).
    pub messages_sent: u64,
    /// Messages placed into mailboxes.
    pub messages_delivered: u64,
    /// Ghost messages dropped before delivery to user code.
    pub ghosts_dropped: u64,
    /// Rollback events (process-history truncations).
    pub rollback_events: u64,
    /// Body re-executions caused by rollback.
    pub replays: u64,
    /// Journal entries discarded by truncations.
    pub truncated_entries: u64,
    /// Output lines committed.
    pub outputs_released: u64,
    /// Speculative output lines discarded by rollback.
    pub outputs_discarded: u64,
    /// Engine counters (guesses, affirms, denies, finalizations, …).
    pub engine: EngineStats,
}

/// The result of [`Simulation::run`](crate::Simulation::run).
#[derive(Debug, Clone)]
pub struct RunReport {
    pub(crate) end_time: VirtualTime,
    pub(crate) events: u64,
    pub(crate) hit_limits: bool,
    pub(crate) outputs: Vec<OutputLine>,
    pub(crate) stats: RunStats,
    pub(crate) finish_times: BTreeMap<ProcessId, VirtualTime>,
    pub(crate) unfinished: Vec<ProcessId>,
    pub(crate) errors: BTreeMap<ProcessId, String>,
    pub(crate) trace: Vec<String>,
    pub(crate) races: Vec<RaceReport>,
}

impl RunReport {
    /// Virtual time when the last event was processed.
    pub fn end_time(&self) -> VirtualTime {
        self.end_time
    }

    /// Number of scheduler events processed.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// `true` if the run stopped at `max_events`/`max_virtual_time` rather
    /// than quiescence.
    pub fn hit_limits(&self) -> bool {
        self.hit_limits
    }

    /// Committed output lines, ordered by `(time, process)`.
    pub fn outputs(&self) -> &[OutputLine] {
        &self.outputs
    }

    /// Just the committed text lines, in order.
    pub fn output_lines(&self) -> Vec<&str> {
        self.outputs.iter().map(|o| o.line.as_str()).collect()
    }

    /// Counters.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// When `pid`'s body returned `Ok(())`, if it did.
    pub fn finish_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        self.finish_times.get(&pid).copied()
    }

    /// Processes that never finished (blocked on `recv` at quiescence —
    /// normal for server loops).
    pub fn unfinished(&self) -> &[ProcessId] {
        &self.unfinished
    }

    /// When the last output line of the whole run committed.
    pub fn last_commit_time(&self) -> Option<VirtualTime> {
        self.outputs.iter().map(|o| o.committed_at).max()
    }

    /// When `pid`'s last output line committed.
    pub fn commit_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        self.outputs
            .iter()
            .filter(|o| o.process == pid)
            .map(|o| o.committed_at)
            .max()
    }

    /// The completion time of `pid`: the later of its body finishing and
    /// its last output committing. The right number to report for
    /// optimistic programs.
    pub fn completion_time(&self, pid: ProcessId) -> Option<VirtualTime> {
        match (self.finish_time(pid), self.commit_time(pid)) {
            (Some(f), Some(c)) => Some(f.max(c)),
            (Some(f), None) => Some(f),
            (None, c) => c,
        }
    }

    /// Panic messages of crashed process bodies, if any.
    pub fn errors(&self) -> &BTreeMap<ProcessId, String> {
        &self.errors
    }

    /// `true` if every process finished and nothing crashed or hit limits.
    pub fn completed(&self) -> bool {
        self.unfinished.is_empty() && self.errors.is_empty() && !self.hit_limits
    }

    /// The execution trace, if [`SimConfig::trace`](crate::SimConfig::trace)
    /// was enabled (empty otherwise). One line per primitive call, message
    /// movement, ghost drop, rollback and output commit, timestamped in
    /// virtual time.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    /// Findings of the online race detector, if
    /// [`SimConfig::detect_races`](crate::SimConfig::detect_races) was
    /// enabled (empty otherwise): decide/decide races on one AID, sends
    /// issued under doomed speculation, and guesses racing a decide.
    pub fn races(&self) -> &[RaceReport] {
        &self.races
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: end={} events={} rollbacks={} replays={} ghosts={}",
            self.end_time,
            self.events,
            self.stats.rollback_events,
            self.stats.replays,
            self.stats.ghosts_dropped
        )?;
        for o in &self.outputs {
            writeln!(f, "  {o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_accessors() {
        let r = RunReport {
            end_time: VirtualTime::from_nanos(10),
            events: 3,
            hit_limits: false,
            outputs: vec![OutputLine {
                time: VirtualTime::ZERO,
                committed_at: VirtualTime::from_nanos(4),
                process: ProcessId(0),
                line: "hello".into(),
            }],
            stats: RunStats::default(),
            finish_times: [(ProcessId(0), VirtualTime::from_nanos(9))].into(),
            unfinished: vec![],
            errors: BTreeMap::new(),
            trace: Vec::new(),
            races: Vec::new(),
        };
        assert!(r.completed());
        assert_eq!(r.output_lines(), vec!["hello"]);
        assert_eq!(
            r.finish_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(9))
        );
        assert_eq!(r.finish_time(ProcessId(1)), None);
        assert_eq!(r.last_commit_time(), Some(VirtualTime::from_nanos(4)));
        assert_eq!(
            r.commit_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(4))
        );
        assert_eq!(r.commit_time(ProcessId(1)), None);
        assert_eq!(
            r.completion_time(ProcessId(0)),
            Some(VirtualTime::from_nanos(9)),
            "finish later than commit"
        );
        assert_eq!(r.completion_time(ProcessId(1)), None);
        assert!(r.to_string().contains("hello"));
    }

    #[test]
    fn unfinished_or_errors_mean_incomplete() {
        let mut r = RunReport {
            end_time: VirtualTime::ZERO,
            events: 0,
            hit_limits: false,
            outputs: vec![],
            stats: RunStats::default(),
            finish_times: BTreeMap::new(),
            unfinished: vec![ProcessId(1)],
            errors: BTreeMap::new(),
            trace: Vec::new(),
            races: Vec::new(),
        };
        assert!(!r.completed());
        r.unfinished.clear();
        r.errors.insert(ProcessId(0), "boom".into());
        assert!(!r.completed());
        r.errors.clear();
        r.hit_limits = true;
        assert!(!r.completed());
    }
}
